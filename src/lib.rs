//! # DBExplorer
//!
//! A Rust reproduction of *DBExplorer: Exploratory Search in Databases*
//! (Singh, Cafarella, Jagadish — EDBT 2016).
//!
//! This facade crate re-exports every subsystem so downstream users can
//! depend on a single crate:
//!
//! * [`table`] — in-memory columnar relational engine.
//! * [`query`] — SQL subset plus the paper's `CREATE CADVIEW` extensions.
//! * [`stats`] — chi-square feature selection, histograms, mixed models.
//! * [`cluster`] — k-means over one-hot encoded mixed data.
//! * [`topk`] — diversified top-k (div-astar) selection.
//! * [`facet`] — faceted navigation engine (the Solr-style baseline).
//! * [`core`] — the CAD View itself: builder, similarity, TPFacet.
//! * [`obs`] — first-party observability: span traces, metrics registry,
//!   trace sinks, and the timing-masking helpers used by snapshot tests.
//! * [`serve`] — concurrent TCP wire server: shared catalog + shared
//!   stats cache, length-prefixed requests, JSON-line responses.
//! * [`store`] — crash-safe durable catalog: checksummed columnar
//!   snapshots, atomic manifest swaps, fault-injected recovery.
//! * [`suggest`] — exploratory assistance: information-gain next-step
//!   recommendation and data-informed predicate completion behind the
//!   `SUGGEST` statements.
//! * [`data`] — synthetic UsedCars / Mushroom dataset generators.
//! * [`explore`] — multi-session exploration benchmark: seeded synthetic
//!   dataset generator, trace generator, and wire-protocol session
//!   simulator behind `bench_explore`.
//! * [`study`] — the simulated user study reproducing Section 6.2.
//!
//! ## Quickstart
//!
//! ```
//! use dbexplorer::data::usedcars::UsedCarsGenerator;
//! use dbexplorer::table::Predicate;
//! use dbexplorer::core::{CadRequest, build_cad_view};
//!
//! let table = UsedCarsGenerator::new(42).generate(2_000);
//! let result = table
//!     .filter(&Predicate::and(vec![
//!         Predicate::eq("BodyType", "SUV"),
//!         Predicate::between("Mileage", 10_000, 30_000),
//!     ]))
//!     .unwrap();
//! let request = CadRequest::new("Make").with_iunits(3).with_max_compare_attrs(5);
//! let cad = build_cad_view(&result, &request).unwrap();
//! println!("{}", cad.render());
//! ```

pub use dbex_cluster as cluster;
pub use dbex_obs as obs;
pub use dbex_core as core;
pub use dbex_data as data;
pub use dbex_explore as explore;
pub use dbex_facet as facet;
pub use dbex_query as query;
pub use dbex_serve as serve;
pub use dbex_stats as stats;
pub use dbex_store as store;
pub use dbex_suggest as suggest;
pub use dbex_study as study;
pub use dbex_table as table;
pub use dbex_topk as topk;
