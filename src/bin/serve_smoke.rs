//! `serve_smoke` — CI gate for the wire server (`scripts/check.sh
//! --serve-smoke`).
//!
//! Boots an in-process server with a preloaded dataset, replays the same
//! exploration script through three concurrent clients, and requires:
//!
//! 1. every client's transcript is byte-identical to the single-session
//!    oracle ([`dbexplorer::serve::oracle_transcript`]),
//! 2. the transcript matches the golden file
//!    `tests/snapshots/serve_smoke.txt` (regenerate with
//!    `UPDATE_SNAPSHOTS=1`),
//! 3. the shared stats cache saw hits (clients after the first reuse the
//!    first client's CAD work).
//!
//! Exits nonzero with a labeled diff on any mismatch.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::serve::{oracle_transcript, Client, ServeConfig, Server};

const ROWS: usize = 3_000;
const SEED: u64 = 7;
const CLIENTS: usize = 3;

const SCRIPT: &[&str] = &[
    ".ping",
    ".tables",
    "SELECT Make, Model, Price FROM cars WHERE BodyType = SUV LIMIT 5",
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2",
    "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 0.5",
    "REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC",
];

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let config = ServeConfig::default();
    let oracle = oracle_transcript(
        vec![("cars".to_owned(), UsedCarsGenerator::new(SEED).generate(ROWS))],
        &config,
        SCRIPT,
    );
    let golden = format!("{}\n", oracle.join("\n"));

    let snapshot = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots/serve_smoke.txt");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&snapshot, &golden)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", snapshot.display())));
        println!("serve_smoke: updated {}", snapshot.display());
        return;
    }
    let expected = std::fs::read_to_string(&snapshot).unwrap_or_else(|e| {
        fail(&format!(
            "cannot read {} ({e}); regenerate with UPDATE_SNAPSHOTS=1",
            snapshot.display()
        ))
    });
    if expected != golden {
        eprintln!("--- golden (tests/snapshots/serve_smoke.txt)\n+++ oracle (current code)");
        for (i, (want, got)) in expected.lines().zip(golden.lines()).enumerate() {
            if want != got {
                eprintln!("line {}:\n- {want}\n+ {got}", i + 1);
            }
        }
        fail("oracle transcript diverges from the golden snapshot (UPDATE_SNAPSHOTS=1 to accept)");
    }

    let server = Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| fail(&e.to_string()));
    server.preload("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    let cache = server.cache();
    let handle = server.spawn().unwrap_or_else(|e| fail(&e.to_string()));

    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr).unwrap_or_else(|e| fail(&e.to_string()));
                    SCRIPT
                        .iter()
                        .map(|req| {
                            client.request_line(req).unwrap_or_else(|e| fail(&e.to_string()))
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    for (i, transcript) in transcripts.iter().enumerate() {
        if transcript != &oracle {
            for (j, (want, got)) in oracle.iter().zip(transcript).enumerate() {
                if want != got {
                    eprintln!("client {i}, request {:?}:\n- {want}\n+ {got}", SCRIPT[j]);
                }
            }
            fail(&format!("client {i} transcript diverges from the oracle"));
        }
    }

    let stats = cache.stats();
    if stats.hits == 0 {
        fail(&format!(
            "expected shared-cache hits across {CLIENTS} clients, saw none ({stats})"
        ));
    }

    handle.shutdown();
    println!(
        "serve_smoke: OK ({CLIENTS} clients x {} requests byte-identical; shared cache: {stats})",
        SCRIPT.len()
    );
}
