//! `store_smoke` — CI gate for the durable catalog (`scripts/check.sh`, and
//! `--crash-smoke` for the kill-loop variant).
//!
//! Default mode exercises the full durability story end-to-end across a real
//! process boundary:
//!
//! 1. a child process (`--prepare`) loads two synthetic tables, builds a CAD
//!    View (populating the stats cache with cluster solutions), records the
//!    rendered view, and saves a snapshot;
//! 2. the parent reopens the snapshot cold, adopts the persisted table ids,
//!    rehydrates the cluster solutions, and requires the **first**
//!    post-restart `EXPLAIN ANALYZE` build to report partitions served from
//!    cache;
//! 3. the rebuilt view must render byte-identical to the child's;
//! 4. a second save must reuse every segment (content-addressed storage);
//! 5. a fault-injected save must leave the previous generation readable.
//!
//! `--crash` mode SIGKILLs a `--crash-child` that saves alternating catalogs
//! in a tight loop, and requires every reopen to land on a consistent
//! generation — never a panic, never a torn mix of the two catalogs.

use dbexplorer::data::{HotelsGenerator, UsedCarsGenerator};
use dbexplorer::query::Session;
use dbexplorer::store::{
    open, save, table_digest, FaultKind, FaultVfs, RealVfs, StoreError,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const CARS_ROWS: usize = 2_000;
const HOTELS_ROWS: usize = 500;
const SEED: u64 = 7;

const VIEW_SQL: &str =
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2";

fn fail(msg: &str) -> ! {
    eprintln!("store_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbex-store-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn prepared_session() -> Session {
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(SEED).generate(CARS_ROWS));
    session.register_table("hotels", HotelsGenerator::new(SEED).generate(HOTELS_ROWS));
    session
}

fn render_of(session: &mut Session, sql: &str) -> String {
    match session.execute(sql) {
        Ok(out) => out.render(),
        Err(e) => fail(&format!("{sql:?} failed: {e}")),
    }
}

/// Child step: build the view, record its render next to the snapshot dir,
/// and save tables + cluster solutions.
fn run_prepare(dir: &Path) -> i32 {
    let mut session = prepared_session();
    let render = render_of(&mut session, VIEW_SQL);
    if let Err(e) = std::fs::write(render_path(dir), &render) {
        fail(&format!("cannot record the view render: {e}"));
    }
    let tables = session.tables_snapshot();
    match save(&RealVfs, dir, &tables, Some(session.stats_cache())) {
        Ok(report) => {
            if report.cluster_entries == 0 {
                fail("prepare child saved no cluster solutions; the warm-reuse check is vacuous");
            }
            println!(
                "store_smoke[prepare]: generation {} with {} cluster solution(s)",
                report.generation, report.cluster_entries
            );
            0
        }
        Err(e) => fail(&format!("prepare save failed: {e}")),
    }
}

fn render_path(dir: &Path) -> PathBuf {
    let mut name = dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push("-render.txt");
    dir.with_file_name(name)
}

/// Parses `  cluster reuse: N partition(s) served from cache, ...` out of an
/// `EXPLAIN ANALYZE` render.
fn parse_reused_partitions(render: &str) -> u64 {
    for line in render.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("cluster reuse: ") {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    fail("EXPLAIN ANALYZE output has no `cluster reuse:` line");
}

fn run_default() {
    let dir = scratch_dir("main");

    // 1. Prepare the snapshot in a child process: table-id adoption only
    //    succeeds when the persisted ids are ahead of this process's
    //    counter, i.e. when the snapshot comes from another process.
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let status = std::process::Command::new(&exe)
        .arg("--prepare")
        .arg(&dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot spawn the prepare child: {e}")));
    if !status.success() {
        fail(&format!("prepare child failed: {status}"));
    }
    let expected_render = std::fs::read_to_string(render_path(&dir))
        .unwrap_or_else(|e| fail(&format!("cannot read the recorded render: {e}")));

    // 2. Warm restart: open cold, rehydrate, and demand cache reuse on the
    //    very first build.
    let report = open(&RealVfs, &dir).unwrap_or_else(|e| fail(&format!("warm open failed: {e}")));
    if report.tables.len() != 2 {
        fail(&format!("expected 2 tables after open, got {}", report.tables.len()));
    }
    if !report.all_ids_adopted {
        fail("cross-process open did not adopt the persisted table ids");
    }
    let mut session = Session::new();
    let rehydrated = report.rehydrate_into(session.stats_cache());
    if rehydrated == 0 {
        fail("no cluster solutions rehydrated from the stats sidecar");
    }
    for (name, table) in &report.tables {
        session.register_shared(name.clone(), Arc::clone(table));
    }
    let analyze = render_of(&mut session, &format!("EXPLAIN ANALYZE {VIEW_SQL}"));
    let reused = parse_reused_partitions(&analyze);
    if reused == 0 {
        fail(&format!(
            "first post-restart build served 0 partitions from cache:\n{analyze}"
        ));
    }

    // 3. Determinism across the restart: same statement, same bytes.
    let render = render_of(&mut session, VIEW_SQL);
    if render != expected_render {
        fail("post-restart CAD View render differs from the pre-save render");
    }

    // 4. Content-addressed reuse: an unchanged catalog rewrites no segments.
    let tables = session.tables_snapshot();
    let second = save(&RealVfs, &dir, &tables, Some(session.stats_cache()))
        .unwrap_or_else(|e| fail(&format!("second save failed: {e}")));
    if second.segments_written != 0 || second.segments_reused != 2 {
        fail(&format!(
            "second save should reuse both segments, wrote {} reused {}",
            second.segments_written, second.segments_reused
        ));
    }

    // 5. A failed save must not damage the committed generation.
    let faulty = FaultVfs::failing_at(FaultKind::Enospc, 0);
    if save(&faulty, &dir, &tables, None).is_ok() {
        fail("save through a failing VFS reported success");
    }
    let after = open(&RealVfs, &dir)
        .unwrap_or_else(|e| fail(&format!("open after the failed save broke: {e}")));
    if after.generation != second.generation || after.tables.len() != 2 {
        fail("the failed save damaged the committed generation");
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(render_path(&dir));
    println!(
        "store_smoke: OK (warm restart reused {reused} partition(s); render byte-identical; \
         {} segment(s) reused; fault save left generation {} intact)",
        second.segments_reused, second.generation
    );
}

/// The two catalogs the crash child alternates between. Digests are
/// content-based, so the parent can recompute the legal sets independently.
fn catalog_a() -> Vec<(String, Arc<dbexplorer::table::Table>)> {
    vec![(
        "cars".to_owned(),
        Arc::new(UsedCarsGenerator::new(1).generate(300)),
    )]
}

fn catalog_b() -> Vec<(String, Arc<dbexplorer::table::Table>)> {
    vec![
        ("cars".to_owned(), Arc::new(UsedCarsGenerator::new(1).generate(300))),
        ("hotels".to_owned(), Arc::new(HotelsGenerator::new(2).generate(200))),
    ]
}

fn digest_set(tables: &[(String, Arc<dbexplorer::table::Table>)]) -> Vec<u64> {
    let mut digests: Vec<u64> = tables.iter().map(|(_, t)| table_digest(t)).collect();
    digests.sort_unstable();
    digests
}

/// Child for `--crash`: save alternating catalogs as fast as possible until
/// killed.
fn run_crash_child(dir: &Path) -> i32 {
    let a = catalog_a();
    let b = catalog_b();
    loop {
        if save(&RealVfs, dir, &a, None).is_err() {
            return 1;
        }
        if save(&RealVfs, dir, &b, None).is_err() {
            return 1;
        }
    }
}

fn run_crash() {
    let dir = scratch_dir("crash");
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let legal_a = digest_set(&catalog_a());
    let legal_b = digest_set(&catalog_b());

    const ITERATIONS: u32 = 8;
    let mut observed_tables = 0usize;
    for i in 0..ITERATIONS {
        let mut child = std::process::Command::new(&exe)
            .arg("--crash-child")
            .arg(&dir)
            .spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn the crash child: {e}")));
        // A sleep ladder lands the SIGKILL at different points of the save
        // cycle: mid-segment, mid-manifest, mid-rename, between saves.
        std::thread::sleep(Duration::from_millis(40 + 35 * u64::from(i)));
        let _ = child.kill();
        let _ = child.wait();

        match open(&RealVfs, &dir) {
            Ok(report) => {
                let digests = digest_set(&report.tables);
                if digests != legal_a && digests != legal_b {
                    fail(&format!(
                        "iteration {i}: recovered generation {} is a torn mix of catalogs",
                        report.generation
                    ));
                }
                observed_tables += report.tables.len();
            }
            Err(StoreError::NoManifest { .. }) => {
                // Killed before the very first commit: an empty store is a
                // consistent state.
            }
            Err(e) => fail(&format!("iteration {i}: reopen failed hard: {e}")),
        }
    }
    if observed_tables == 0 {
        fail("every kill landed before the first commit; the ladder never exercised recovery");
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("store_smoke: OK (--crash: {ITERATIONS} SIGKILLs, every reopen consistent)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_default(),
        Some("--crash") => run_crash(),
        Some("--prepare") => {
            let Some(dir) = args.get(1) else { fail("--prepare needs a directory") };
            std::process::exit(run_prepare(Path::new(dir)));
        }
        Some("--crash-child") => {
            let Some(dir) = args.get(1) else { fail("--crash-child needs a directory") };
            std::process::exit(run_crash_child(Path::new(dir)));
        }
        Some(other) => fail(&format!("unknown flag {other}; try --crash")),
    }
}
