//! `suggest_smoke` — CI gate for the SUGGEST surface (`scripts/check.sh
//! --suggest-smoke`).
//!
//! Four checks, all against one preloaded dataset:
//!
//! 1. the single-session oracle transcript of the SUGGEST script matches
//!    the committed golden `tests/snapshots/suggest_wire.txt` after
//!    timing masking (regenerate with `UPDATE_SNAPSHOTS=1`),
//! 2. every concurrent client's live-server transcript is byte-identical
//!    to that oracle — suggestions ride the hot lane but stay
//!    deterministic under concurrency,
//! 3. the wire frames carry exactly what an in-process session renders,
//!    so the REPL's `.suggest` output and the wire SUGGEST frames can
//!    never drift apart,
//! 4. one planted-correlation recovery seed: on the exploration
//!    benchmark's synthetic dataset the attribute planted to follow the
//!    pivot must land in the top 3.
//!
//! Exits nonzero with a labeled diff on any mismatch.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::explore::SyntheticSpec;
use dbexplorer::obs::mask_timings;
use dbexplorer::query::Session;
use dbexplorer::serve::{oracle_transcript, Client, ServeConfig, Server};
use dbexplorer::suggest::{suggest_next, SuggestConfig};

const ROWS: usize = 3_000;
const SEED: u64 = 7;
const CLIENTS: usize = 3;

/// Same script as `tests/suggest_golden.rs`, sharing its golden file —
/// one snapshot locks both the test and this gate.
const SCRIPT: &[&str] = &[
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2",
    "SUGGEST NEXT FOR v",
    "SUGGEST COMPLETE SELECT * FROM cars WHERE Make =",
    "SUGGEST COMPLETE SELECT * FROM cars WHERE",
    "EXPLAIN ANALYZE SUGGEST NEXT FOR v",
    "SUGGEST NEXT FOR nosuch",
];

fn fail(msg: &str) -> ! {
    eprintln!("suggest_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Masks the process-global `stats cache: N hits, ...` summary line in an
/// EXPLAIN ANALYZE frame. Per-request cache traffic is deterministic, but
/// the global totals legitimately grow with every concurrent client, so
/// only the single-session oracle can pin them.
fn mask_global_cache(line: &str) -> String {
    let Some(at) = line.find("stats cache: ") else {
        return line.to_owned();
    };
    let end = line[at..].find("\\n").map_or(line.len(), |e| at + e);
    format!("{}stats cache: <TOTALS>{}", &line[..at], &line[end..])
}

fn main() {
    let config = ServeConfig::default();
    let oracle = oracle_transcript(
        vec![("cars".to_owned(), UsedCarsGenerator::new(SEED).generate(ROWS))],
        &config,
        SCRIPT,
    );
    let golden = mask_timings(&format!("{}\n", oracle.join("\n")));

    let snapshot = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots/suggest_wire.txt");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&snapshot, &golden)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", snapshot.display())));
        println!("suggest_smoke: updated {}", snapshot.display());
        return;
    }
    let expected = std::fs::read_to_string(&snapshot).unwrap_or_else(|e| {
        fail(&format!(
            "cannot read {} ({e}); regenerate with UPDATE_SNAPSHOTS=1",
            snapshot.display()
        ))
    });
    if expected != golden {
        eprintln!("--- golden (tests/snapshots/suggest_wire.txt)\n+++ oracle (current code)");
        for (i, (want, got)) in expected.lines().zip(golden.lines()).enumerate() {
            if want != got {
                eprintln!("line {}:\n- {want}\n+ {got}", i + 1);
            }
        }
        fail("oracle transcript diverges from the golden snapshot (UPDATE_SNAPSHOTS=1 to accept)");
    }

    // Live server: concurrent clients must reproduce the oracle
    // byte-for-byte (after masking wall times).
    let server = Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| fail(&e.to_string()));
    server.preload("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    let cache = server.cache();
    let handle = server.spawn().unwrap_or_else(|e| fail(&e.to_string()));

    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr).unwrap_or_else(|e| fail(&e.to_string()));
                    SCRIPT
                        .iter()
                        .map(|req| {
                            client.request_line(req).unwrap_or_else(|e| fail(&e.to_string()))
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    let masked_oracle: Vec<String> =
        oracle.iter().map(|l| mask_global_cache(&mask_timings(l))).collect();
    for (i, transcript) in transcripts.iter().enumerate() {
        let masked: Vec<String> =
            transcript.iter().map(|l| mask_global_cache(&mask_timings(l))).collect();
        if masked != masked_oracle {
            for (j, (want, got)) in masked_oracle.iter().zip(&masked).enumerate() {
                if want != got {
                    eprintln!("client {i}, request {:?}:\n- {want}\n+ {got}", SCRIPT[j]);
                }
            }
            fail(&format!("client {i} transcript diverges from the oracle"));
        }
    }

    // REPL/wire byte-identity: a wire frame's `text` is exactly what an
    // in-process session (and therefore the REPL) renders.
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    for (sql, line) in SCRIPT[..4].iter().zip(&oracle) {
        let rendered = session
            .execute(sql)
            .unwrap_or_else(|e| fail(&format!("{sql}: {e}")))
            .render();
        let resp = dbexplorer::serve::WireResponse::parse(line)
            .unwrap_or_else(|e| fail(&format!("unparseable oracle line: {e}")));
        if resp.text != rendered {
            fail(&format!("wire text for {sql:?} diverged from QueryOutput::render"));
        }
    }

    let stats = cache.stats();
    if stats.hits == 0 {
        fail(&format!(
            "expected shared-cache hits across {CLIENTS} clients, saw none ({stats})"
        ));
    }
    handle.shutdown();

    // Planted-correlation recovery, one seed: `c0` follows the pivot `p`
    // at strength 0.8 in the synthetic exploration dataset — it must rank
    // in the top 3 (the full 20-seed battery lives in
    // tests/suggest_ranking.rs).
    let spec = SyntheticSpec::exploration_default(2_000, 42);
    let table = spec.generate();
    let pivot = spec
        .attrs
        .iter()
        .position(|a| a.name == "p")
        .unwrap_or_else(|| fail("synthetic spec lost its pivot attribute"));
    let report = suggest_next(&table.full_view(), pivot, &SuggestConfig::default(), None)
        .unwrap_or_else(|e| fail(&format!("suggest_next: {e}")));
    let top3: Vec<&str> = report.suggestions.iter().take(3).map(|s| s.name.as_str()).collect();
    if !top3.contains(&"c0") {
        fail(&format!(
            "planted pivot-dependent attribute c0 not recovered in top 3: {top3:?}"
        ));
    }

    println!(
        "suggest_smoke: OK ({CLIENTS} clients x {} requests byte-identical; \
         REPL/wire render identical; planted c0 in top 3; shared cache: {stats})",
        SCRIPT.len()
    );
}
