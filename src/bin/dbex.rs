//! `dbex` — interactive DBExplorer shell.
//!
//! An exploratory-search REPL over the query language, with the synthetic
//! datasets and CSV files as data sources:
//!
//! ```text
//! $ cargo run --release --bin dbex
//! dbex> .load cars 40000
//! dbex> CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV IUNITS 3;
//! dbex> HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 3.0;
//! dbex> .quit
//! ```
//!
//! Dot-commands: `.load cars|mushroom|hotels [rows] [seed]`,
//! `.open <path> <name> [--lossy]`, `.budget [rows N] [time MS] [iters N]`,
//! `.threads [N|auto]`, `.trace [on|off]`, `.suggest <view|partial>`,
//! `.metrics`, `.tables`, `.summary <table>`, `.help`, `.quit`.
//! Everything else is fed to the SQL engine (statements may span lines;
//! terminate with `;`).
//!
//! The shell never dies on bad input: missing or malformed CSV files, bad
//! `.load` arguments, SQL errors, and even statements that panic inside the
//! engine all print a diagnostic and return to the prompt.

use dbexplorer::core::ExecBudget;
use dbexplorer::data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbexplorer::query::{QueryOutput, Session};
use dbexplorer::serve::{Client, ClientError, ServeConfig, Server};
use dbexplorer::store::{RealVfs, StoreError};
use std::collections::BTreeSet;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Std-only POSIX signal shim: flags SIGINT/SIGTERM so `--serve` can
/// drain connections and flush a final snapshot instead of dying with
/// whatever half-written state the kernel interrupts.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`. The handler must be async-signal-safe: ours
        // only stores to an atomic.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn termination_requested() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

/// Non-unix fallback: no signal handling; `--serve` runs until killed.
#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termination_requested() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            std::process::exit(run_serve(&args[1..]));
        }
        Some("--connect") => {
            std::process::exit(run_connect(&args[1..]));
        }
        Some("--help" | "-h") => {
            println!(
                "usage: dbex                                  interactive local shell\n\
                 \x20      dbex --serve <addr> [--max-conns N] [--time-limit-ms N] [--threads N]\n\
                 \x20                  [--workers N] [--cache-entries N] [--backlog N]\n\
                 \x20                  [--data-dir DIR] [--autosave-ms N] [--max-frame-bytes N]\n\
                 \x20                                           serve the wire protocol on <addr>;\n\
                 \x20                                           with --data-dir, warm-restart from\n\
                 \x20                                           DIR and flush a snapshot on Ctrl-C\n\
                 \x20      dbex --connect <addr>                REPL against a running server"
            );
            return;
        }
        Some(other) => {
            eprintln!("unknown flag {other}; try --help");
            std::process::exit(2);
        }
        None => {}
    }
    run_repl();
}

/// `dbex --serve <addr>`: bind (warm-restarting from `--data-dir` when
/// given), preload nothing (clients `.load` into the shared catalog), and
/// serve until SIGINT/SIGTERM — then drain connections, flush a final
/// snapshot, and exit 0.
fn run_serve(args: &[String]) -> i32 {
    let usage = "usage: dbex --serve <addr> [--max-conns N] [--time-limit-ms N] [--threads N] \
                 [--workers N] [--cache-entries N] [--backlog N] \
                 [--data-dir DIR] [--autosave-ms N] [--max-frame-bytes N]";
    let Some(addr) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let mut config = ServeConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(raw) = it.next() else {
            eprintln!("{flag} needs a value");
            return 2;
        };
        if flag.as_str() == "--data-dir" {
            config.data_dir = Some(PathBuf::from(raw));
            continue;
        }
        let parsed: u64 = match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad value {raw:?} for {flag}: {e}");
                return 2;
            }
        };
        match flag.as_str() {
            "--max-conns" => config.max_connections = parsed as usize,
            "--time-limit-ms" => config.request_time_limit = Some(Duration::from_millis(parsed)),
            "--threads" => config.threads = parsed as usize,
            "--workers" => config.workers = parsed as usize,
            "--cache-entries" => config.cache_entries = (parsed as usize).max(1),
            "--backlog" => config.backlog = parsed.min(u64::from(u32::MAX)) as u32,
            "--max-frame-bytes" => config.max_frame_bytes = parsed as usize,
            "--autosave-ms" => config.autosave_interval = Some(Duration::from_millis(parsed)),
            other => {
                eprintln!("unknown flag {other} for --serve");
                return 2;
            }
        }
    }
    if config.autosave_interval.is_some() && config.data_dir.is_none() {
        eprintln!("--autosave-ms requires --data-dir");
        return 2;
    }
    let server = match Server::bind(addr.as_str(), config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return 1;
        }
    };
    println!(
        "dbex-serve listening on {} (max {} connections{}{})",
        server.local_addr(),
        config.max_connections,
        match config.request_time_limit {
            Some(limit) => format!(", {}ms/request", limit.as_millis()),
            None => String::new(),
        },
        match &config.data_dir {
            Some(dir) => format!(
                ", {} table(s) from {}",
                server.catalog().len(),
                dir.display()
            ),
            None => String::new(),
        }
    );
    let handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start the server threads: {e}");
            return 1;
        }
    };
    // Serve until a termination signal arrives; then drain gracefully.
    sig::install();
    while !sig::termination_requested() {
        std::thread::park_timeout(Duration::from_millis(200));
    }
    println!("dbex-serve: shutting down (draining connections)");
    let summary = handle.shutdown();
    if let Some(err) = &summary.flush_error {
        eprintln!("dbex-serve: final snapshot failed: {err}");
        return 1;
    }
    match summary.generation {
        Some(generation) => println!("dbex-serve: flushed snapshot generation {generation}"),
        None => println!("dbex-serve: nothing to flush"),
    }
    0
}

/// `dbex --connect <addr>`: the familiar REPL surface, but every
/// statement travels the wire and the rendered text comes back from the
/// server (byte-identical to the local shell's output).
fn run_connect(args: &[String]) -> i32 {
    let Some(addr) = args.first() else {
        eprintln!("usage: dbex --connect <addr>");
        return 2;
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(ClientError::Busy(msg)) => {
            eprintln!("server busy: {msg}");
            return 1;
        }
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return 1;
        }
    };
    println!("connected to {addr} — {}", client.hello().text);
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dbex> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        // Mid-statement `.suggest`: inline completion for the partial
        // statement typed so far, without consuming the buffer.
        if !buffer.is_empty() && trimmed == ".suggest" {
            let sql = format!("SUGGEST COMPLETE {}", buffer.trim());
            if !send_and_print(&mut client, &sql) {
                return 1;
            }
            continue;
        }
        if buffer.is_empty() && trimmed.starts_with('.') {
            if trimmed == ".quit" || trimmed == ".exit" {
                break;
            }
            // `.suggest` is client-side sugar for the SUGGEST statement,
            // so the wire sees the same request a plain SQL client sends.
            if let Some(rest) = trimmed.strip_prefix(".suggest") {
                match suggest_to_sql(rest) {
                    Some(sql) => {
                        if !send_and_print(&mut client, &sql) {
                            return 1;
                        }
                    }
                    None => println!("usage: .suggest <view>  or  .suggest <partial statement>"),
                }
                continue;
            }
            if !send_and_print(&mut client, trimmed) {
                return 1;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') || trimmed.is_empty() {
            let statement = std::mem::take(&mut buffer);
            if !statement.trim().is_empty() && !send_and_print(&mut client, statement.trim()) {
                return 1;
            }
        }
    }
    0
}

/// Sends one request and prints every response frame until the final
/// one — after `.stream on` an expensive build answers with a tagged
/// preview frame first, and an untagged response is final by
/// construction, so this loop serves both modes. Returns `false` when
/// the connection is unusable (the caller exits).
fn send_and_print(client: &mut Client, request: &str) -> bool {
    if let Err(e) = client.send_only(request) {
        eprintln!("connection lost: {e}");
        return false;
    }
    loop {
        match client.read_response() {
            Ok(resp) => {
                if resp.ok {
                    if !resp.is_final() {
                        println!("-- preview (exact answer follows) --");
                    }
                    print!("{}", resp.text);
                } else {
                    println!(
                        "error [{}]: {}",
                        resp.code.as_deref().unwrap_or("?"),
                        resp.text
                    );
                }
                if resp.is_final() {
                    return true;
                }
            }
            Err(e) => {
                eprintln!("connection lost: {e}");
                return false;
            }
        }
    }
}

fn run_repl() {
    let mut shell = Shell::new();
    println!("DBExplorer shell — .help for commands, .quit to exit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dbex> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // EOF. A non-empty buffer means the input ended mid-statement
                // (no terminating ';'): diagnose instead of silently dropping.
                let pending = buffer.trim();
                if !pending.is_empty() {
                    let first = pending.lines().next().unwrap_or("");
                    eprintln!(
                        "warning: input ended mid-statement (statements end with ';'); \
                         discarding: {first}..."
                    );
                }
                break;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        // Mid-statement `.suggest`: inline completion for the partial
        // statement typed so far (e.g. after a dangling WHERE), without
        // consuming the buffer.
        if !buffer.is_empty() && trimmed == ".suggest" {
            shell.run_sql(&format!("SUGGEST COMPLETE {}", buffer.trim()));
            continue;
        }
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.dot_command(trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') || trimmed.is_empty() {
            let statement = std::mem::take(&mut buffer);
            if !statement.trim().is_empty() {
                shell.run_sql(&statement);
            }
        }
    }
}

/// REPL state: a session plus the set of registered table names.
struct Shell {
    session: Session,
    tables: BTreeSet<String>,
}

impl Shell {
    fn new() -> Shell {
        Shell {
            session: Session::new(),
            tables: BTreeSet::new(),
        }
    }

    /// Handles a `.command`; returns `false` to exit the REPL.
    fn dot_command(&mut self, line: &str) -> bool {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            ".quit" | ".exit" => return false,
            ".help" => {
                let help = [
                    ".load cars [rows] [seed]      register the synthetic used-car table",
                    ".load mushroom [rows] [seed]  register the synthetic mushroom table",
                    ".load hotels [rows] [seed]    register the synthetic hotels table",
                    ".open <path> <name> [--lossy] load a CSV file as <name>; with --lossy,",
                    "                              skip bad rows instead of aborting",
                    ".open <dir>                   open a saved snapshot directory (tables +",
                    "                              cached cluster solutions)",
                    ".save <dir>                   write a checksummed snapshot of every",
                    "                              registered table (atomic, generational)",
                    ".budget [rows N] [time MS] [iters N] | off",
                    "                              limit CAD View builds (degrade, don't fail)",
                    ".threads [N|auto]             CAD build parallelism (1 = sequential;",
                    "                              auto = DBEX_THREADS or hardware cores)",
                    ".trace [on|off]               trace CAD builds (per-phase span tree;",
                    "                              bare .trace shows the current state)",
                    ".suggest <view>               rank next-step attributes for a CAD View",
                    "                              by information gain against its pivot",
                    ".suggest <partial statement>  rank completions for a partial WHERE;",
                    "                              mid-statement, bare .suggest completes",
                    "                              the statement typed so far",
                    ".metrics                      dump the process-wide metrics registry",
                    ".tables                       list registered tables",
                    ".summary <table>              per-column statistics",
                    ".quit                         exit",
                    "Any other input is SQL (end statements with ';'):",
                    "SELECT, CREATE CADVIEW, EXPLAIN [ANALYZE], DESCRIBE, HIGHLIGHT, REORDER,",
                    "SUGGEST NEXT FOR <view>, SUGGEST COMPLETE <prefix>",
                ];
                println!("{}", help.join("\n"));
            }
            ".load" => self.load(&parts),
            ".suggest" => {
                let rest = line.strip_prefix(".suggest").unwrap_or("");
                match suggest_to_sql(rest) {
                    Some(sql) => self.run_sql(&sql),
                    None => println!("usage: .suggest <view>  or  .suggest <partial statement>"),
                }
            }
            ".open" => self.open(&parts),
            ".save" => self.save(&parts),
            ".budget" => self.budget(&parts),
            ".threads" => self.threads(&parts),
            ".trace" => self.trace(&parts),
            ".metrics" => print!("{}", dbexplorer::obs::global().render()),
            ".tables" => {
                for t in &self.tables {
                    println!("{t}");
                }
            }
            ".summary" => {
                if let Some(name) = parts.get(1) {
                    match self.session.table(name) {
                        Ok(table) => {
                            for s in table.summaries() {
                                println!("{}", s.render());
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    println!("usage: .summary <table>");
                }
            }
            other => println!("unknown command {other}; try .help"),
        }
        true
    }

    fn load(&mut self, parts: &[&str]) {
        let which = parts.get(1).copied().unwrap_or("");
        // A malformed count is a diagnostic, not a silent default.
        let rows: usize = match parts.get(2) {
            Some(s) => match s.parse() {
                Ok(n) => n,
                Err(e) => {
                    println!("bad row count {s:?}: {e}");
                    return;
                }
            },
            None => 0,
        };
        let seed: u64 = match parts.get(3) {
            Some(s) => match s.parse() {
                Ok(n) => n,
                Err(e) => {
                    println!("bad seed {s:?}: {e}");
                    return;
                }
            },
            None => 42,
        };
        match which {
            "cars" => {
                let rows = if rows == 0 { 40_000 } else { rows };
                let table = UsedCarsGenerator::new(seed).generate(rows);
                println!("loaded cars: {rows} rows");
                self.session.register_table("cars", table);
                self.tables.insert("cars".into());
            }
            "mushroom" => {
                let rows = if rows == 0 {
                    dbexplorer::data::mushroom::MUSHROOM_ROWS
                } else {
                    rows
                };
                let table = MushroomGenerator::new(seed).generate(rows);
                println!("loaded mushroom: {rows} rows");
                self.session.register_table("mushroom", table);
                self.tables.insert("mushroom".into());
            }
            "hotels" => {
                let rows = if rows == 0 { 8_000 } else { rows };
                let table = HotelsGenerator::new(seed).generate(rows);
                println!("loaded hotels: {rows} rows");
                self.session.register_table("hotels", table);
                self.tables.insert("hotels".into());
            }
            _ => println!("usage: .load cars|mushroom|hotels [rows] [seed]"),
        }
    }

    fn open(&mut self, parts: &[&str]) {
        let lossy = parts.contains(&"--lossy");
        let args: Vec<&str> = parts[1..].iter().copied().filter(|p| *p != "--lossy").collect();
        // One bare argument is a snapshot directory; two is a CSV import.
        if args.len() == 1 && !lossy {
            self.open_snapshot(args[0]);
            return;
        }
        let (Some(path), Some(name)) = (args.first(), args.get(1)) else {
            println!("usage: .open <path> <name> [--lossy]  or  .open <dir>");
            return;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                println!("cannot read {path}: {e}");
                return;
            }
        };
        let (table, skipped) = if lossy {
            match dbexplorer::table::parse_csv_lossy(&text) {
                Ok(import) => {
                    for w in &import.warnings {
                        println!("warning: skipped row: {w}");
                    }
                    let skipped = import.skipped();
                    (import.table, skipped)
                }
                Err(e) => {
                    println!("{e}");
                    return;
                }
            }
        } else {
            match dbexplorer::table::parse_csv(&text) {
                Ok(table) => (table, 0),
                Err(e) => {
                    println!("{e} (retry with --lossy to skip bad rows)");
                    return;
                }
            }
        };
        print!("loaded {name}: {} rows, {} columns", table.num_rows(), table.num_columns());
        if skipped > 0 {
            print!(" ({skipped} bad rows skipped)");
        }
        println!();
        self.session.register_table(name.to_string(), table);
        self.tables.insert(name.to_string());
    }

    /// `.open <dir>`: load the newest consistent snapshot generation from a
    /// `.save` directory, registering every table and rehydrating any
    /// persisted cluster solutions into the session's stats cache.
    fn open_snapshot(&mut self, dir: &str) {
        let report = match dbexplorer::store::open(&RealVfs, Path::new(dir)) {
            Ok(report) => report,
            Err(StoreError::NoManifest { .. }) => {
                println!("no snapshot found in {dir}");
                return;
            }
            Err(e) => {
                println!("cannot open snapshot {dir}: {e}");
                return;
            }
        };
        if report.fallbacks > 0 {
            println!(
                "warning: newest generation unreadable; fell back {} generation(s)",
                report.fallbacks
            );
        }
        let rehydrated = report.rehydrate_into(self.session.stats_cache());
        for (name, table) in &report.tables {
            println!("opened {name}: {} rows", table.num_rows());
            self.tables.insert(name.clone());
        }
        for (name, table) in report.tables {
            self.session.register_shared(name, table);
        }
        self.session.mark_catalog_saved();
        println!(
            "snapshot generation {}: {} table(s), {} cached cluster solution(s)",
            report.generation,
            self.tables.len(),
            rehydrated
        );
    }

    /// `.save <dir>`: write an atomic, checksummed snapshot of every
    /// registered table plus the exact-key cluster solutions in the cache.
    fn save(&mut self, parts: &[&str]) {
        let Some(dir) = parts.get(1) else {
            println!("usage: .save <dir>");
            return;
        };
        let tables = self.session.tables_snapshot();
        if tables.is_empty() {
            println!("nothing to save: no tables registered");
            return;
        }
        match dbexplorer::store::save(
            &RealVfs,
            Path::new(dir),
            &tables,
            Some(self.session.stats_cache()),
        ) {
            Ok(report) => {
                self.session.mark_catalog_saved();
                println!(
                    "saved generation {}: {} table(s), {} segment(s) written, {} reused, \
                     {} cluster solution(s)",
                    report.generation,
                    report.tables,
                    report.segments_written,
                    report.segments_reused,
                    report.cluster_entries
                );
            }
            Err(e) => println!("save failed: {e}"),
        }
    }

    /// `.budget [rows N] [time MS] [iters N]` tightens the session budget;
    /// `.budget off` clears it; bare `.budget` shows it.
    fn budget(&mut self, parts: &[&str]) {
        if parts.len() == 1 {
            println!("budget: {}", render_budget(self.session.budget()));
            return;
        }
        if parts[1] == "off" {
            self.session.set_budget(ExecBudget::unlimited());
            println!("budget: unlimited");
            return;
        }
        let mut budget = self.session.budget().clone();
        let mut it = parts[1..].iter();
        while let Some(key) = it.next() {
            let Some(raw) = it.next() else {
                println!("usage: .budget [rows N] [time MS] [iters N] | off");
                return;
            };
            let value: usize = match raw.parse() {
                Ok(v) => v,
                Err(e) => {
                    println!("bad value {raw:?} for {key}: {e}");
                    return;
                }
            };
            match *key {
                "rows" => budget = budget.with_max_rows(value),
                "time" => budget = budget.with_time_limit(Duration::from_millis(value as u64)),
                "iters" => budget = budget.with_kmeans_iters(value),
                other => {
                    println!("unknown budget limit {other}; expected rows, time or iters");
                    return;
                }
            }
        }
        println!("budget: {}", render_budget(&budget));
        self.session.set_budget(budget);
    }

    /// `.threads N` pins the CAD build pool size; `.threads auto` resolves
    /// from `DBEX_THREADS` / hardware; bare `.threads` shows the setting.
    fn threads(&mut self, parts: &[&str]) {
        match parts.get(1) {
            None => match self.session.threads() {
                Some(0) => println!("threads: auto"),
                Some(n) => println!("threads: {n}"),
                None => println!("threads: 1 (sequential)"),
            },
            Some(&"auto") => {
                self.session.set_threads(0);
                println!("threads: auto");
            }
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => {
                    self.session.set_threads(n);
                    if n == 0 {
                        println!("threads: auto");
                    } else {
                        println!("threads: {n}");
                    }
                }
                Err(e) => println!("bad thread count {raw:?}: {e} (expected N or auto)"),
            },
        }
    }

    /// `.trace on|off` toggles per-build span tracing; bare `.trace`
    /// shows the current state.
    fn trace(&mut self, parts: &[&str]) {
        match parts.get(1) {
            None => println!(
                "trace: {}",
                if self.session.tracing() { "on" } else { "off" }
            ),
            Some(&"on") => {
                self.session.set_tracing(true);
                println!("trace: on");
            }
            Some(&"off") => {
                self.session.set_tracing(false);
                println!("trace: off");
            }
            Some(other) => println!("unknown trace mode {other}; expected on or off"),
        }
    }

    fn run_sql(&mut self, sql: &str) {
        match self.session.execute(sql) {
            Ok(output) => print_output(&output),
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Translates the tail of a `.suggest` dot-command into its SQL `SUGGEST`
/// statement: a single bare word is a stored CAD View name (`SUGGEST NEXT
/// FOR v`); anything longer is a partial statement prefix (`SUGGEST
/// COMPLETE ...`). Both the local shell and `--connect` route through
/// this, so the wire sees the same request a plain SQL client sends and
/// the rendered output is byte-identical.
fn suggest_to_sql(rest: &str) -> Option<String> {
    let rest = rest.trim();
    if rest.is_empty() {
        return None;
    }
    let single_word = rest.split_whitespace().count() == 1
        && rest
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_');
    if single_word {
        Some(format!("SUGGEST NEXT FOR {rest}"))
    } else {
        Some(format!("SUGGEST COMPLETE {rest}"))
    }
}

fn render_budget(budget: &ExecBudget) -> String {
    if budget.is_unlimited() {
        return "unlimited".to_owned();
    }
    let mut limits = Vec::new();
    if let Some(rows) = budget.max_rows {
        limits.push(format!("rows<={rows}"));
    }
    if let Some(limit) = budget.time_limit {
        limits.push(format!("time<={}ms", limit.as_millis()));
    }
    if let Some(iters) = budget.max_kmeans_iters {
        limits.push(format!("iters<={iters}"));
    }
    limits.join(", ")
}

fn print_output(output: &QueryOutput) {
    print!("{}", output.render());
}
