//! `dbex` — interactive DBExplorer shell.
//!
//! An exploratory-search REPL over the query language, with the synthetic
//! datasets and CSV files as data sources:
//!
//! ```text
//! $ cargo run --release --bin dbex
//! dbex> .load cars 40000
//! dbex> CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV IUNITS 3;
//! dbex> HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 3.0;
//! dbex> .quit
//! ```
//!
//! Dot-commands: `.load cars|mushroom [rows] [seed]`, `.open <path> <name>`,
//! `.tables`, `.summary <table>`, `.help`, `.quit`. Everything else is fed
//! to the SQL engine (statements may span lines; terminate with `;`).

use dbexplorer::data::{MushroomGenerator, UsedCarsGenerator};
use dbexplorer::query::{QueryOutput, Session};
use std::collections::BTreeSet;
use std::io::{BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    println!("DBExplorer shell — .help for commands, .quit to exit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dbex> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.dot_command(trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') || trimmed.is_empty() {
            let statement = std::mem::take(&mut buffer);
            if !statement.trim().is_empty() {
                shell.run_sql(&statement);
            }
        }
    }
}

/// REPL state: a session plus the set of registered table names.
struct Shell {
    session: Session,
    tables: BTreeSet<String>,
}

impl Shell {
    fn new() -> Shell {
        Shell {
            session: Session::new(),
            tables: BTreeSet::new(),
        }
    }

    /// Handles a `.command`; returns `false` to exit the REPL.
    fn dot_command(&mut self, line: &str) -> bool {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            ".quit" | ".exit" => return false,
            ".help" => {
                println!(
                    ".load cars [rows] [seed]      register the synthetic used-car table\n\
                     .load mushroom [rows] [seed]  register the synthetic mushroom table\n\
                     .open <path> <name>           load a CSV file as <name>\n\
                     .tables                       list registered tables\n\
                     .summary <table>              per-column statistics\n\
                     .quit                         exit\n\
                     Any other input is SQL (end statements with ';'):\n\
                     SELECT, CREATE CADVIEW, EXPLAIN, DESCRIBE, HIGHLIGHT, REORDER"
                );
            }
            ".load" => self.load(&parts),
            ".open" => self.open(&parts),
            ".tables" => {
                for t in &self.tables {
                    println!("{t}");
                }
            }
            ".summary" => {
                if let Some(name) = parts.get(1) {
                    match self.session.table(name) {
                        Ok(table) => {
                            for s in table.summaries() {
                                println!("{}", s.render());
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    println!("usage: .summary <table>");
                }
            }
            other => println!("unknown command {other}; try .help"),
        }
        true
    }

    fn load(&mut self, parts: &[&str]) {
        let which = parts.get(1).copied().unwrap_or("");
        let rows: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
        let seed: u64 = parts.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
        match which {
            "cars" => {
                let rows = if rows == 0 { 40_000 } else { rows };
                let table = UsedCarsGenerator::new(seed).generate(rows);
                println!("loaded cars: {rows} rows");
                self.session.register_table("cars", table);
                self.tables.insert("cars".into());
            }
            "mushroom" => {
                let rows = if rows == 0 {
                    dbexplorer::data::mushroom::MUSHROOM_ROWS
                } else {
                    rows
                };
                let table = MushroomGenerator::new(seed).generate(rows);
                println!("loaded mushroom: {rows} rows");
                self.session.register_table("mushroom", table);
                self.tables.insert("mushroom".into());
            }
            _ => println!("usage: .load cars|mushroom [rows] [seed]"),
        }
    }

    fn open(&mut self, parts: &[&str]) {
        let (Some(path), Some(name)) = (parts.get(1), parts.get(2)) else {
            println!("usage: .open <path> <name>");
            return;
        };
        match std::fs::read_to_string(path) {
            Ok(text) => match dbexplorer::table::csv::parse_csv(&text) {
                Ok(table) => {
                    println!("loaded {name}: {} rows, {} columns", table.num_rows(), table.num_columns());
                    self.session.register_table(name.to_string(), table);
                    self.tables.insert(name.to_string());
                }
                Err(e) => println!("csv error: {e}"),
            },
            Err(e) => println!("io error: {e}"),
        }
    }

    fn run_sql(&mut self, sql: &str) {
        match self.session.execute(sql) {
            Ok(output) => print_output(&output),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn print_output(output: &QueryOutput) {
    match output {
        QueryOutput::Rows { columns, rows } => {
            // Column widths over header + up to 40 shown rows.
            let shown = rows.len().min(40);
            let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
            let cells: Vec<Vec<String>> = rows[..shown]
                .iter()
                .map(|r| r.iter().map(|v| v.to_string()).collect())
                .collect();
            for row in &cells {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let print_row = |cells: &[String]| {
                let line: Vec<String> = cells
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{c:<w$}"))
                    .collect();
                println!("| {} |", line.join(" | "));
            };
            print_row(&columns.to_vec());
            println!(
                "|{}|",
                widths
                    .iter()
                    .map(|w| "-".repeat(w + 2))
                    .collect::<Vec<_>>()
                    .join("|")
            );
            for row in &cells {
                print_row(row);
            }
            if rows.len() > shown {
                println!("... ({} rows total)", rows.len());
            }
        }
        QueryOutput::Cad { name, rendered } => {
            println!("CAD View {name}:");
            println!("{rendered}");
        }
        QueryOutput::Highlights(hits) => {
            if hits.is_empty() {
                println!("(no IUnits above the threshold)");
            }
            for (value, id, sim) in hits {
                println!("{value} IUnit {id}: similarity {sim:.2}");
            }
        }
        QueryOutput::Reordered(order) => {
            for (value, distance) in order {
                println!("{value} (distance {distance})");
            }
        }
        QueryOutput::Text(text) => println!("{text}"),
    }
}
