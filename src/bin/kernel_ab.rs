//! `kernel_ab` — scalar ↔ SIMD A/B digest gate (`scripts/check.sh
//! --kernel-ab`).
//!
//! The SIMD kernels carry a bit-identity contract: every dispatch family
//! (scalar, SSE2, AVX2, NEON) must produce byte-for-byte the same CAD
//! Views. The `DBEX_SIMD` override is read once per process and cached,
//! so a single process cannot observe two dispatches end-to-end; this
//! gate therefore re-executes itself as `--digest` children, one per
//! dispatch family, and diffs their digests:
//!
//! 1. each child builds CAD Views over the three benchmark datasets at
//!    1 and 4 threads (covering the chunked-merge path) and prints one
//!    FNV-1a digest line per build, plus the dispatch it actually ran;
//! 2. the parent deduplicates children by reported dispatch (requests
//!    for unavailable families clamp to the hardware) and fails unless
//!    every family's digest block is identical to the scalar reference;
//! 3. on x86_64/aarch64 at least two distinct families must have run —
//!    a gate where every child silently clamped to scalar proves
//!    nothing and fails loudly instead.

use dbexplorer::core::{build_cad_view, CadConfig, CadRequest, CadView};
use dbexplorer::data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbexplorer::table::Table;

fn fail(msg: &str) -> ! {
    eprintln!("kernel_ab: FAIL: {msg}");
    std::process::exit(1);
}

/// The benchmark datasets and their pivot attributes (mirrors
/// `tests/parallel_determinism.rs`).
fn datasets() -> Vec<(&'static str, Table, &'static str)> {
    vec![
        ("cars", UsedCarsGenerator::new(7).generate(6_000), "Make"),
        ("mushroom", MushroomGenerator::new(7).generate(4_000), "Odor"),
        ("hotels", HotelsGenerator::new(7).generate(4_000), "District"),
    ]
}

/// Flattens everything observable about a view into one digestible
/// string, float bits included.
fn render_digestible(cad: &CadView) -> String {
    let mut out = format!(
        "pivot={} compare={:?} k={} tau={}\n",
        cad.pivot_name, cad.compare_names, cad.k, cad.tau
    );
    for s in &cad.feature_scores {
        out.push_str(&format!(
            "score attr={} stat={} p={}\n",
            s.attr_index,
            s.statistic.to_bits(),
            s.p_value.to_bits()
        ));
    }
    for row in &cad.rows {
        out.push_str(&format!("row {} {}\n", row.pivot_code, row.pivot_label));
        for u in &row.iunits {
            out.push_str(&format!(
                "  size={} score={} labels={:?} members={:?}\n",
                u.size,
                u.score.to_bits(),
                u.labels,
                u.members
            ));
        }
    }
    for d in &cad.degradation {
        out.push_str(&format!("degraded {d}\n"));
    }
    out
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Child: print the dispatch this process resolved to, then one digest
/// line per (dataset, thread count) build.
fn run_digest() -> i32 {
    println!("dispatch {}", dbexplorer::stats::simd::dispatch().name());
    for (name, table, pivot) in datasets() {
        let view = table.full_view();
        for threads in [1usize, 4] {
            let request = CadRequest::new(pivot).with_iunits(3).with_config(CadConfig {
                threads,
                ..CadConfig::default()
            });
            let cad = build_cad_view(&view, &request)
                .unwrap_or_else(|e| fail(&format!("{name} t={threads} build failed: {e}")));
            println!("digest {name} t{threads} {:016x}", fnv1a(&render_digestible(&cad)));
        }
    }
    0
}

/// Spawns a `--digest` child pinned to the given `DBEX_SIMD` value and
/// returns its (reported dispatch, digest lines).
fn child_digests(exe: &std::path::Path, simd: &str) -> (String, Vec<String>) {
    let output = std::process::Command::new(exe)
        .arg("--digest")
        .env("DBEX_SIMD", simd)
        .output()
        .unwrap_or_else(|e| fail(&format!("cannot spawn the {simd} child: {e}")));
    if !output.status.success() {
        fail(&format!(
            "{simd} child failed: {}\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut dispatch = String::new();
    let mut digests = Vec::new();
    for line in stdout.lines() {
        if let Some(name) = line.strip_prefix("dispatch ") {
            dispatch = name.to_owned();
        } else if line.starts_with("digest ") {
            digests.push(line.to_owned());
        }
    }
    if dispatch.is_empty() || digests.is_empty() {
        fail(&format!("{simd} child printed no dispatch/digest lines:\n{stdout}"));
    }
    (dispatch, digests)
}

fn run_default() {
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));

    // Request every family; children clamp to what the hardware has, so
    // deduplicate by the dispatch each child actually reports.
    let mut blocks: Vec<(String, Vec<String>)> = Vec::new();
    for simd in ["scalar", "sse2", "avx2", "neon"] {
        let (dispatch, digests) = child_digests(&exe, simd);
        if !blocks.iter().any(|(d, _)| *d == dispatch) {
            blocks.push((dispatch, digests));
        }
    }

    let Some(scalar) = blocks.iter().find(|(d, _)| d == "scalar") else {
        fail("no child ran the scalar reference dispatch");
    };
    let reference = scalar.1.clone();
    for (dispatch, digests) in &blocks {
        if *digests != reference {
            let diff: Vec<&String> = digests
                .iter()
                .filter(|line| !reference.contains(*line))
                .collect();
            fail(&format!("{dispatch} digests diverged from scalar: {diff:?}"));
        }
    }

    if cfg!(any(target_arch = "x86_64", target_arch = "aarch64")) && blocks.len() < 2 {
        fail("only the scalar family ran; the A/B comparison is vacuous on this hardware");
    }

    let families: Vec<&str> = blocks.iter().map(|(d, _)| d.as_str()).collect();
    println!(
        "kernel_ab: OK ({} digest(s) per family byte-identical across {:?})",
        reference.len(),
        families
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_default(),
        Some("--digest") => std::process::exit(run_digest()),
        Some(other) => fail(&format!("unknown flag {other}; try --digest")),
    }
}
