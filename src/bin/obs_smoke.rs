//! `obs_smoke` — tiny end-to-end check of the observability layer.
//!
//! Runs one traced CAD build over a small synthetic table with an
//! in-memory trace sink attached, then asserts that the sink saw the
//! expected span taxonomy and that the global metrics registry recorded
//! the build. Exits 0 and prints `obs smoke OK` on success; prints a
//! diagnostic and exits 1 on any missing span or counter.
//!
//! Wired into `scripts/check.sh` (and its `--obs-smoke` flag) so a
//! regression that silently drops instrumentation fails the gate.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::obs::MemorySink;
use dbexplorer::query::Session;
use std::process::ExitCode;
use std::sync::Arc;

const EXPECTED_SPANS: [&str; 8] = [
    "cad_build",
    "pivot_encode",
    "compare_attrs",
    "iunit_generation",
    "encode_matrix",
    "cluster_partition",
    "topk",
    "solve_partition",
];

fn main() -> ExitCode {
    let mut failures = Vec::new();

    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(1).generate(500));
    let sink = Arc::new(MemorySink::new());
    session.set_trace_sink(Some(sink.clone()));
    if let Err(e) = session.execute("CREATE CADVIEW smoke AS SET pivot = Make FROM cars IUNITS 2")
    {
        eprintln!("obs smoke: traced build failed: {e}");
        return ExitCode::FAILURE;
    }

    if sink.len() != 1 {
        failures.push(format!("expected 1 recorded trace, saw {}", sink.len()));
    }
    let names = sink.span_names();
    for span in EXPECTED_SPANS {
        if !names.contains(span) {
            failures.push(format!("span {span:?} missing from the recorded trace"));
        }
    }
    for trace in sink.traces() {
        if trace.forced_closures != 0 {
            failures.push(format!(
                "{} span(s) were force-closed: instrumentation leaks guards",
                trace.forced_closures
            ));
        }
        match trace.find("cad_build") {
            Some(root) => {
                let rows = root.counters.get("rows_input").copied().unwrap_or(0);
                if rows != 500 {
                    failures.push(format!("cad_build rows_input = {rows}, expected 500"));
                }
            }
            None => failures.push("no cad_build root span".to_owned()),
        }
    }

    let metrics = dbexplorer::obs::global().snapshot();
    for counter in ["cad.builds", "table.rows_scanned", "query.statements"] {
        match metrics.counters.get(counter) {
            Some(0) | None => failures.push(format!("global counter {counter:?} never moved")),
            Some(_) => {}
        }
    }
    let build_ms = metrics.histograms.get("cad.build_ms");
    if build_ms.is_none_or(|h| h.total() == 0) {
        failures.push("histogram \"cad.build_ms\" recorded no observations".to_owned());
    }

    if failures.is_empty() {
        println!("obs smoke OK ({} spans traced)", names.len());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("obs smoke FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
