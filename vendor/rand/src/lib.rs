//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact API subset DBExplorer uses: `StdRng` seeded with
//! [`SeedableRng::seed_from_u64`] and sampled with
//! [`RngExt::random_range`]. The generator is SplitMix64 — deterministic,
//! fast, and statistically adequate for synthetic-data generation and
//! k-means seeding (no cryptographic claims).

// Vendored stand-in: keep workspace-wide `clippy -D warnings` runs quiet.
#![allow(clippy::all)]

/// A source of `u64` randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding from a `u64` (the only constructor the project uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed; identical seeds give
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand`'s `Rng::random_range`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`. Panics if the range is empty,
    /// matching upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that can be sampled uniformly from a range. A single
/// generic `SampleRange` impl over this trait (mirroring upstream `rand`)
/// keeps integer/float literal fallback working at call sites like
/// `rng.random_range(0..9)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform sample from `[lo, hi]`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                if lo == hi {
                    return lo;
                }
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds land in well-separated
            // stream positions.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D6C1_B2A9,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1000),
                b.random_range(0usize..1000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }
}
