//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's API for the project's benches to
//! compile and produce useful wall-clock numbers: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints the
//! median per-iteration time. No statistical analysis, plots, or baselines.

// Vendored stand-in: keep workspace-wide `clippy -D warnings` runs quiet.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` imports keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.sample_size, |bencher| f(bencher));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.sample_size, |bencher| f(bencher, input));
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

fn run_samples(label: &str, sample_size: usize, mut run: impl FnMut(&mut Bencher)) {
    // Warm-up sample, discarded.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    run(&mut bencher);

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        run(&mut bencher);
        if bencher.iters > 0 {
            per_iter.push(bencher.elapsed / bencher.iters);
        }
    }
    per_iter.sort();
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("{label:<50} median {median:>12.3?} ({sample_size} samples)");
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one execution of `routine` (criterion runs many; this stand-in
    /// keeps samples cheap with a single iteration per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // Warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
    }
}
