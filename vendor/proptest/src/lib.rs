//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest's API that DBExplorer's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], a tiny [`string::string_regex`]
//! (character classes + quantifiers only), and the `prop_assert*` macros.
//!
//! Semantic differences from real proptest: cases are sampled from a fixed
//! deterministic seed (no env-var override), failures panic immediately
//! (no shrinking, no regression persistence). For the project's purposes —
//! hammering the pipeline with many random inputs — that is enough.

// Vendored stand-in: keep workspace-wide `clippy -D warnings` runs quiet.
#![allow(clippy::all)]

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator; every `cargo test` run sees the same
        /// case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x0DBE_0DBE_0DBE_0DBE ^ 0xA5A5_A5A5_5A5A_5A5A,
            }
        }

        /// A generator with an explicit seed.
        pub fn with_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            debug_assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one random value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy_impl {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy_impl {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_strategy_impl!(f32, f64);

    macro_rules! tuple_strategy_impl {
        ($($name:ident)+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy_impl!(A);
    tuple_strategy_impl!(A B);
    tuple_strategy_impl!(A B C);
    tuple_strategy_impl!(A B C D);
    tuple_strategy_impl!(A B C D E);
    tuple_strategy_impl!(A B C D E F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error for regex patterns this stand-in cannot generate from.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    enum Piece {
        /// A literal character.
        Lit(char),
        /// A character class: concrete alternatives, pre-expanded.
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    struct Quantified {
        piece: Piece,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a (restricted) regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Quantified>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for q in &self.pieces {
                let span = q.max - q.min + 1;
                let reps = q.min + rng.below(span);
                for _ in 0..reps {
                    match &q.piece {
                        Piece::Lit(c) => out.push(*c),
                        Piece::Class(chars) => out.push(chars[rng.below(chars.len())]),
                    }
                }
            }
            out
        }
    }

    /// Builds a string strategy from a restricted regex: literal characters,
    /// `[...]` classes with ranges, and the quantifiers `{m,n}` `{n}` `?`
    /// `*` `+`. Anything else returns an error.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let piece = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error("unterminated class".into()))?
                        + i
                        + 1;
                    let body = &chars[i + 1..close];
                    if body.first() == Some(&'^') {
                        return Err(Error("negated classes unsupported".into()));
                    }
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                            if lo > hi {
                                return Err(Error("inverted range in class".into()));
                            }
                            for cp in lo..=hi {
                                if let Some(c) = char::from_u32(cp) {
                                    set.push(c);
                                }
                            }
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    i = close + 1;
                    Piece::Class(set)
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    i += 2;
                    Piece::Lit(c)
                }
                '(' | ')' | '|' | '^' | '$' | '.' => {
                    return Err(Error(format!("unsupported construct {:?}", chars[i])))
                }
                c => {
                    i += 1;
                    Piece::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| Error("unterminated quantifier".into()))?
                        + i
                        + 1;
                    let body: String = chars[i + 1..close].iter().collect();
                    let parse =
                        |s: &str| s.trim().parse::<usize>().map_err(|e| Error(e.to_string()));
                    let (min, max) = match body.split_once(',') {
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                        None => {
                            let n = parse(&body)?;
                            (n, n)
                        }
                    };
                    if min > max {
                        return Err(Error("quantifier min > max".into()));
                    }
                    i = close + 1;
                    (min, max)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Quantified { piece, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property test (panics on failure here —
/// no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_map(pair in (0u8..3, -5i64..5).prop_map(|(a, b)| (a as i64) + b)) {
            prop_assert!((-5..8).contains(&pair));
        }

        #[test]
        fn regex_strings(s in crate::string::string_regex("[ -~]{0,12}").unwrap()) {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
