//! The paper's opening scenario: an out-of-town traveler booking a hotel.
//!
//! "If she is unfamiliar with the city, she may not understand what typical
//! prices are in the city or how all the 5-star hotels are clustered in the
//! financial district or how there is a tradeoff between location and
//! price." This example shows the CAD View answering each of those
//! questions — including the numeric-pivot extension (pivoting on the
//! binned price itself).
//!
//! ```sh
//! cargo run --release --example hotel_exploration
//! ```

use dbexplorer::core::{build_cad_view, CadRequest};
use dbexplorer::data::hotels::HotelsGenerator;
use dbexplorer::table::{group_by, Aggregate, Predicate};

fn main() {
    let hotels = HotelsGenerator::new(99).generate(10_000);
    println!("{} listings in the city\n", hotels.num_rows());

    // "What are typical prices?" — the flat summary statistic the paper
    // says is *not* enough...
    let summary = group_by(
        &hotels.full_view(),
        &["Type".into()],
        &[Aggregate::Count, Aggregate::Avg("PricePerNight".into())],
    )
    .expect("aggregate");
    println!("Average price per night by property type:");
    for r in 0..summary.num_rows() {
        println!(
            "  {:<8} {:>6} listings, avg ${:>6.0}",
            summary.value(r, 0),
            summary.value(r, 1),
            summary.value(r, 2).as_f64().unwrap_or(0.0)
        );
    }

    // ...and the context-dependent summary that is: pivot on District.
    println!("\nCAD View pivoted on District (4-star-and-up properties):");
    let upscale = hotels
        .filter(&Predicate::cmp(
            "StarRating",
            dbexplorer::table::predicate::CmpOp::Ge,
            4,
        ))
        .expect("filter");
    let by_district = build_cad_view(
        &upscale,
        &CadRequest::new("District")
            .with_pivot_values(vec!["FinancialDistrict", "Midtown", "Suburbs"])
            .with_compare(vec!["PricePerNight", "StarRating", "Type"])
            .with_max_compare_attrs(4)
            .with_iunits(2),
    )
    .expect("CAD View builds");
    println!("{}", by_district.render());
    println!(
        "The Financial District row shows the 5-star cluster at the top price\n\
         band; the Suburbs row shows the same star ratings at far lower prices —\n\
         the location-price trade-off, in one view.\n"
    );

    // The numeric-pivot extension: pivot on the price itself to see what
    // each budget buys.
    println!("CAD View pivoted on (binned) PricePerNight:");
    let by_price = build_cad_view(
        &hotels.full_view(),
        &CadRequest::new("PricePerNight")
            .with_compare(vec!["Type", "StarRating", "District"])
            .with_max_compare_attrs(4)
            .with_iunits(2),
    )
    .expect("CAD View builds");
    println!("{}", by_price.render());
    println!(
        "The cheapest band is hostels in the old town regardless of stars — the\n\
         paper's 'backpacker' segment whose price is poorly correlated with the\n\
         luxury attributes."
    );
}
