//! A TPFacet session: the two-phase interface of the paper's Section 5
//! (query panel + results panel + CAD View panel), driven programmatically
//! the way a user would click through it.
//!
//! ```sh
//! cargo run --release --example faceted_session
//! ```

use dbexplorer::core::{Panel, TpFacet};
use dbexplorer::data::usedcars::UsedCarsGenerator;

fn main() {
    let cars = UsedCarsGenerator::new(42).generate(40_000);
    let mut tp = TpFacet::new(&cars, 6);

    // Phase 1 — faceted browsing: the user narrows the result set from the
    // query panel (the paper's Figure 1 interface).
    let schema = cars.schema();
    let body = schema.index_of("BodyType").expect("attribute");
    let trans = schema.index_of("Transmission").expect("attribute");
    tp.select(body, "SUV").expect("facet value exists");
    tp.select(trans, "Automatic").expect("facet value exists");

    println!("=== Results panel (query panel summary digest) ===");
    let panel = tp.render().expect("render");
    // The full panel is long; show the first attribute blocks.
    for line in panel.lines().take(24) {
        println!("{line}");
    }
    println!("...\n");

    // Phase 2 — query revision with the CAD View: pivot on Make.
    tp.set_pivot("Make").expect("Make is queriable");
    tp.build_cad(|request| request.with_iunits(2).with_max_compare_attrs(4))
        .expect("CAD View builds");
    assert_eq!(tp.panel(), Panel::CadView);
    println!("=== CAD View panel (pivot = Make) ===");
    println!("{}", tp.render().expect("render"));

    // Interactive effects: click an IUnit to highlight similar ones...
    let first_make = tp.cad().expect("built").rows[0].pivot_label.clone();
    println!("Clicking ({first_make}, IUnit 1) highlights:");
    for (make, idx, sim) in tp.click_iunit(&first_make, 0) {
        println!("  {make} IUnit {} (similarity {sim:.2})", idx + 1);
    }

    // ...and click a pivot value to reorder rows by similarity.
    println!("\nClicking pivot value {first_make:?} reorders rows:");
    for (make, distance) in tp.click_pivot_value(&first_make) {
        println!("  {make} (distance {distance})");
    }

    // Toggle back to the results panel to inspect tuples.
    tp.toggle_panel();
    assert_eq!(tp.panel(), Panel::Results);
    println!(
        "\nBack on the results panel with {} tuples selected.",
        tp.engine().results().expect("results").len()
    );
}
