//! Composing the library into a written artifact: generates a complete
//! Markdown exploration report for the used-car dataset — column summaries,
//! the attribute-interaction map, and CAD Views for the key pivots — and
//! writes it to `exploration_report.md`.
//!
//! ```sh
//! cargo run --release --example exploration_report
//! cat exploration_report.md
//! ```

use dbexplorer::core::{build_cad_view, cad_to_markdown, CadRequest};
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::stats::interact::InteractionMatrix;
use dbexplorer::table::Predicate;
use std::fmt::Write as _;

fn main() {
    let cars = UsedCarsGenerator::new(42).generate(40_000);
    let mut report = String::new();

    writeln!(report, "# Used-car market exploration report\n").unwrap();
    writeln!(
        report,
        "Dataset: {} listings × {} attributes (synthetic; seed 42).\n",
        cars.num_rows(),
        cars.num_columns()
    )
    .unwrap();

    // 1. Column summaries.
    writeln!(report, "## Column summaries\n").unwrap();
    for summary in cars.summaries() {
        writeln!(report, "- {}", summary.render()).unwrap();
    }

    // 2. Attribute interactions.
    writeln!(report, "\n## Strongest attribute interactions\n").unwrap();
    let attrs: Vec<usize> = (0..cars.schema().len()).collect();
    let matrix = InteractionMatrix::compute(&cars.full_view(), &attrs, 6);
    writeln!(report, "| attribute pair | Cramér's V |").unwrap();
    writeln!(report, "|---|---|").unwrap();
    for pair in matrix.strongest_pairs().into_iter().take(6) {
        writeln!(
            report,
            "| {} ~ {} | {:.3} |",
            cars.schema().field(pair.a).name,
            cars.schema().field(pair.b).name,
            pair.cramers_v
        )
        .unwrap();
    }
    writeln!(report, "\nSoft functional dependencies (≥ 0.8):\n").unwrap();
    for (x, y, strength) in matrix.soft_fds(0.8) {
        writeln!(
            report,
            "- {} → {} ({strength:.2})",
            cars.schema().field(x).name,
            cars.schema().field(y).name
        )
        .unwrap();
    }

    // 3. CAD Views for the pivots a shopper would reach for.
    let suvs = cars
        .filter(&Predicate::eq("BodyType", "SUV"))
        .expect("filter");
    for (title, request) in [
        (
            "SUVs by Make",
            CadRequest::new("Make")
                .with_pivot_values(vec!["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"])
                .with_max_compare_attrs(4)
                .with_iunits(2),
        ),
        (
            "SUVs by price band",
            CadRequest::new("Price")
                .with_compare(vec!["Model", "Engine", "Year"])
                .with_max_compare_attrs(4)
                .with_iunits(2),
        ),
    ] {
        let cad = build_cad_view(&suvs, &request).expect("CAD View builds");
        writeln!(report, "\n## {title}\n").unwrap();
        report.push_str(&cad_to_markdown(&cad));
    }

    std::fs::write("exploration_report.md", &report).expect("report written");
    println!(
        "wrote exploration_report.md ({} lines)",
        report.lines().count()
    );
    // Echo the head so the example is self-contained.
    for line in report.lines().take(20) {
        println!("{line}");
    }
}
