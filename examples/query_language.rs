//! Tour of the query language: the SQL subset plus the paper's exploratory
//! extensions, executed against both datasets in one session.
//!
//! ```sh
//! cargo run --release --example query_language
//! ```

use dbexplorer::data::{MushroomGenerator, UsedCarsGenerator};
use dbexplorer::query::{QueryOutput, Session};

fn run(session: &mut Session, sql: &str) {
    println!("dbex> {sql}");
    match session.execute(sql) {
        Ok(QueryOutput::Rows { columns, rows }) => {
            println!("  {} row(s); columns: {}", rows.len(), columns.join(", "));
            for row in rows.iter().take(3) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
            if rows.len() > 3 {
                println!("  ...");
            }
        }
        Ok(QueryOutput::Cad { name, rendered, .. }) => {
            println!("  created CAD View {name}:");
            for line in rendered.lines().take(12) {
                println!("  {line}");
            }
            println!("  ...");
        }
        Ok(QueryOutput::Highlights(hits)) => {
            println!("  {} similar IUnit(s):", hits.len());
            for (value, id, sim) in hits.iter().take(5) {
                println!("  {value} IUnit {id} (similarity {sim:.2})");
            }
        }
        Ok(QueryOutput::Reordered(order)) => {
            let labels: Vec<&str> = order.iter().map(|(l, _)| l.as_str()).collect();
            println!("  new row order: {}", labels.join(", "));
        }
        Ok(QueryOutput::Text(text)) => {
            for line in text.lines().take(10) {
                println!("  {line}");
            }
        }
        Ok(QueryOutput::Suggestions { title, items }) => {
            println!("  {title}");
            for (text, score, detail) in items.iter().take(5) {
                println!("  {text} (score {score:.4}, {detail})");
            }
        }
        Err(e) => println!("  ERROR: {e}"),
    }
    println!();
}

fn main() {
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(42).generate(20_000));
    session.register_table("mushrooms", MushroomGenerator::new(2016).generate(8_124));

    // Plain SQL with the paper's literal conventions (`10K`, bare words).
    run(
        &mut session,
        "SELECT Make, Model, Price FROM cars \
         WHERE Price BETWEEN 20K AND 30K AND Drivetrain = AWD LIMIT 3",
    );
    run(
        &mut session,
        "SELECT * FROM cars WHERE Make IN (Jeep, Honda) AND NOT BodyType = Sedan LIMIT 2",
    );

    // Exploratory extensions on the cars table.
    run(
        &mut session,
        "CREATE CADVIEW suvs AS SET pivot = Make SELECT Price FROM cars \
         WHERE BodyType = SUV LIMIT COLUMNS 4 IUNITS 2",
    );
    run(
        &mut session,
        "HIGHLIGHT SIMILAR IUNITS IN suvs WHERE SIMILARITY(Ford, 1) > 2.5",
    );
    run(
        &mut session,
        "REORDER ROWS IN suvs ORDER BY SIMILARITY(Toyota) DESC",
    );

    // A CAD View with an explicit preference function (ORDER BY): rank
    // IUnits by ascending price — the paper's budget-shopper default.
    run(
        &mut session,
        "CREATE CADVIEW cheap_first AS SET pivot = Make FROM cars \
         WHERE BodyType = SUV ORDER BY Price ASC IUNITS 3 LIMIT COLUMNS 4",
    );

    // The mushroom table through the same language.
    run(
        &mut session,
        "CREATE CADVIEW by_class AS SET pivot = Class FROM mushrooms IUNITS 2 LIMIT COLUMNS 4",
    );
    run(
        &mut session,
        "SELECT Class, Odor FROM mushrooms WHERE Odor = foul LIMIT 2",
    );

    // Exploratory assistance: what next, and finish what I was typing.
    run(&mut session, "SUGGEST NEXT FOR suvs");
    run(&mut session, "SUGGEST COMPLETE SELECT * FROM cars WHERE Make =");

    // Schema inspection and aggregate queries.
    run(&mut session, "DESCRIBE cars");
    run(
        &mut session,
        "SELECT Make, COUNT(*), AVG(Price) FROM cars WHERE BodyType = SUV \
         GROUP BY Make ORDER BY 'avg(Price)' DESC LIMIT 5",
    );
    run(
        &mut session,
        "EXPLAIN CREATE CADVIEW plan AS SET pivot = Make FROM cars \
         WHERE BodyType = SUV LIMIT COLUMNS 4 IUNITS 2",
    );

    // Errors are ordinary values, not panics.
    run(&mut session, "SELECT * FROM nope");
    run(&mut session, "DROP TABLE cars");
}
