//! Quickstart: build and explore a CAD View in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbexplorer::core::{build_cad_view, CadRequest};
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::table::Predicate;

fn main() {
    // 1. A dataset: 40,000 synthetic used-car listings.
    let cars = UsedCarsGenerator::new(42).generate(40_000);

    // 2. A result context: Mary's query from the paper's Example 1.
    let result = cars
        .filter(&Predicate::and(vec![
            Predicate::eq("BodyType", "SUV"),
            Predicate::between("Mileage", 10_000, 30_000),
            Predicate::eq("Transmission", "Automatic"),
        ]))
        .expect("valid query");
    println!("{} automatic SUVs with 10K-30K miles\n", result.len());

    // 3. A CAD View: compare the five Makes Mary is considering, three
    //    IUnits each, five automatically-chosen Compare Attributes.
    let cad = build_cad_view(
        &result,
        &CadRequest::new("Make")
            .with_pivot_values(vec!["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"])
            .with_iunits(3)
            .with_max_compare_attrs(5),
    )
    .expect("CAD View builds");
    println!("{}", cad.render());

    // 4. Explore: which IUnits elsewhere resemble Chevrolet's top IUnit?
    println!("IUnits similar to (Chevrolet, IUnit 1):");
    for (make, idx, sim) in cad.highlight_similar("Chevrolet", 0, None) {
        println!("  {make} IUnit {} (similarity {sim:.2})", idx + 1);
    }

    // 5. And which Makes are most like Chevrolet overall?
    println!("\nMakes by similarity to Chevrolet:");
    for (make, distance) in cad.reorder_rows("Chevrolet") {
        println!("  {make} (rank-list distance {distance})");
    }
}
