//! Conditional vs independent comparison (the paper's Limitation 1): how
//! the CAD View changes when Mary adds a condition, made explicit with
//! [`dbexplorer::core::ContextDiff`].
//!
//! ```sh
//! cargo run --release --example context_comparison
//! ```

use dbexplorer::core::{build_cad_view, CadRequest, ContextDiff};
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::table::Predicate;

fn main() {
    let cars = UsedCarsGenerator::new(42).generate(40_000);

    // Shared request: same pivot and *forced* Compare Attributes, so the
    // two views are structurally comparable.
    let request = || {
        CadRequest::new("Make")
            .with_pivot_values(vec!["Chevrolet", "Ford", "Jeep"])
            .with_compare(vec!["Model", "Engine", "Price", "Drivetrain"])
            .with_max_compare_attrs(4)
            .with_iunits(3)
    };

    // Independent comparison: all SUVs.
    let before_ctx = cars.filter(&Predicate::eq("BodyType", "SUV")).unwrap();
    let before = build_cad_view(&before_ctx, &request()).unwrap();
    println!("=== Independent comparison (all SUVs) ===");
    println!("{}", before.render());

    // Conditional comparison: Mary limits herself to budget cars.
    let after_ctx = cars
        .filter(&Predicate::and(vec![
            Predicate::eq("BodyType", "SUV"),
            Predicate::between("Price", 8_000, 18_000),
        ]))
        .unwrap();
    let after = build_cad_view(&after_ctx, &request()).unwrap();
    println!("=== Conditional comparison (SUVs under $18K) ===");
    println!("{}", after.render());

    // What changed?
    let diff = ContextDiff::compute(&before, &after).unwrap();
    println!("{}", diff.render(&before, &after));
    println!(
        "Structure stability across the price condition: {:.0}%",
        100.0 * diff.stability()
    );
    println!(
        "\nAs the paper puts it: \"the conditional comparisons change with every\n\
         change in the given query condition\" — premium clusters (Traverse,\n\
         Explorer Ltd., Grand Cherokee) vanish from the budget context while\n\
         compact-SUV clusters (Escape, Patriot/Compass) take their place."
    );

    // Machine-readable exports.
    println!("--- Markdown export (first lines) ---");
    for line in dbexplorer::core::cad_to_markdown(&after).lines().take(6) {
        println!("{line}");
    }
    println!("--- CSV export (first lines) ---");
    for line in dbexplorer::core::cad_to_csv(&after).lines().take(5) {
        println!("{line}");
    }
}
