//! Exploratory analysis of the Mushroom dataset — the three study tasks of
//! the paper's Section 6.2 done "by hand" through the public API.
//!
//! ```sh
//! cargo run --release --example mushroom_exploration
//! ```

use dbexplorer::core::{build_cad_view, CadRequest};
use dbexplorer::data::mushroom::MushroomGenerator;
use dbexplorer::facet::{digest_similarity, FacetedEngine};
use dbexplorer::stats::metrics::f1_score;
use dbexplorer::table::Predicate;

fn main() {
    let shrooms = MushroomGenerator::new(2016).generate_default();
    println!(
        "Mushroom dataset: {} specimens × {} attributes\n",
        shrooms.num_rows(),
        shrooms.num_columns()
    );

    // --- Task 1: build a 2-value classifier for Bruises = true ---------
    // Pivot the CAD View on the class attribute; the Compare Attributes
    // are exactly the discriminating ones.
    let cad = build_cad_view(
        &shrooms.full_view(),
        &CadRequest::new("Bruises").with_iunits(3).with_max_compare_attrs(4),
    )
    .expect("CAD View builds");
    println!("CAD View pivoted on Bruises — Compare Attributes: {:?}", cad.compare_names);
    println!("{}", cad.render());

    // Read the classifier straight off the view: the top label of the
    // `true` row's first IUnit for the strongest Compare Attribute.
    let stalk = Predicate::eq("StalkSurfaceAboveRing", "smooth");
    let predicted: Vec<bool> = (0..shrooms.num_rows())
        .map(|r| stalk.eval(&shrooms, r).expect("valid predicate"))
        .collect();
    let bruised = Predicate::eq("Bruises", "true");
    let actual: Vec<bool> = (0..shrooms.num_rows())
        .map(|r| bruised.eval(&shrooms, r).expect("valid predicate"))
        .collect();
    println!(
        "Classifier `StalkSurfaceAboveRing = smooth` for Bruises=true: F1 = {:.3}\n",
        f1_score(&predicted, &actual)
    );

    // --- Task 2: most similar gill colors -------------------------------
    let engine = FacetedEngine::new(&shrooms, 6);
    let gill = shrooms.schema().index_of("GillColor").expect("attribute");
    let colors = ["buff", "white", "brown", "green"];
    let digests: Vec<_> = colors
        .iter()
        .map(|c| {
            let view = shrooms
                .filter(&Predicate::eq("GillColor", *c))
                .expect("valid value");
            engine.digest_of(&view)
        })
        .collect();
    println!("Pairwise gill-color digest similarity:");
    for i in 0..colors.len() {
        for j in (i + 1)..colors.len() {
            println!(
                "  {:>5} ~ {:<5} {:.4}",
                colors[i],
                colors[j],
                digest_similarity(&digests[i], &digests[j])
            );
        }
    }
    let _ = gill;

    // The CAD View answers the same question interactively:
    let cad = build_cad_view(
        &shrooms.full_view(),
        &CadRequest::new("GillColor")
            .with_pivot_values(colors.to_vec())
            .with_iunits(5),
    )
    .expect("CAD View builds");
    println!("\nGill colors by similarity to `white` (CAD View reorder):");
    for (color, d) in cad.reorder_rows("white") {
        println!("  {color:<6} distance {d}");
    }

    // --- Task 3: alternative search condition ---------------------------
    // Given: StalkShape = enlarging AND SporePrintColor = chocolate.
    let target = shrooms
        .filter(&Predicate::and(vec![
            Predicate::eq("StalkShape", "enlarging"),
            Predicate::eq("SporePrintColor", "chocolate"),
        ]))
        .expect("valid selection");
    // The twin stalk-color attributes make one alternative trivial; the
    // group structure provides another.
    let alt = shrooms
        .filter(&Predicate::and(vec![
            Predicate::eq("Habitat", "woods"),
            Predicate::eq("Odor", "foul"),
        ]))
        .expect("valid selection");
    println!(
        "\nAlternative condition (Habitat=woods AND Odor=foul): \
         jaccard with target = {:.3} over {} target rows",
        target.jaccard(&alt),
        target.len()
    );
}
