//! Global attribute-interaction analysis: the CORDS-style companion view
//! the paper's related-work section points at (Section 7) — which
//! attributes move together, and which soft functional dependencies hold.
//!
//! ```sh
//! cargo run --release --example attribute_interactions
//! ```

use dbexplorer::data::{MushroomGenerator, UsedCarsGenerator};
use dbexplorer::stats::interact::InteractionMatrix;

fn main() {
    // --- Used cars: the generator's planted dependency structure --------
    let cars = UsedCarsGenerator::new(42).generate(20_000);
    let attrs: Vec<usize> = (0..cars.schema().len()).collect();
    let matrix = InteractionMatrix::compute(&cars.full_view(), &attrs, 6);

    println!("=== UsedCars: pairwise Cramér's V ===");
    println!("{}", matrix.render());

    println!("Strongest associations:");
    for p in matrix.strongest_pairs().into_iter().take(5) {
        println!(
            "  {} ~ {}  V = {:.3}",
            cars.schema().field(p.a).name,
            cars.schema().field(p.b).name,
            p.cramers_v
        );
    }

    println!("\nSoft functional dependencies (>= 0.8 determination):");
    for (x, y, strength) in matrix.soft_fds(0.8).into_iter().take(8) {
        println!(
            "  {} -> {}  ({strength:.2})",
            cars.schema().field(x).name,
            cars.schema().field(y).name
        );
    }

    // --- Mushroom: finding the twin attributes ---------------------------
    let shrooms = MushroomGenerator::new(2016).generate(8_124);
    let attrs: Vec<usize> = (0..shrooms.schema().len()).collect();
    let matrix = InteractionMatrix::compute(&shrooms.full_view(), &attrs, 6);

    println!("\n=== Mushroom: strongest associations ===");
    for p in matrix.strongest_pairs().into_iter().take(6) {
        println!(
            "  {} ~ {}  V = {:.3}",
            shrooms.schema().field(p.a).name,
            shrooms.schema().field(p.b).name,
            p.cramers_v
        );
    }
    println!(
        "\nThe stalk-color twins and the odor/class dependency surface at the\n\
         top — exactly the structure Task 3 of the user study exploits."
    );
}
