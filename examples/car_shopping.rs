//! Mary's car-shopping session, end to end, through the SQL interface —
//! the paper's Example 1 plus the Section 2.1.2/2.1.3 query extensions.
//!
//! ```sh
//! cargo run --release --example car_shopping
//! ```

use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::query::{QueryOutput, Session};

fn main() {
    let mut session = Session::new();
    session.register_table("UsedCars", UsedCarsGenerator::new(42).generate(40_000));

    // Mary's initial lookup query: too many rows to browse.
    println!("-- Mary's initial query --");
    let out = session
        .execute(
            "SELECT Make, Model, Price FROM UsedCars \
             WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic \
               AND BodyType = SUV LIMIT 5",
        )
        .expect("query runs");
    if let QueryOutput::Rows { columns, rows } = &out {
        println!("{}", columns.join(" | "));
        for row in rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" | "));
        }
        println!("... (first 5 of thousands)\n");
    }

    // Exploratory mode: the paper's CREATE CADVIEW statement, verbatim.
    println!("-- CREATE CADVIEW CompareMakes --");
    let out = session
        .execute(
            "CREATE CADVIEW CompareMakes AS \
             SET pivot = Make \
             SELECT Price \
             FROM UsedCars \
             WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic \
               AND BodyType = SUV AND \
               (Make = Jeep OR Make = Toyota OR Make = Honda OR \
                Make = Ford OR Make = Chevrolet) \
             LIMIT COLUMNS 5 IUNITS 3",
        )
        .expect("CAD View builds");
    if let QueryOutput::Cad { rendered, .. } = &out {
        println!("{rendered}");
    }

    // Mary likes one of Chevrolet's IUnits: where else does it appear?
    println!("-- HIGHLIGHT SIMILAR IUNITS --");
    let out = session
        .execute(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes \
             WHERE SIMILARITY(Chevrolet, 1) > 3.5",
        )
        .expect("highlight runs");
    if let QueryOutput::Highlights(hits) = &out {
        if hits.is_empty() {
            println!("(no IUnit above threshold — Chevrolet's top IUnit is distinctive)");
        }
        for (make, id, sim) in hits {
            println!("{make} IUnit {id}: similarity {sim:.2} (max 5.0)");
        }
        println!();
    }

    // And which Makes resemble Chevrolet overall?
    println!("-- REORDER ROWS BY SIMILARITY(Chevrolet) --");
    let out = session
        .execute("REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC")
        .expect("reorder runs");
    if let QueryOutput::Reordered(order) = &out {
        for (make, distance) in order {
            println!("{make:<10} rank-list distance {distance}");
        }
    }

    // The hidden-attribute payoff (Limitation 2): Mary wanted V4 engines
    // but Engine is not queriable. The CAD View exposed Engine as a
    // Compare Attribute; its IUnits tell her which queriable attributes
    // (FuelEconomy, Price, Model) act as surrogates.
    let cad = session.cad_view("CompareMakes").expect("view stored");
    println!(
        "\nCompare Attributes chosen for CompareMakes: {:?}",
        cad.compare_names
    );
    let engine_hidden = !cad.compare_names.is_empty()
        && cad.compare_names.iter().any(|n| n == "Engine");
    println!(
        "Engine (non-queriable) surfaced in the CAD View: {}",
        if engine_hidden { "yes" } else { "no" }
    );
}
