//! Segment files: one table, columnar, checksummed.
//!
//! A segment is a sequence of CRC-framed blocks behind an 8-byte magic:
//!
//! ```text
//! "DBEXSEG1"
//! block: header   — version, table id, row count, field descriptors
//! block: column 0 — typed payload (values + packed null bitmap, or
//!                   dictionary pages + packed codes)
//! block: column 1
//! ...
//! block: footer   — FNV-1a content digest of the decoded table
//! ```
//!
//! Every block is framed `[u32 len][u32 crc32(payload)][payload]`, both
//! little-endian, so truncation and bit rot are detected before any
//! payload byte is interpreted. Decoding never trusts a declared count:
//! all reads go through a bounds-checked [`Cursor`], size arithmetic is
//! `checked_mul`, and structurally impossible payloads yield
//! [`StoreError::Corrupt`] rather than an allocation or a panic.

use crate::crc32::crc32;
use crate::error::StoreError;
use dbex_table::dict::NULL_CODE;
use dbex_table::{Column, DataType, Dictionary, Field, Schema};
use std::path::Path;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DBEXSEG1";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Everything a segment stores about one table, decoded but not yet
/// promoted to a [`dbex_table::Table`] (the store layer does that so it
/// can adopt persisted ids in a controlled order).
#[derive(Debug)]
pub struct SegmentParts {
    /// The table's schema, reconstructed from the header descriptors.
    pub schema: Schema,
    /// One column per field, in schema order.
    pub columns: Vec<Column>,
    /// Row count.
    pub rows: usize,
    /// The `Table::id()` the table had when saved.
    pub persisted_id: u64,
    /// Content digest recorded in the footer.
    pub digest: u64,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends one `[len][crc][payload]` frame to `out`.
pub fn push_block(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn dtype_tag(data_type: DataType) -> u8 {
    match data_type {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Categorical => 2,
    }
}

fn pack_bools(bits: &[bool]) -> Vec<u8> {
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    packed
}

/// Serialises a table's parts into segment-file bytes.
pub fn encode_table(schema: &Schema, columns: &[Column], rows: usize, table_id: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SEGMENT_MAGIC);

    // Header block.
    let mut header = Vec::new();
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    header.extend_from_slice(&table_id.to_le_bytes());
    header.extend_from_slice(&(rows as u64).to_le_bytes());
    header.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for field in schema.fields() {
        push_str(&mut header, &field.name);
        header.push(dtype_tag(field.data_type));
        header.push(field.queriable as u8);
    }
    push_block(&mut out, &header);

    // One block per column.
    for column in columns {
        let mut body = Vec::new();
        match column {
            Column::Int { data, nulls } => {
                body.push(0u8);
                for v in data {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                body.extend_from_slice(&pack_bools(nulls));
            }
            Column::Float { data, nulls } => {
                body.push(1u8);
                for v in data {
                    body.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                body.extend_from_slice(&pack_bools(nulls));
            }
            Column::Categorical { codes, dict } => {
                body.push(2u8);
                body.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for (_, value) in dict.iter() {
                    push_str(&mut body, value);
                }
                for code in codes {
                    body.extend_from_slice(&code.to_le_bytes());
                }
            }
        }
        push_block(&mut out, &body);
    }

    // Footer block: the content digest, so a decode can prove it
    // reconstructed the same logical table that was saved.
    let mut footer = Vec::new();
    footer.extend_from_slice(&content_digest(schema, columns, rows).to_le_bytes());
    push_block(&mut out, &footer);

    out
}

// ---------------------------------------------------------------------------
// Content digest
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// FNV-1a digest over a table's logical content: row count, field
/// descriptors, and every typed cell. Deliberately independent of the
/// process-local `Table::id()` so an unchanged table hashes identically
/// across sessions and its segment can be reused by content address.
pub fn content_digest(schema: &Schema, columns: &[Column], rows: usize) -> u64 {
    let mut h = Fnv::new();
    h.u64(rows as u64);
    h.u64(schema.len() as u64);
    for field in schema.fields() {
        h.u64(field.name.len() as u64);
        h.bytes(field.name.as_bytes());
        h.bytes(&[dtype_tag(field.data_type), field.queriable as u8]);
    }
    for column in columns {
        match column {
            Column::Int { data, nulls } => {
                h.bytes(&[0]);
                for (v, &null) in data.iter().zip(nulls) {
                    // Nulls carry arbitrary slot values; don't let them in.
                    h.u64(if null { 1 } else { 0 });
                    h.u64(if null { 0 } else { *v as u64 });
                }
            }
            Column::Float { data, nulls } => {
                h.bytes(&[1]);
                for (v, &null) in data.iter().zip(nulls) {
                    h.u64(if null { 1 } else { 0 });
                    h.u64(if null { 0 } else { v.to_bits() });
                }
            }
            Column::Categorical { codes, dict } => {
                h.bytes(&[2]);
                h.u64(dict.len() as u64);
                for (_, value) in dict.iter() {
                    h.u64(value.len() as u64);
                    h.bytes(value.as_bytes());
                }
                for code in codes {
                    h.u64(*code as u64);
                }
            }
        }
    }
    h.0
}

/// [`content_digest`] of an existing table.
pub fn table_digest(table: &dbex_table::Table) -> u64 {
    let columns: Vec<Column> = (0..table.num_columns()).map(|i| table.column(i).clone()).collect();
    content_digest(table.schema(), &columns, table.num_rows())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a block payload. Every accessor returns a
/// typed [`StoreError`] instead of slicing past the end.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
    /// Offset of the payload within the file, for error reporting.
    base: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload located at `base` bytes into the file at `path`.
    pub fn new(data: &'a [u8], path: &'a Path, base: usize) -> Cursor<'a> {
        Cursor { data, pos: 0, path, base }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: self.path.to_path_buf(),
            offset: self.base + self.pos,
            detail: detail.into(),
        }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.corrupt(format!("{n} more byte(s)")))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `[u32 len][bytes]` UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("utf-8 string"))
    }

    /// Requires the payload to be fully consumed.
    pub fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing byte(s)", self.data.len() - self.pos)))
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

/// Iterates the CRC-framed blocks of a file, validating each frame's
/// length and checksum before handing out the payload.
pub struct BlockReader<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> BlockReader<'a> {
    /// Wraps the bytes after the magic. `pos` is the absolute offset of
    /// the first frame within the file.
    pub fn new(data: &'a [u8], pos: usize, path: &'a Path) -> BlockReader<'a> {
        BlockReader { data, pos, path }
    }

    fn truncated(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Truncated {
            path: self.path.to_path_buf(),
            offset: self.pos,
            detail: detail.into(),
        }
    }

    /// Reads the next block, returning `(payload, payload_offset)`.
    pub fn next_block(&mut self) -> Result<(&'a [u8], usize), StoreError> {
        if self.data.len() - self.pos < 8 {
            return Err(self.truncated("8-byte block frame".to_owned()));
        }
        let frame = &self.data[self.pos..];
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let stored_crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > self.data.len() - self.pos - 8 {
            return Err(self.truncated(format!("{len}-byte block payload")));
        }
        let payload = &frame[8..8 + len];
        let found = crc32(payload);
        if found != stored_crc {
            return Err(StoreError::ChecksumMismatch {
                path: self.path.to_path_buf(),
                offset: self.pos,
                expected: stored_crc,
                found,
            });
        }
        let payload_offset = self.pos + 8;
        self.pos += 8 + len;
        Ok((payload, payload_offset))
    }

    /// True once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Requires the file to end exactly here.
    pub fn done(&self) -> Result<(), StoreError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(StoreError::Corrupt {
                path: self.path.to_path_buf(),
                offset: self.pos,
                detail: format!("{} byte(s) after final block", self.data.len() - self.pos),
            })
        }
    }
}

/// Checks a file's opening magic.
pub fn check_magic(data: &[u8], magic: &[u8; 8], path: &Path) -> Result<(), StoreError> {
    if data.len() < 8 || &data[..8] != magic {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            found: data[..data.len().min(8)].to_vec(),
        });
    }
    Ok(())
}

fn unpack_bools(cursor: &mut Cursor<'_>, rows: usize) -> Result<Vec<bool>, StoreError> {
    let packed = cursor.take(rows.div_ceil(8))?;
    Ok((0..rows).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Decodes segment bytes into their parts, verifying every frame CRC and
/// the footer digest along the way.
pub fn decode_segment(data: &[u8], path: &Path) -> Result<SegmentParts, StoreError> {
    check_magic(data, SEGMENT_MAGIC, path)?;
    let mut blocks = BlockReader::new(data, 8, path);

    // Header.
    let (payload, base) = blocks.next_block()?;
    let mut cur = Cursor::new(payload, path, base);
    let version = cur.u32()?;
    if version != SEGMENT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let persisted_id = cur.u64()?;
    let rows_u64 = cur.u64()?;
    let rows = usize::try_from(rows_u64)
        .ok()
        .filter(|&r| r <= data.len().saturating_mul(8))
        .ok_or_else(|| StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: base,
            detail: format!("implausible row count {rows_u64} for a {}-byte file", data.len()),
        })?;
    let field_count = cur.u32()? as usize;
    let mut fields = Vec::new();
    for _ in 0..field_count {
        let name = cur.str()?.to_owned();
        let dtype = match cur.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Categorical,
            tag => return Err(cur_corrupt(&cur, format!("unknown dtype tag {tag}"))),
        };
        let queriable = match cur.u8()? {
            0 => false,
            1 => true,
            flag => return Err(cur_corrupt(&cur, format!("queriable flag {flag}"))),
        };
        fields.push(Field {
            name,
            data_type: dtype,
            queriable,
        });
    }
    cur.done()?;
    let schema = Schema::new(fields).map_err(|e| StoreError::Table {
        path: path.to_path_buf(),
        source: e,
    })?;

    // Columns.
    let mut columns = Vec::new();
    for i in 0..field_count {
        let (payload, base) = blocks.next_block()?;
        let mut cur = Cursor::new(payload, path, base);
        let tag = cur.u8()?;
        let expected = dtype_tag(schema.field(i).data_type);
        if tag != expected {
            return Err(cur_corrupt(
                &cur,
                format!("column {i} tag {tag} != schema dtype tag {expected}"),
            ));
        }
        let column = match tag {
            0 => {
                let mut data = Vec::with_capacity(capped(rows, cur.remaining() / 8));
                for _ in 0..rows {
                    data.push(cur.u64()? as i64);
                }
                Column::Int {
                    data,
                    nulls: unpack_bools(&mut cur, rows)?,
                }
            }
            1 => {
                let mut data = Vec::with_capacity(capped(rows, cur.remaining() / 8));
                for _ in 0..rows {
                    data.push(f64::from_bits(cur.u64()?));
                }
                Column::Float {
                    data,
                    nulls: unpack_bools(&mut cur, rows)?,
                }
            }
            _ => {
                let dict_len = cur.u32()? as usize;
                if dict_len >= NULL_CODE as usize {
                    return Err(cur_corrupt(&cur, format!("dictionary of {dict_len} entries")));
                }
                let mut values = Vec::with_capacity(capped(dict_len, cur.remaining() / 4));
                for _ in 0..dict_len {
                    values.push(cur.str()?.to_owned());
                }
                let dict = Dictionary::from_values(values).map_err(|e| StoreError::Table {
                    path: path.to_path_buf(),
                    source: e,
                })?;
                let mut codes = Vec::with_capacity(capped(rows, cur.remaining() / 4));
                for _ in 0..rows {
                    let code = cur.u32()?;
                    if code != NULL_CODE && code as usize >= dict.len() {
                        return Err(cur_corrupt(&cur, format!("code {code} >= dict {}", dict.len())));
                    }
                    codes.push(code);
                }
                Column::Categorical { codes, dict }
            }
        };
        cur.done()?;
        columns.push(column);
    }

    // Footer.
    let (payload, base) = blocks.next_block()?;
    let mut cur = Cursor::new(payload, path, base);
    let stored_digest = cur.u64()?;
    cur.done()?;
    blocks.done()?;

    let digest = content_digest(&schema, &columns, rows);
    if digest != stored_digest {
        return Err(StoreError::DigestMismatch {
            path: path.to_path_buf(),
            expected: stored_digest,
            found: digest,
        });
    }

    Ok(SegmentParts {
        schema,
        columns,
        rows,
        persisted_id,
        digest,
    })
}

/// Caps a declared element count by what the remaining payload could
/// possibly hold, so `Vec::with_capacity` never trusts the wire.
fn capped(declared: usize, fits: usize) -> usize {
    declared.min(fits.max(1))
}

fn cur_corrupt(cur: &Cursor<'_>, detail: String) -> StoreError {
    StoreError::Corrupt {
        path: cur.path.to_path_buf(),
        offset: cur.base + cur.pos,
        detail,
    }
}

/// File name for a content-addressed segment.
pub fn segment_file_name(digest: u64) -> String {
    format!("seg-{digest:016x}.seg")
}

/// Parses a segment file name back to its digest.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Byte offsets of every block-frame boundary in `data` (the positions a
/// truncation test should cut at).
pub fn block_boundaries(data: &[u8]) -> Vec<usize> {
    let mut offsets = vec![8.min(data.len())];
    let mut pos = 8;
    while pos + 8 <= data.len() {
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        if len > data.len() - pos - 8 {
            break;
        }
        pos += 8 + len;
        offsets.push(pos);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{TableBuilder, Value};

    fn sample_table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Rating", DataType::Float),
            Field::hidden("Engine", DataType::Categorical),
        ])
        .unwrap();
        let makes = ["BMW", "Honda", "Toyota"];
        let engines = ["V6", "I4"];
        for i in 0..57 {
            let price = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(15_000 + i * 37)
            };
            let rating = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Float(1.0 + (i % 5) as f64 * 0.7)
            };
            b.push_row(vec![
                Value::Str(makes[(i % 3) as usize].to_owned()),
                price,
                rating,
                Value::Str(engines[(i % 2) as usize].to_owned()),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn parts(table: &dbex_table::Table) -> (Schema, Vec<Column>, usize) {
        let columns = (0..table.num_columns()).map(|i| table.column(i).clone()).collect();
        (table.schema().clone(), columns, table.num_rows())
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        let table = sample_table();
        let (schema, columns, rows) = parts(&table);
        let bytes = encode_table(&schema, &columns, rows, table.id());
        let decoded = decode_segment(&bytes, Path::new("test.seg")).unwrap();

        assert_eq!(decoded.rows, rows);
        assert_eq!(decoded.persisted_id, table.id());
        assert_eq!(decoded.digest, table_digest(&table));
        assert_eq!(decoded.schema.names(), schema.names());
        assert_eq!(decoded.schema.queriable_indices(), schema.queriable_indices());
        // Cell-exact: compare every value through the table API.
        let (t2, adopted) =
            dbex_table::Table::from_parts_adopting(decoded.schema, decoded.columns, decoded.rows, 0)
                .unwrap();
        assert!(!adopted, "id 0 must never be adopted");
        for row in 0..rows {
            for col in 0..schema.len() {
                assert_eq!(table.value(row, col), t2.value(row, col), "cell ({row},{col})");
            }
        }
        // And digest-exact after the round trip.
        assert_eq!(table_digest(&t2), table_digest(&table));
    }

    #[test]
    fn digest_ignores_table_id_but_not_content() {
        let table = sample_table();
        let (schema, columns, rows) = parts(&table);
        let a = encode_table(&schema, &columns, rows, 7);
        let b = encode_table(&schema, &columns, rows, 99);
        let da = decode_segment(&a, Path::new("a.seg")).unwrap().digest;
        let db = decode_segment(&b, Path::new("b.seg")).unwrap().digest;
        assert_eq!(da, db, "digest must be id-independent for content addressing");

        // Any cell change must move the digest.
        let mut columns2 = columns.clone();
        if let Column::Int { data, .. } = &mut columns2[1] {
            data[3] += 1;
        }
        assert_ne!(content_digest(&schema, &columns2, rows), da);
    }

    #[test]
    fn null_slots_do_not_leak_into_the_digest() {
        let table = sample_table();
        let (schema, mut columns, rows) = parts(&table);
        // Row 0 of Price is null (0 % 11 == 0); its slot value is
        // arbitrary and must not affect the digest.
        let before = content_digest(&schema, &columns, rows);
        if let Column::Int { data, nulls } = &mut columns[1] {
            assert!(nulls[0]);
            data[0] = 0xDEAD;
        }
        assert_eq!(content_digest(&schema, &columns, rows), before);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        let table = sample_table();
        let (schema, columns, rows) = parts(&table);
        let bytes = encode_table(&schema, &columns, rows, table.id());
        for cut in 0..bytes.len() {
            let err = decode_segment(&bytes[..cut], Path::new("cut.seg"));
            assert!(err.is_err(), "decode of {cut}/{} bytes must fail", bytes.len());
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let table = sample_table();
        let (schema, columns, rows) = parts(&table);
        let clean = encode_table(&schema, &columns, rows, table.id());
        let reference = decode_segment(&clean, Path::new("ok.seg")).unwrap().digest;
        let mut bytes = clean.clone();
        // Stride through the file flipping one bit at a time; a flip must
        // either produce an error or (never) decode to different content.
        for byte in (0..bytes.len()).step_by(7) {
            let bit = (byte % 8) as u8;
            bytes[byte] ^= 1 << bit;
            match decode_segment(&bytes, Path::new("flip.seg")) {
                Err(_) => {}
                Ok(parts) => assert_eq!(parts.digest, reference, "silent corruption at byte {byte}"),
            }
            bytes[byte] ^= 1 << bit;
        }
    }

    #[test]
    fn block_boundaries_walk_the_frames() {
        let table = sample_table();
        let (schema, columns, rows) = parts(&table);
        let bytes = encode_table(&schema, &columns, rows, table.id());
        let bounds = block_boundaries(&bytes);
        // magic + header + 4 columns + footer = 6 frame ends + the magic end.
        assert_eq!(bounds.len(), 7);
        assert_eq!(bounds[0], 8);
        assert_eq!(*bounds.last().unwrap(), bytes.len());
    }

    #[test]
    fn segment_names_round_trip() {
        let name = segment_file_name(0xDEAD_BEEF_0123_4567);
        assert_eq!(name, "seg-deadbeef01234567.seg");
        assert_eq!(parse_segment_name(&name), Some(0xDEAD_BEEF_0123_4567));
        assert_eq!(parse_segment_name("seg-xyz.seg"), None);
        assert_eq!(parse_segment_name("MANIFEST-0"), None);
    }
}
