//! # dbex-store
//!
//! The durable catalog: crash-safe, checksummed, std-only persistence for
//! DBExplorer's tables and warm clustering state.
//!
//! The paper's system is in-memory — result sets of ~40K tuples need no
//! disk to stay interactive — but a *server* built on it does: restarting
//! the process should not cost the catalog, and ideally not the CAD
//! View's incrementally-reusable cluster solutions either. This crate
//! provides that layer:
//!
//! * [`segment`] — one table per content-addressed file: dictionary pages
//!   and packed code/value columns, every block framed with a length and
//!   CRC-32 so torn writes and bit rot are detected before interpretation.
//! * [`manifest`] — a tiny versioned catalog file committed by atomic
//!   rename; the previous generation is kept so a torn swap falls back.
//! * [`store`] — the [`save`]/[`open`] protocols (write-temp → fsync →
//!   rename → fsync-dir), content-addressed segment reuse, the stats
//!   sidecar, and newest-first recovery with typed fallback.
//! * [`vfs`] — the IO shim the protocols run against, with a
//!   deterministic fault injector ([`FaultVfs`]) used by the recovery
//!   test suite to crash a save at every one of its mutation points.
//!
//! The load-bearing invariant, enforced by fault-injection and bit-flip
//! property tests: **`open` never panics on disk bytes and never returns
//! silently wrong rows** — every failure is a typed [`StoreError`] or a
//! clean fallback to an older, digest-verified generation.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod crc32;
pub mod error;
pub mod manifest;
pub mod segment;
pub mod store;
pub mod vfs;

pub use crc32::crc32;
pub use error::StoreError;
pub use manifest::{manifest_file_name, parse_manifest_gen, Manifest, ManifestEntry};
pub use segment::{block_boundaries, content_digest, segment_file_name, table_digest};
pub use store::{open, save, OpenReport, SaveReport};
pub use vfs::{flip_bit, FaultKind, FaultVfs, RealVfs, Vfs};
