//! Save/open protocols over a [`Vfs`]: the crash-safe catalog itself.
//!
//! ## Save protocol
//!
//! 1. Encode every table to segment bytes; the FNV-1a content digest
//!    names the file (`seg-<digest>.seg`), so a table whose content has
//!    not changed since any live generation is **reused**, not rewritten.
//! 2. New segments are written `tmp → fsync → rename`: a crash mid-write
//!    leaves only a `.tmp.*` orphan, never a torn `seg-*.seg`.
//! 3. The optional stats sidecar (warm cluster solutions) is written the
//!    same way.
//! 4. The manifest for generation `g+1` is written `tmp → fsync → rename
//!    → fsync(dir)`. Only this rename commits the snapshot; everything
//!    before it is invisible to recovery.
//! 5. Old generations are pruned best-effort (keeping the previous one as
//!    the fallback), so a crash during prune costs disk, not data.
//!
//! ## Open protocol
//!
//! Generations are tried newest-first. A generation loads only if its
//! manifest decodes, every referenced segment decodes **and** matches the
//! manifest's digest, and the tables pass `dbex-table` validation.
//! Anything less falls back to the next-older generation (counted in
//! `store.recoveries`); if every generation fails, the typed
//! [`StoreError::AllGenerationsCorrupt`] reports the newest failure.
//! Decoding never panics on disk bytes — that property is enforced by the
//! fault-injection and bit-flip suites in `tests/store_recovery.rs`.

use crate::error::StoreError;
use crate::manifest::{
    decode_manifest, encode_manifest, manifest_file_name, parse_manifest_gen, stats_file_name,
    Manifest, ManifestEntry,
};
use crate::segment::{
    check_magic, decode_segment, encode_table, push_block, segment_file_name, table_digest,
    BlockReader, Cursor,
};
use crate::vfs::Vfs;
use dbex_stats::{ClusterKey, ClusterSolution, StatsCache};
use dbex_table::{Column, Table};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening a stats sidecar file.
pub const STATS_MAGIC: &[u8; 8] = b"DBEXSTA1";

/// Current stats sidecar format version.
pub const STATS_VERSION: u32 = 1;

/// What a [`save`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Generation committed by this save.
    pub generation: u64,
    /// Tables recorded in the manifest.
    pub tables: usize,
    /// Segments newly written by this save.
    pub segments_written: usize,
    /// Segments reused by content address from earlier generations.
    pub segments_reused: usize,
    /// Cluster solutions persisted in the stats sidecar.
    pub cluster_entries: usize,
    /// Total bytes written (segments + sidecar + manifest).
    pub bytes_written: u64,
}

/// What an [`open`] recovered.
#[derive(Debug)]
pub struct OpenReport {
    /// Generation that loaded.
    pub generation: u64,
    /// Recovered tables, sorted by catalog name.
    pub tables: Vec<(String, Arc<Table>)>,
    /// Cluster solutions decoded from the sidecar (empty if the sidecar
    /// was absent, corrupt, or inapplicable).
    clusters: Vec<(ClusterKey, ClusterSolution)>,
    /// Older generations fallen back to because newer ones were corrupt.
    pub fallbacks: u32,
    /// Whether every table kept its persisted id. When false the cached
    /// cluster fingerprints reference ids now owned by other tables, so
    /// rehydration is skipped (safe, merely cold).
    pub all_ids_adopted: bool,
}

impl OpenReport {
    /// Cluster solutions available for rehydration.
    pub fn cluster_entries(&self) -> usize {
        self.clusters.len()
    }

    /// Inserts the recovered cluster solutions into `cache`, returning
    /// how many were rehydrated. No-op (returns 0) when table-id adoption
    /// failed, since the persisted fingerprints would then be dangling.
    pub fn rehydrate_into(&self, cache: &StatsCache) -> usize {
        if !self.all_ids_adopted {
            return 0;
        }
        for (key, solution) in &self.clusters {
            cache.cluster_insert(*key, solution.clone());
        }
        self.clusters.len()
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Writes `data` durably at `dir/name` via `tmp → fsync → rename`.
fn write_atomic(vfs: &dyn Vfs, dir: &Path, name: &str, data: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!(".tmp.{name}"));
    let dest = dir.join(name);
    vfs.write_all(&tmp, data).map_err(|e| io_err(&tmp, e))?;
    vfs.fsync(&tmp).map_err(|e| io_err(&tmp, e))?;
    vfs.rename(&tmp, &dest).map_err(|e| io_err(&dest, e))?;
    Ok(())
}

/// Generations present in `dir`, ascending.
fn list_generations(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<u64>, StoreError> {
    let names = vfs.list(dir).map_err(|e| io_err(dir, e))?;
    let mut gens: Vec<u64> = names.iter().filter_map(|n| parse_manifest_gen(n)).collect();
    gens.sort_unstable();
    Ok(gens)
}

fn encode_stats(entries: &[(ClusterKey, ClusterSolution)], table_ids: &BTreeSet<u64>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&STATS_VERSION.to_le_bytes());
    payload.extend_from_slice(&(table_ids.len() as u32).to_le_bytes());
    for id in table_ids {
        payload.extend_from_slice(&id.to_le_bytes());
    }
    payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, solution) in entries {
        payload.extend_from_slice(&key.partition_fp.to_le_bytes());
        payload.extend_from_slice(&(key.l as u64).to_le_bytes());
        payload.extend_from_slice(&(key.iters as u64).to_le_bytes());
        payload.extend_from_slice(&key.seed.to_le_bytes());
        payload.push(key.plus_plus as u8);
        payload.extend_from_slice(&(key.sample as u64).to_le_bytes());
        payload.extend_from_slice(&(solution.clusters.len() as u32).to_le_bytes());
        for cluster in &solution.clusters {
            payload.extend_from_slice(&(cluster.len() as u32).to_le_bytes());
            for member in cluster {
                payload.extend_from_slice(&member.to_le_bytes());
            }
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(STATS_MAGIC);
    push_block(&mut out, &payload);
    out
}

/// Decoded sidecar: the table-id set it was saved against, plus entries.
struct StatsSidecar {
    table_ids: BTreeSet<u64>,
    entries: Vec<(ClusterKey, ClusterSolution)>,
}

fn usize_field(cur: &mut Cursor<'_>, what: &str, path: &Path) -> Result<usize, StoreError> {
    let v = cur.u64()?;
    usize::try_from(v).map_err(|_| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset: 0,
        detail: format!("{what} {v} exceeds usize"),
    })
}

fn decode_stats(data: &[u8], path: &Path) -> Result<StatsSidecar, StoreError> {
    check_magic(data, STATS_MAGIC, path)?;
    let mut blocks = BlockReader::new(data, 8, path);
    let (payload, base) = blocks.next_block()?;
    blocks.done()?;

    let mut cur = Cursor::new(payload, path, base);
    let version = cur.u32()?;
    if version != STATS_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let id_count = cur.u32()? as usize;
    let mut table_ids = BTreeSet::new();
    for _ in 0..id_count {
        table_ids.insert(cur.u64()?);
    }
    let entry_count = cur.u32()? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(cur.remaining() / 42 + 1));
    for _ in 0..entry_count {
        let partition_fp = cur.u64()?;
        let l = usize_field(&mut cur, "cluster count l", path)?;
        let iters = usize_field(&mut cur, "iteration cap", path)?;
        let seed = cur.u64()?;
        let plus_plus = cur.u8()? != 0;
        let sample = usize_field(&mut cur, "sample cap", path)?;
        let cluster_count = cur.u32()? as usize;
        let mut clusters = Vec::with_capacity(cluster_count.min(cur.remaining() / 4 + 1));
        for _ in 0..cluster_count {
            let len = cur.u32()? as usize;
            let mut members = Vec::with_capacity(len.min(cur.remaining() / 4 + 1));
            for _ in 0..len {
                members.push(cur.u32()?);
            }
            clusters.push(members);
        }
        entries.push((
            ClusterKey {
                partition_fp,
                l,
                iters,
                seed,
                plus_plus,
                sample,
            },
            ClusterSolution { clusters },
        ));
    }
    cur.done()?;
    Ok(StatsSidecar { table_ids, entries })
}

/// Saves `tables` (and, if given, `cache`'s exact cluster solutions) as a
/// new manifest generation in `dir`. Returns only once the new manifest's
/// rename has been made durable; any error leaves the previous generation
/// untouched and loadable.
pub fn save(
    vfs: &dyn Vfs,
    dir: &Path,
    tables: &[(String, Arc<Table>)],
    cache: Option<&StatsCache>,
) -> Result<SaveReport, StoreError> {
    let started = Instant::now();
    vfs.create_dir_all(dir).map_err(|e| io_err(dir, e))?;

    let generations = list_generations(vfs, dir)?;
    let generation = generations.last().copied().unwrap_or(0) + 1;

    let mut sorted: Vec<&(String, Arc<Table>)> = tables.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));

    let mut entries = Vec::with_capacity(sorted.len());
    let mut segments_written = 0usize;
    let mut segments_reused = 0usize;
    let mut bytes_written = 0u64;
    let mut table_ids = BTreeSet::new();

    for (name, table) in sorted {
        let columns: Vec<Column> =
            (0..table.num_columns()).map(|i| table.column(i).clone()).collect();
        let bytes = encode_table(table.schema(), &columns, table.num_rows(), table.id());
        let digest = table_digest(table);
        let segment = segment_file_name(digest);
        if vfs.exists(&dir.join(&segment)) {
            segments_reused += 1;
        } else {
            write_atomic(vfs, dir, &segment, &bytes)?;
            segments_written += 1;
            bytes_written += bytes.len() as u64;
        }
        table_ids.insert(table.id());
        entries.push(ManifestEntry {
            name: name.clone(),
            segment,
            rows: table.num_rows() as u64,
            digest,
            table_id: table.id(),
        });
    }

    // Stats sidecar: persisted only when there is something to keep warm.
    let exported = cache.map(|c| c.export_clusters()).unwrap_or_default();
    let mut exported = exported;
    exported.sort_by_key(|(k, _)| (k.partition_fp, k.l, k.iters, k.seed, k.sample, k.plus_plus));
    let stats_file = if exported.is_empty() {
        None
    } else {
        let name = stats_file_name(generation);
        let bytes = encode_stats(&exported, &table_ids);
        write_atomic(vfs, dir, &name, &bytes)?;
        bytes_written += bytes.len() as u64;
        Some(name)
    };

    let manifest = Manifest {
        generation,
        entries,
        stats_file,
    };
    let bytes = encode_manifest(&manifest);
    write_atomic(vfs, dir, &manifest_file_name(generation), &bytes)?;
    bytes_written += bytes.len() as u64;
    // The commit point: make the rename itself durable.
    vfs.fsync_dir(dir).map_err(|e| io_err(dir, e))?;

    prune(vfs, dir, generation);

    dbex_obs::histogram!("store.save_ms", SAVE_MS_BOUNDS).observe_ms(started.elapsed());
    Ok(SaveReport {
        generation,
        tables: manifest.entries.len(),
        segments_written,
        segments_reused,
        cluster_entries: exported.len(),
        bytes_written,
    })
}

const SAVE_MS_BOUNDS: &[f64] = &[1.0, 5.0, 20.0, 80.0, 320.0, 1280.0, 5120.0];

/// Best-effort cleanup after a committed save: keeps the new and previous
/// generation (manifests, sidecars, referenced segments), removes older
/// manifests, orphaned segments, stale sidecars, and `.tmp.*` leftovers.
/// Failures are ignored — pruning can never threaten recoverability.
fn prune(vfs: &dyn Vfs, dir: &Path, newest: u64) {
    let Ok(names) = vfs.list(dir) else { return };

    // Which generations to keep, and which segments they reference.
    let mut gens: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_manifest_gen(n))
        .filter(|&g| g <= newest)
        .collect();
    gens.sort_unstable();
    let keep: BTreeSet<u64> = gens.into_iter().rev().take(2).collect();
    let mut live_segments = BTreeSet::new();
    for &gen in &keep {
        let path = dir.join(manifest_file_name(gen));
        if let Ok(data) = vfs.read(&path) {
            if let Ok(manifest) = decode_manifest(&data, &path) {
                for entry in manifest.entries {
                    live_segments.insert(entry.segment);
                }
            }
        }
    }

    for name in names {
        let doomed = if name.starts_with(".tmp.") {
            true
        } else if let Some(gen) = parse_manifest_gen(&name) {
            !keep.contains(&gen)
        } else if let Some(gen) = crate::manifest::parse_stats_name(&name) {
            !keep.contains(&gen)
        } else if crate::segment::parse_segment_name(&name).is_some() {
            !live_segments.contains(&name)
        } else {
            false
        };
        if doomed {
            let _ = vfs.remove(&dir.join(&name));
        }
    }
}

/// Opens the newest loadable generation in `dir`. See the module docs for
/// the fallback discipline.
pub fn open(vfs: &dyn Vfs, dir: &Path) -> Result<OpenReport, StoreError> {
    let started = Instant::now();
    let generations = match list_generations(vfs, dir) {
        Ok(gens) => gens,
        // A directory that doesn't exist yet is a cold start, not an error
        // to diagnose.
        Err(StoreError::Io { source, .. })
            if source.kind() == std::io::ErrorKind::NotFound =>
        {
            return Err(StoreError::NoManifest { dir: dir.to_path_buf() })
        }
        Err(e) => return Err(e),
    };
    if generations.is_empty() {
        return Err(StoreError::NoManifest { dir: dir.to_path_buf() });
    }

    let mut newest_error: Option<StoreError> = None;
    let mut fallbacks = 0u32;
    for &generation in generations.iter().rev() {
        match try_open_generation(vfs, dir, generation) {
            Ok(mut report) => {
                report.fallbacks = fallbacks;
                if fallbacks > 0 {
                    dbex_obs::counter!("store.recoveries").incr(fallbacks as u64);
                }
                dbex_obs::histogram!("store.open_ms", SAVE_MS_BOUNDS).observe_ms(started.elapsed());
                return Ok(report);
            }
            Err(e) => {
                fallbacks += 1;
                if newest_error.is_none() {
                    newest_error = Some(e);
                }
            }
        }
    }
    Err(StoreError::AllGenerationsCorrupt {
        dir: dir.to_path_buf(),
        tried: generations.len(),
        newest: Box::new(newest_error.unwrap_or(StoreError::NoManifest {
            dir: dir.to_path_buf(),
        })),
    })
}

fn try_open_generation(vfs: &dyn Vfs, dir: &Path, generation: u64) -> Result<OpenReport, StoreError> {
    let manifest_path = dir.join(manifest_file_name(generation));
    let data = vfs.read(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
    let manifest = decode_manifest(&data, &manifest_path)?;

    // Decode every segment first; promote to tables afterwards in
    // ascending persisted-id order so id adoption (which bumps the global
    // id counter monotonically) can succeed for the whole set.
    let mut decoded = Vec::with_capacity(manifest.entries.len());
    for entry in &manifest.entries {
        let seg_path = dir.join(&entry.segment);
        let bytes = vfs.read(&seg_path).map_err(|e| io_err(&seg_path, e))?;
        let parts = decode_segment(&bytes, &seg_path)?;
        if parts.digest != entry.digest {
            return Err(StoreError::DigestMismatch {
                path: seg_path,
                expected: entry.digest,
                found: parts.digest,
            });
        }
        if parts.rows as u64 != entry.rows {
            return Err(StoreError::Corrupt {
                path: seg_path,
                offset: 0,
                detail: format!("manifest says {} rows, segment has {}", entry.rows, parts.rows),
            });
        }
        decoded.push((entry.name.clone(), entry.table_id, parts));
    }
    decoded.sort_by_key(|(_, table_id, _)| *table_id);

    let mut all_ids_adopted = true;
    let mut tables = Vec::with_capacity(decoded.len());
    let mut recovered_ids = BTreeSet::new();
    for (name, table_id, parts) in decoded {
        let seg_path = dir.join(segment_file_name(parts.digest));
        // The manifest's table_id is authoritative: content-addressed
        // reuse can leave a stale id inside the segment itself.
        let (table, adopted) =
            Table::from_parts_adopting(parts.schema, parts.columns, parts.rows, table_id)
                .map_err(|e| StoreError::Table {
                    path: seg_path,
                    source: e,
                })?;
        all_ids_adopted &= adopted;
        recovered_ids.insert(table.id());
        tables.push((name, Arc::new(table)));
    }
    tables.sort_by(|a, b| a.0.cmp(&b.0));

    // The sidecar is an optimisation, never a load-blocker: corrupt or
    // mismatched sidecars cost warmth, not data.
    let mut clusters = Vec::new();
    if let Some(stats_name) = &manifest.stats_file {
        if all_ids_adopted {
            let stats_path = dir.join(stats_name);
            let sidecar = vfs
                .read(&stats_path)
                .map_err(|e| io_err(&stats_path, e))
                .and_then(|bytes| decode_stats(&bytes, &stats_path));
            match sidecar {
                Ok(sidecar) if sidecar.table_ids == recovered_ids => {
                    clusters = sidecar.entries;
                }
                Ok(_) => {
                    dbex_obs::counter!("store.stats_sidecar_skipped").incr(1);
                }
                Err(_) => {
                    dbex_obs::counter!("store.stats_sidecar_skipped").incr(1);
                }
            }
        }
    }

    Ok(OpenReport {
        generation,
        tables,
        clusters,
        fallbacks: 0,
        all_ids_adopted,
    })
}

/// Block-frame boundaries of the file at `path` — the offsets crash tests
/// truncate at. Convenience wrapper over [`crate::segment::block_boundaries`].
pub fn file_block_boundaries(path: &Path) -> std::io::Result<Vec<usize>> {
    Ok(crate::segment::block_boundaries(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultVfs, RealVfs};
    use dbex_table::{DataType, Field, TableBuilder, Value};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbex-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn table(rows: i64, offset: i64) -> Arc<Table> {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for i in 0..rows {
            b.push_row(vec![
                Value::Str(format!("make-{}", i % 5)),
                Value::Int(offset + i),
            ])
            .unwrap();
        }
        Arc::new(b.finish())
    }

    fn digests(report: &OpenReport) -> Vec<(String, u64)> {
        report
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), table_digest(t)))
            .collect()
    }

    #[test]
    fn save_open_round_trip_with_reuse() {
        let dir = temp_dir("roundtrip");
        let vfs = RealVfs;
        let cars = table(120, 1000);
        let hotels = table(40, 9000);
        let catalog = vec![("cars".to_owned(), cars.clone()), ("hotels".to_owned(), hotels)];

        let r1 = save(&vfs, &dir, &catalog, None).unwrap();
        assert_eq!(r1.generation, 1);
        assert_eq!(r1.segments_written, 2);
        assert_eq!(r1.segments_reused, 0);

        // Second save of the same content: both segments reused.
        let r2 = save(&vfs, &dir, &catalog, None).unwrap();
        assert_eq!(r2.generation, 2);
        assert_eq!(r2.segments_written, 0);
        assert_eq!(r2.segments_reused, 2);

        let opened = open(&vfs, &dir).unwrap();
        assert_eq!(opened.generation, 2);
        assert_eq!(opened.fallbacks, 0);
        assert_eq!(opened.tables.len(), 2);
        assert_eq!(opened.tables[0].0, "cars");
        assert_eq!(table_digest(&opened.tables[0].1), table_digest(&cars));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_of_missing_or_empty_dir_is_no_manifest() {
        let dir = temp_dir("cold");
        assert!(matches!(open(&RealVfs, &dir), Err(StoreError::NoManifest { .. })));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(open(&RealVfs, &dir), Err(StoreError::NoManifest { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let vfs = RealVfs;
        let v1 = vec![("t".to_owned(), table(50, 0))];
        let v2 = vec![("t".to_owned(), table(50, 777))];
        save(&vfs, &dir, &v1, None).unwrap();
        let v1_digest = table_digest(&v1[0].1);
        save(&vfs, &dir, &v2, None).unwrap();

        // Corrupt generation 2's manifest body.
        crate::vfs::flip_bit(&dir.join(manifest_file_name(2)), 20, 2).unwrap();

        let opened = open(&vfs, &dir).unwrap();
        assert_eq!(opened.generation, 1);
        assert_eq!(opened.fallbacks, 1);
        assert_eq!(digests(&opened), vec![("t".to_owned(), v1_digest)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_generations_corrupt_is_typed_not_a_panic() {
        let dir = temp_dir("allcorrupt");
        let vfs = RealVfs;
        save(&vfs, &dir, &[("t".to_owned(), table(10, 0))], None).unwrap();
        save(&vfs, &dir, &[("t".to_owned(), table(10, 5))], None).unwrap();
        for gen in 1..=2 {
            std::fs::write(dir.join(manifest_file_name(gen)), b"garbage").unwrap();
        }
        match open(&vfs, &dir) {
            Err(StoreError::AllGenerationsCorrupt { tried, .. }) => assert_eq!(tried, 2),
            other => panic!("expected AllGenerationsCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_during_save_preserves_the_previous_generation() {
        let dir = temp_dir("faultsave");
        let v1 = vec![("t".to_owned(), table(60, 0))];
        let v2 = vec![("t".to_owned(), table(60, 31337))];
        save(&RealVfs, &dir, &v1, None).unwrap();
        let v1_digest = table_digest(&v1[0].1);
        let v2_digest = table_digest(&v2[0].1);

        // Dry-run to count the mutation ops a v2 save performs.
        let probe_dir = temp_dir("faultsave-probe");
        save(&RealVfs, &probe_dir, &v1, None).unwrap();
        let counting = FaultVfs::counting();
        save(&counting, &probe_dir, &v2, None).unwrap();
        let ops = counting.mutations();
        std::fs::remove_dir_all(&probe_dir).unwrap();
        assert!(ops >= 6, "expected several mutation ops, got {ops}");

        for nth in 0..ops {
            let dir_n = temp_dir(&format!("faultsave-{nth}"));
            copy_dir(&dir, &dir_n);
            let vfs = FaultVfs::failing_at(FaultKind::Enospc, nth);
            let result = save(&vfs, &dir_n, &v2, None);
            let opened = open(&RealVfs, &dir_n).unwrap_or_else(|e| {
                panic!("open after fault at op {nth} failed: {e}")
            });
            let got = digests(&opened);
            // Whatever the fault hit, recovery must land on a complete
            // catalog: the new one if the manifest committed, else the old.
            assert!(
                got == vec![("t".to_owned(), v1_digest)] || got == vec![("t".to_owned(), v2_digest)],
                "fault at op {nth}: unexpected catalog {got:?}"
            );
            if result.is_ok() {
                // A save that claims success must actually be the new catalog.
                assert_eq!(got, vec![("t".to_owned(), v2_digest)], "fault at op {nth}");
            }
            std::fs::remove_dir_all(&dir_n).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_key() -> ClusterKey {
        ClusterKey {
            partition_fp: 0xABCD,
            l: 4,
            iters: 10,
            seed: 42,
            plus_plus: true,
            sample: usize::MAX,
        }
    }

    #[test]
    fn same_process_reopen_skips_rehydration_safely() {
        // Within one process, a reopened table can never adopt its
        // persisted id (the counter is already past it), so cluster
        // fingerprints would dangle. The sidecar must be skipped — tables
        // load fine, warmth is simply lost.
        let dir = temp_dir("sidecar-inproc");
        let vfs = RealVfs;
        let cache = StatsCache::new();
        cache.cluster_insert(
            sample_key(),
            ClusterSolution {
                clusters: vec![vec![0, 2, 4], vec![1, 3]],
            },
        );
        let catalog = vec![("t".to_owned(), table(30, 0))];
        let report = save(&vfs, &dir, &catalog, Some(&cache)).unwrap();
        assert_eq!(report.cluster_entries, 1);

        let opened = open(&vfs, &dir).unwrap();
        assert_eq!(opened.tables.len(), 1);
        assert!(!opened.all_ids_adopted);
        assert_eq!(opened.cluster_entries(), 0);
        assert_eq!(opened.rehydrate_into(&StatsCache::new()), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Hand-writes a generation whose manifest assigns `table_id`s above
    /// the process counter — what a snapshot looks like to a *fresh*
    /// process — so adoption and rehydration can be tested in-process.
    fn write_snapshot_with_ids(dir: &Path, base_table: &Table, big_id: u64) -> u64 {
        std::fs::create_dir_all(dir).unwrap();
        let columns: Vec<Column> = (0..base_table.num_columns())
            .map(|i| base_table.column(i).clone())
            .collect();
        let bytes =
            encode_table(base_table.schema(), &columns, base_table.num_rows(), big_id);
        let digest = table_digest(base_table);
        std::fs::write(dir.join(segment_file_name(digest)), &bytes).unwrap();

        let table_ids: BTreeSet<u64> = [big_id].into();
        let entries = vec![(
            sample_key(),
            ClusterSolution {
                clusters: vec![vec![0, 1], vec![2]],
            },
        )];
        let stats_name = stats_file_name(1);
        std::fs::write(dir.join(&stats_name), encode_stats(&entries, &table_ids)).unwrap();

        let manifest = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                name: "t".to_owned(),
                segment: segment_file_name(digest),
                rows: base_table.num_rows() as u64,
                digest,
                table_id: big_id,
            }],
            stats_file: Some(stats_name),
        };
        std::fs::write(dir.join(manifest_file_name(1)), encode_manifest(&manifest)).unwrap();
        digest
    }

    #[test]
    fn fresh_process_snapshot_adopts_ids_and_rehydrates_clusters() {
        let dir = temp_dir("sidecar-fresh");
        let base = table(25, 0);
        let big_id = base.id() + 10_000;
        write_snapshot_with_ids(&dir, &base, big_id);

        let opened = open(&RealVfs, &dir).unwrap();
        assert!(opened.all_ids_adopted);
        assert_eq!(opened.tables[0].1.id(), big_id);
        assert_eq!(opened.cluster_entries(), 1);
        let cache = StatsCache::new();
        assert_eq!(opened.rehydrate_into(&cache), 1);
        assert_eq!(cache.exact_cluster_entries(), 1);
        let solution = cache.cluster_lookup(&sample_key()).unwrap();
        assert_eq!(solution.clusters, vec![vec![0, 1], vec![2]]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sidecar_only_costs_warmth_never_tables() {
        let dir = temp_dir("sidecar-corrupt");
        let base = table(25, 50);
        let big_id = base.id() + 20_000;
        let digest = write_snapshot_with_ids(&dir, &base, big_id);

        crate::vfs::flip_bit(&dir.join(stats_file_name(1)), 12, 0).unwrap();
        let opened = open(&RealVfs, &dir).unwrap();
        assert_eq!(opened.tables.len(), 1);
        assert_eq!(table_digest(&opened.tables[0].1), digest);
        assert_eq!(opened.cluster_entries(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_payload_round_trips() {
        let table_ids: BTreeSet<u64> = [3, 9].into();
        let entries = vec![
            (
                sample_key(),
                ClusterSolution {
                    clusters: vec![vec![0, 2, 4], vec![1, 3]],
                },
            ),
            (
                ClusterKey {
                    partition_fp: 1,
                    l: 2,
                    iters: 3,
                    seed: 4,
                    plus_plus: false,
                    sample: 5,
                },
                ClusterSolution { clusters: vec![] },
            ),
        ];
        let bytes = encode_stats(&entries, &table_ids);
        let back = decode_stats(&bytes, Path::new("stats.bin")).unwrap();
        assert_eq!(back.table_ids, table_ids);
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].0, sample_key());
        assert_eq!(back.entries[0].1.clusters, entries[0].1.clusters);
        assert!(back.entries[1].1.clusters.is_empty());

        for cut in 0..bytes.len() {
            assert!(decode_stats(&bytes[..cut], Path::new("s")).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn prune_keeps_exactly_two_generations() {
        let dir = temp_dir("prune");
        let vfs = RealVfs;
        for i in 0..5 {
            save(&vfs, &dir, &[("t".to_owned(), table(20, i * 100))], None).unwrap();
        }
        let names = vfs.list(&dir).unwrap();
        let gens: Vec<u64> = names.iter().filter_map(|n| parse_manifest_gen(n)).collect();
        assert_eq!(gens, vec![4, 5]);
        // Only segments referenced by gens 4 and 5 survive.
        let segs = names.iter().filter(|n| n.starts_with("seg-")).count();
        assert_eq!(segs, 2);
        assert!(!names.iter().any(|n| n.starts_with(".tmp.")));
        // Both surviving generations still load.
        assert_eq!(open(&vfs, &dir).unwrap().generation, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}
