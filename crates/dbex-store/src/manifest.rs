//! The catalog manifest: one small file naming a consistent snapshot.
//!
//! A manifest file `MANIFEST-<generation:016x>` lists, for every table in
//! the catalog at save time, the content-addressed segment holding its
//! bytes, its row count, content digest, and persisted table id; plus the
//! optional stats-sidecar file carrying warm cluster solutions. The whole
//! payload sits in one CRC-framed block behind the `DBEXMAN1` magic, so a
//! torn manifest is detected as cheaply as a torn segment.
//!
//! Manifests are never overwritten: each save writes generation `g+1` via
//! write-temp → fsync → atomic-rename → fsync-dir, keeping generation `g`
//! on disk. Recovery walks generations newest-first and falls back across
//! any that fail to load.

use crate::error::StoreError;
use crate::segment::{check_magic, push_block, BlockReader, Cursor};
use std::path::Path;

/// Magic bytes opening every manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"DBEXMAN1";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One table recorded in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Catalog name the table was registered under.
    pub name: String,
    /// Segment file name (content-addressed) holding the table.
    pub segment: String,
    /// Row count, for sanity checks before decoding.
    pub rows: u64,
    /// Content digest the segment must decode to.
    pub digest: u64,
    /// The authoritative `Table::id()` at save time. Segments embed an id
    /// too, but content-addressed reuse can leave a stale one there; the
    /// manifest's is the one recovery adopts.
    pub table_id: u64,
}

/// A decoded manifest: the catalog as of one generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic generation number (embedded in the file name too).
    pub generation: u64,
    /// Tables, sorted by name at encode time.
    pub entries: Vec<ManifestEntry>,
    /// Stats sidecar file name, if cluster solutions were persisted.
    pub stats_file: Option<String>,
}

/// File name for a manifest generation (fixed-width hex so lexicographic
/// order equals numeric order).
pub fn manifest_file_name(generation: u64) -> String {
    format!("MANIFEST-{generation:016x}")
}

/// Parses a manifest file name back to its generation.
pub fn parse_manifest_gen(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("MANIFEST-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// File name for a generation's stats sidecar.
pub fn stats_file_name(generation: u64) -> String {
    format!("stats-{generation:016x}.bin")
}

/// Parses a stats sidecar file name back to its generation.
pub fn parse_stats_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("stats-")?.strip_suffix(".bin")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serialises a manifest to file bytes.
pub fn encode_manifest(manifest: &Manifest) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    payload.extend_from_slice(&manifest.generation.to_le_bytes());
    match &manifest.stats_file {
        Some(name) => {
            payload.push(1);
            push_str(&mut payload, name);
        }
        None => payload.push(0),
    }
    payload.extend_from_slice(&(manifest.entries.len() as u32).to_le_bytes());
    for entry in &manifest.entries {
        push_str(&mut payload, &entry.name);
        push_str(&mut payload, &entry.segment);
        payload.extend_from_slice(&entry.rows.to_le_bytes());
        payload.extend_from_slice(&entry.digest.to_le_bytes());
        payload.extend_from_slice(&entry.table_id.to_le_bytes());
    }

    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    push_block(&mut out, &payload);
    out
}

/// Decodes manifest bytes, verifying magic, CRC, and structure.
pub fn decode_manifest(data: &[u8], path: &Path) -> Result<Manifest, StoreError> {
    check_magic(data, MANIFEST_MAGIC, path)?;
    let mut blocks = BlockReader::new(data, 8, path);
    let (payload, base) = blocks.next_block()?;
    blocks.done()?;

    let mut cur = Cursor::new(payload, path, base);
    let version = cur.u32()?;
    if version != MANIFEST_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let generation = cur.u64()?;
    let stats_file = match cur.u8()? {
        0 => None,
        1 => Some(cur.str()?.to_owned()),
        flag => {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: base,
                detail: format!("stats-file flag {flag}"),
            })
        }
    };
    let count = cur.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(cur.remaining() / 24 + 1));
    for _ in 0..count {
        let name = cur.str()?.to_owned();
        let segment = cur.str()?.to_owned();
        let rows = cur.u64()?;
        let digest = cur.u64()?;
        let table_id = cur.u64()?;
        entries.push(ManifestEntry {
            name,
            segment,
            rows,
            digest,
            table_id,
        });
    }
    cur.done()?;

    Ok(Manifest {
        generation,
        entries,
        stats_file,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 42,
            entries: vec![
                ManifestEntry {
                    name: "cars".to_owned(),
                    segment: "seg-00000000deadbeef.seg".to_owned(),
                    rows: 15_191,
                    digest: 0xDEAD_BEEF,
                    table_id: 7,
                },
                ManifestEntry {
                    name: "hotels".to_owned(),
                    segment: "seg-0000000012345678.seg".to_owned(),
                    rows: 1_000,
                    digest: 0x1234_5678,
                    table_id: 9,
                },
            ],
            stats_file: Some(stats_file_name(42)),
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let bytes = encode_manifest(&m);
        let back = decode_manifest(&bytes, Path::new("MANIFEST-test")).unwrap();
        assert_eq!(back, m);

        let bare = Manifest {
            stats_file: None,
            ..sample()
        };
        let back = decode_manifest(&encode_manifest(&bare), Path::new("m")).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn file_names_sort_numerically_and_parse_back() {
        assert_eq!(manifest_file_name(1), "MANIFEST-0000000000000001");
        assert!(manifest_file_name(9) < manifest_file_name(10));
        assert!(manifest_file_name(255) < manifest_file_name(4096));
        assert_eq!(parse_manifest_gen(&manifest_file_name(77)), Some(77));
        assert_eq!(parse_manifest_gen("MANIFEST-zz"), None);
        assert_eq!(parse_manifest_gen("seg-0.seg"), None);
        assert_eq!(parse_stats_name(&stats_file_name(77)), Some(77));
        assert_eq!(parse_stats_name("stats-short.bin"), None);
    }

    #[test]
    fn truncation_and_flips_are_typed_errors() {
        let bytes = encode_manifest(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_manifest(&bytes[..cut], Path::new("m")).is_err(), "cut {cut}");
        }
        let mut copy = bytes.clone();
        for byte in 0..copy.len() {
            copy[byte] ^= 0x10;
            assert!(decode_manifest(&copy, Path::new("m")).is_err(), "flip {byte}");
            copy[byte] ^= 0x10;
        }
    }
}
