//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32fast` variant), std-only.
//!
//! Every block in a segment or manifest file is framed as
//! `[len][crc32(payload)][payload]`; this is the checksum half of that
//! frame. Table-driven, one 1 KiB table computed at compile time.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (initial value all-ones, final complement — the
/// standard zlib convention, so values match external tooling).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalog's check value for this polynomial/convention.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = b"DBEXSEG1 example payload with some entropy 0123456789";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip at byte {byte} bit {bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
