//! Typed storage errors.
//!
//! Every failure mode of the on-disk format — IO, torn files, checksum
//! mismatches, structurally invalid payloads, digest divergence — maps to
//! a distinct [`StoreError`] variant carrying the file and offset it was
//! detected at. Nothing in this crate panics on input bytes: the recovery
//! property tests feed truncations, bit flips and injected IO faults
//! through every decode path and require a typed error or a clean
//! fallback, never an abort.

use std::path::PathBuf;

/// Any failure while saving or opening a snapshot directory.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem (or the fault-injecting VFS) failed.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The originating IO error.
        source: std::io::Error,
    },
    /// A file ended before a declared block or field did.
    Truncated {
        /// File being decoded.
        path: PathBuf,
        /// Byte offset the decoder had reached.
        offset: usize,
        /// What was expected there.
        detail: String,
    },
    /// A block's stored CRC does not match its payload.
    ChecksumMismatch {
        /// File being decoded.
        path: PathBuf,
        /// Byte offset of the block frame.
        offset: usize,
        /// CRC stored in the frame.
        expected: u32,
        /// CRC computed over the payload bytes.
        found: u32,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// File being decoded.
        path: PathBuf,
        /// The bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// File being decoded.
        path: PathBuf,
        /// Version number found in the header.
        found: u32,
    },
    /// A checksum-valid payload is structurally invalid (impossible
    /// counts, non-UTF-8 strings, trailing bytes, ...).
    Corrupt {
        /// File being decoded.
        path: PathBuf,
        /// Byte offset within the payload.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// A decoded table's content digest does not match the manifest's.
    DigestMismatch {
        /// Segment file that decoded cleanly but to the wrong content.
        path: PathBuf,
        /// Digest recorded at save time.
        expected: u64,
        /// Digest of the decoded content.
        found: u64,
    },
    /// The directory holds no manifest at all (a cold start, not
    /// corruption).
    NoManifest {
        /// The snapshot directory.
        dir: PathBuf,
    },
    /// Every manifest generation present failed to load.
    AllGenerationsCorrupt {
        /// The snapshot directory.
        dir: PathBuf,
        /// How many generations were tried.
        tried: usize,
        /// The error from the newest generation.
        newest: Box<StoreError>,
    },
    /// The decoded parts were rejected by the table layer's validation.
    Table {
        /// Segment file the parts came from.
        path: PathBuf,
        /// The table-layer rejection.
        source: dbex_table::Error,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            StoreError::Truncated { path, offset, detail } => {
                write!(f, "{} truncated at byte {offset}: expected {detail}", path.display())
            }
            StoreError::ChecksumMismatch { path, offset, expected, found } => write!(
                f,
                "{} block at byte {offset}: checksum {found:#010x} != stored {expected:#010x}",
                path.display()
            ),
            StoreError::BadMagic { path, found } => {
                write!(f, "{} has bad magic {found:02x?}", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => {
                write!(f, "{} uses unsupported format version {found}", path.display())
            }
            StoreError::Corrupt { path, offset, detail } => {
                write!(f, "{} corrupt at payload byte {offset}: {detail}", path.display())
            }
            StoreError::DigestMismatch { path, expected, found } => write!(
                f,
                "{} decoded to digest {found:#018x}, manifest says {expected:#018x}",
                path.display()
            ),
            StoreError::NoManifest { dir } => {
                write!(f, "no manifest in {}", dir.display())
            }
            StoreError::AllGenerationsCorrupt { dir, tried, newest } => write!(
                f,
                "all {tried} manifest generation(s) in {} failed to load; newest: {newest}",
                dir.display()
            ),
            StoreError::Table { path, source } => {
                write!(f, "{} decoded to an invalid table: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Table { source, .. } => Some(source),
            StoreError::AllGenerationsCorrupt { newest, .. } => Some(newest.as_ref()),
            _ => None,
        }
    }
}
