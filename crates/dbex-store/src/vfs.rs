//! The IO shim: a [`Vfs`] trait the save/open protocols run against, with
//! a real-filesystem implementation and a deterministic fault injector.
//!
//! Crash consistency is not testable by hoping: [`FaultVfs`] counts
//! mutating operations (writes, fsyncs, renames, removes) and fails the
//! N-th one with a chosen [`FaultKind`] — a short write, an ENOSPC, a
//! failed fsync, a torn rename. After the fault fires the VFS is **dead**:
//! every subsequent operation errors, modelling a process that crashed at
//! that instant. Sweeping N across a save's whole operation sequence
//! exercises every crash point the protocol has.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Filesystem operations the store protocols are written against.
///
/// Paths are plain `std::path::Path`s; implementations decide what they
/// mean. All methods are `&self` so a `Vfs` can be shared across threads.
pub trait Vfs: Send + Sync {
    /// Reads an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates `path` and writes `data` fully.
    fn write_all(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Flushes a file's contents and metadata to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory, making renames within it durable.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) in `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_all(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and syncing it is the POSIX way to
        // make a completed rename durable; on platforms where directories
        // cannot be opened this degrades to a no-op.
        match fs::File::open(dir) {
            Ok(f) => f.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// What the injected fault does at the operation it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A write persists only the first half of its bytes, then errors.
    ShortWrite,
    /// A write errors leaving the target untouched (disk full).
    Enospc,
    /// An fsync errors; preceding writes may not be durable.
    FsyncFail,
    /// A rename leaves a half-written destination and no source.
    TornRename,
}

/// One fault fires on a kind-specific op type; every other mutating op up
/// to that point proceeds normally, and everything after errors as
/// "crashed".
#[derive(Debug)]
struct FaultState {
    /// Mutating ops to let through before the fault (None = never fault).
    remaining: Option<u64>,
    kind: FaultKind,
    /// Set once the fault fired; all later ops fail.
    dead: bool,
    /// Total mutating ops observed (gated or not).
    mutations: u64,
}

/// A [`Vfs`] wrapper that injects one deterministic fault, then plays
/// dead. See the module docs.
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    state: Mutex<FaultState>,
}

/// Whether the current op should proceed or apply the fault effect.
enum Gate {
    Proceed,
    Fault(FaultKind),
}

fn crashed() -> io::Error {
    io::Error::other("vfs crashed (fault injected)")
}

impl FaultVfs {
    /// A VFS that never faults but counts mutating operations — the dry
    /// run that tells a sweep how many injection points a save has.
    pub fn counting() -> FaultVfs {
        FaultVfs {
            inner: RealVfs,
            state: Mutex::new(FaultState {
                remaining: None,
                kind: FaultKind::Enospc,
                dead: false,
                mutations: 0,
            }),
        }
    }

    /// A VFS whose `nth` mutating operation (0-based) fails with `kind`.
    pub fn failing_at(kind: FaultKind, nth: u64) -> FaultVfs {
        FaultVfs {
            inner: RealVfs,
            state: Mutex::new(FaultState {
                remaining: Some(nth),
                kind,
                dead: false,
                mutations: 0,
            }),
        }
    }

    /// Mutating operations observed so far.
    pub fn mutations(&self) -> u64 {
        self.lock().mutations
    }

    /// Whether the fault has fired.
    pub fn crashed(&self) -> bool {
        self.lock().dead
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // State is plain counters; a poisoned lock loses nothing.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Counts one mutating op and decides its fate.
    fn gate(&self) -> io::Result<Gate> {
        let mut st = self.lock();
        if st.dead {
            return Err(crashed());
        }
        st.mutations += 1;
        match st.remaining {
            Some(0) => {
                st.dead = true;
                Ok(Gate::Fault(st.kind))
            }
            Some(n) => {
                st.remaining = Some(n - 1);
                Ok(Gate::Proceed)
            }
            None => Ok(Gate::Proceed),
        }
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.lock().dead {
            Err(crashed())
        } else {
            Ok(())
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        self.inner.read(path)
    }

    fn write_all(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => self.inner.write_all(path, data),
            Gate::Fault(FaultKind::ShortWrite) => {
                // Half the bytes land, then the "crash".
                let _ = self.inner.write_all(path, &data[..data.len() / 2]);
                Err(io::Error::other("short write (injected)"))
            }
            Gate::Fault(_) => Err(io::Error::other("no space left on device (injected)")),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => self.inner.fsync(path),
            Gate::Fault(_) => Err(io::Error::other("fsync failed (injected)")),
        }
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => self.inner.fsync_dir(dir),
            Gate::Fault(_) => Err(io::Error::other("fsync failed (injected)")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::Fault(FaultKind::TornRename) => {
                // The nightmare rename: destination gets half the source's
                // bytes, source disappears. Only a non-atomic filesystem
                // would do this — which is exactly what recovery must
                // survive.
                if let Ok(data) = self.inner.read(from) {
                    let _ = self.inner.write_all(to, &data[..data.len() / 2]);
                }
                let _ = self.inner.remove(from);
                Err(io::Error::other("torn rename (injected)"))
            }
            Gate::Fault(_) => Err(io::Error::other("rename failed (injected)")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => self.inner.remove(path),
            Gate::Fault(_) => Err(io::Error::other("remove failed (injected)")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.check_alive()?;
        self.inner.list(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.lock().dead && self.inner.exists(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.create_dir_all(dir)
    }
}

/// Flips one bit of the file at `path` in place — the post-hoc corruption
/// half of the fault matrix (cosmic-ray bit rot rather than a crash).
/// `byte` wraps modulo the file length; empty files are left alone.
pub fn flip_bit(path: &Path, byte: usize, bit: u8) -> io::Result<()> {
    let mut data = fs::read(path)?;
    if data.is_empty() {
        return Ok(());
    }
    let i = byte % data.len();
    data[i] ^= 1 << (bit % 8);
    fs::write(path, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbex-vfs-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn real_vfs_round_trips() {
        let path = tmp("real.bin");
        let v = RealVfs;
        v.write_all(&path, b"hello").unwrap();
        v.fsync(&path).unwrap();
        assert_eq!(v.read(&path).unwrap(), b"hello");
        assert!(v.exists(&path));
        let dest = tmp("real2.bin");
        v.rename(&path, &dest).unwrap();
        assert!(!v.exists(&path));
        v.remove(&dest).unwrap();
    }

    #[test]
    fn fault_fires_once_then_everything_is_dead() {
        let a = tmp("fault-a.bin");
        let b = tmp("fault-b.bin");
        let v = FaultVfs::failing_at(FaultKind::Enospc, 1);
        v.write_all(&a, b"first").unwrap(); // op 0: fine
        assert!(v.write_all(&b, b"second").is_err()); // op 1: ENOSPC, nothing written
        assert!(!RealVfs.exists(&b));
        assert!(v.crashed());
        // Dead: reads and writes both fail, exists answers false.
        assert!(v.read(&a).is_err());
        assert!(v.write_all(&a, b"x").is_err());
        assert!(!v.exists(&a));
        assert_eq!(v.mutations(), 2);
        RealVfs.remove(&a).unwrap();
    }

    #[test]
    fn short_write_persists_half() {
        let path = tmp("short.bin");
        let v = FaultVfs::failing_at(FaultKind::ShortWrite, 0);
        assert!(v.write_all(&path, b"12345678").is_err());
        assert_eq!(RealVfs.read(&path).unwrap(), b"1234");
        RealVfs.remove(&path).unwrap();
    }

    #[test]
    fn torn_rename_loses_the_source_and_tears_the_dest() {
        let from = tmp("torn-from.bin");
        let to = tmp("torn-to.bin");
        RealVfs.write_all(&from, b"ABCDEFGH").unwrap();
        let v = FaultVfs::failing_at(FaultKind::TornRename, 0);
        assert!(v.rename(&from, &to).is_err());
        assert!(!RealVfs.exists(&from));
        assert_eq!(RealVfs.read(&to).unwrap(), b"ABCD");
        RealVfs.remove(&to).unwrap();
    }

    #[test]
    fn counting_never_faults() {
        let path = tmp("count.bin");
        let v = FaultVfs::counting();
        for _ in 0..5 {
            v.write_all(&path, b"x").unwrap();
        }
        v.fsync(&path).unwrap();
        assert_eq!(v.mutations(), 6);
        assert!(!v.crashed());
        RealVfs.remove(&path).unwrap();
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let path = tmp("flip.bin");
        RealVfs.write_all(&path, &[0u8; 4]).unwrap();
        flip_bit(&path, 9, 3).unwrap(); // byte 9 % 4 = 1
        assert_eq!(RealVfs.read(&path).unwrap(), vec![0, 8, 0, 0]);
        RealVfs.remove(&path).unwrap();
    }
}
