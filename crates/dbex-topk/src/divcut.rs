//! div-cut: exact diversified top-k via connected-component decomposition.
//!
//! Qin, Yu & Chang's third algorithm observes that the conflict graph of
//! real candidate sets is usually sparse and splits into small connected
//! components. Each component can be solved independently for every budget
//! `j ≤ k` (using the div-astar search restricted to the component), and
//! the per-component profiles combine with a knapsack-style dynamic program
//! — the component structure makes the exponential search local.
//!
//! Produces exactly the same optimum as [`crate::div_astar`]; it is faster
//! when components are small and slower (only by overhead) when the graph
//! is one big component. The benchmark suite compares the two.

// Index loops below intentionally couple multiple arrays / triangular
// ranges; iterator adapters would obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::{div_astar, ConflictGraph, TopKSolution};

/// Exact diversified top-k via component decomposition.
pub fn div_cut(scores: &[f64], graph: &ConflictGraph, k: usize) -> TopKSolution {
    let n = scores.len();
    assert_eq!(graph.len(), n, "graph size must match scores");
    if n == 0 || k == 0 {
        return TopKSolution {
            items: Vec::new(),
            total_score: 0.0,
        };
    }

    // Connected components by BFS.
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut queue = vec![start];
        component[start] = id;
        let mut members = Vec::new();
        while let Some(v) = queue.pop() {
            members.push(v);
            for u in 0..n {
                if component[u] == usize::MAX && graph.conflicts(v, u) {
                    component[u] = id;
                    queue.push(u);
                }
            }
        }
        components.push(members);
    }

    // Per-component profiles: best (score, items) for each budget 0..=k.
    // Solved by running div-astar on the component's induced subgraph with
    // budget j; memoized per j.
    let mut profiles: Vec<Vec<(f64, Vec<usize>)>> = Vec::with_capacity(components.len());
    for members in &components {
        let local_scores: Vec<f64> = members.iter().map(|&v| scores[v]).collect();
        let mut local_graph = ConflictGraph::new(members.len());
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate().skip(i + 1) {
                if graph.conflicts(a, b) {
                    local_graph.add_conflict(i, j);
                }
            }
        }
        let max_budget = k.min(members.len());
        let mut profile = Vec::with_capacity(max_budget + 1);
        profile.push((0.0, Vec::new()));
        for j in 1..=max_budget {
            let sol = div_astar(&local_scores, &local_graph, j);
            let items: Vec<usize> = sol.items.iter().map(|&i| members[i]).collect();
            profile.push((sol.total_score, items));
        }
        profiles.push(profile);
    }

    // Knapsack combination over components.
    // dp[j] = best (score, items) using exactly ≤ j slots so far.
    let mut dp: Vec<(f64, Vec<usize>)> = vec![(0.0, Vec::new()); k + 1];
    for profile in &profiles {
        let mut next = dp.clone();
        for j in 0..=k {
            let (base_score, base_items) = &dp[j];
            for (take, (comp_score, comp_items)) in profile.iter().enumerate() {
                let total = j + take;
                if total > k || take == 0 {
                    continue;
                }
                let candidate = base_score + comp_score;
                if candidate > next[total].0 {
                    let mut items = base_items.clone();
                    items.extend_from_slice(comp_items);
                    next[total] = (candidate, items);
                }
            }
        }
        dp = next;
    }

    let best = dp
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty dp");
    let mut items = best.1;
    items.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    TopKSolution {
        items,
        total_score: best.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> ConflictGraph {
        let mut g = ConflictGraph::new(n);
        for &(a, b) in edges {
            g.add_conflict(a, b);
        }
        g
    }

    #[test]
    fn matches_div_astar_on_star() {
        let scores = [10.0, 6.0, 6.0, 6.0];
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let cut = div_cut(&scores, &g, 3);
        let astar = div_astar(&scores, &g, 3);
        assert_eq!(cut.total_score, astar.total_score);
        assert_eq!(cut.total_score, 18.0);
    }

    #[test]
    fn independent_components_combined() {
        // Two triangles (max 1 each) + isolated vertex.
        let scores = [5.0, 4.0, 3.0, 9.0, 8.0, 7.0, 2.0];
        let g = graph_from_edges(
            7,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let sol = div_cut(&scores, &g, 3);
        // Best: 5 (from first triangle) + 9 (second) + 2 (isolated) = 16.
        assert_eq!(sol.total_score, 16.0);
        let mut items = sol.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3, 6]);
    }

    #[test]
    fn budget_tighter_than_components() {
        let scores = [5.0, 9.0, 2.0];
        let g = ConflictGraph::new(3); // three isolated vertices
        let sol = div_cut(&scores, &g, 2);
        assert_eq!(sol.total_score, 14.0);
        assert_eq!(sol.items, vec![1, 0]);
    }

    #[test]
    fn empty_and_zero_budget() {
        let g = ConflictGraph::new(0);
        assert_eq!(div_cut(&[], &g, 3).items.len(), 0);
        let g = ConflictGraph::new(2);
        assert_eq!(div_cut(&[1.0, 2.0], &g, 0).items.len(), 0);
    }

    #[test]
    fn agrees_with_div_astar_on_random_instances() {
        for trial in 0..30u64 {
            let mut state = trial.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let n = 3 + (next() % 12) as usize;
            let scores: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64 / 10.0).collect();
            let mut g = ConflictGraph::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if next() % 100 < 25 {
                        g.add_conflict(a, b);
                    }
                }
            }
            let k = 1 + (next() % 5) as usize;
            let cut = div_cut(&scores, &g, k);
            let astar = div_astar(&scores, &g, k);
            assert!(
                (cut.total_score - astar.total_score).abs() < 1e-9,
                "trial {trial}: cut {} vs astar {}",
                cut.total_score,
                astar.total_score
            );
            // Validity.
            assert!(cut.items.len() <= k);
            for (i, &a) in cut.items.iter().enumerate() {
                for &b in &cut.items[i + 1..] {
                    assert!(!g.conflicts(a, b));
                }
            }
        }
    }
}
