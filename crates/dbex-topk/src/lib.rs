//! # dbex-topk
//!
//! Diversified top-k selection (paper Problem 2, Section 3.2).
//!
//! Given candidate IUnits with preference scores and a pairwise similarity
//! relation `≈`, the paper selects the *diversified top-k*: a subset of at
//! most `k` items, no two similar, maximizing total score. This reduces to
//! maximum-weight independent set (Qin, Yu & Chang, VLDB 2012). The paper
//! notes that greedy "can lead to arbitrarily bad solutions" and uses Qin
//! et al.'s exact **div-astar** algorithm, which is feasible because the
//! candidate list is small (`l ≈ 1.5k ≤ ~15`).
//!
//! This crate implements both:
//!
//! * [`div_astar`] — exact best-first branch-and-bound search with an
//!   admissible "top remaining scores" heuristic.
//! * [`greedy`] — the baseline that repeatedly takes the best compatible
//!   item (kept for the ablation benchmark).
//! * [`div_cut`] — Qin et al.'s component-decomposition exact algorithm,
//!   faster when the conflict graph splits into small components.

mod divcut;
mod graph;

pub use divcut::div_cut;
pub use graph::ConflictGraph;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A solution: chosen item indices (into the candidate list) in descending
/// score order, plus the total score.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSolution {
    /// Indices of the selected items.
    pub items: Vec<usize>,
    /// Sum of selected items' scores.
    pub total_score: f64,
}

/// Exact diversified top-k via best-first branch-and-bound (div-astar).
///
/// `scores[i]` is item *i*'s preference score (must be non-negative);
/// `graph` encodes the `≈` relation (an edge means the two items may not
/// both be selected); `k` bounds the solution size.
///
/// The search explores states `(next item to decide, chosen set)` in
/// descending order of `g + h`, where `g` is the chosen score and `h` the
/// admissible bound "sum of the `k − |chosen|` largest undecided,
/// non-conflicting scores". With candidates sorted by score the first goal
/// popped is optimal.
///
/// ```
/// use dbex_topk::{div_astar, ConflictGraph};
///
/// // A high scorer conflicting with two mid scorers: exact search skips it.
/// let scores = [10.0, 7.0, 7.0];
/// let mut graph = ConflictGraph::new(3);
/// graph.add_conflict(0, 1);
/// graph.add_conflict(0, 2);
/// let best = div_astar(&scores, &graph, 2);
/// assert_eq!(best.total_score, 14.0);
/// ```
pub fn div_astar(scores: &[f64], graph: &ConflictGraph, k: usize) -> TopKSolution {
    let n = scores.len();
    assert_eq!(graph.len(), n, "graph size must match scores");
    assert!(
        scores.iter().all(|&s| s >= 0.0),
        "scores must be non-negative"
    );
    if n == 0 || k == 0 {
        return TopKSolution {
            items: Vec::new(),
            total_score: 0.0,
        };
    }

    // Order items by descending score; work in that order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let ordered_scores: Vec<f64> = order.iter().map(|&i| scores[i]).collect();

    #[derive(Debug)]
    struct Node {
        bound: f64,
        g: f64,
        depth: usize,
        chosen: Vec<usize>, // indices into `order`
        blocked: Vec<u64>,  // bitset over ordered indices
    }
    impl PartialEq for Node {
        fn eq(&self, other: &Self) -> bool {
            self.bound == other.bound
        }
    }
    impl Eq for Node {}
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> Ordering {
            self.bound.total_cmp(&other.bound)
        }
    }

    let words = n.div_ceil(64);
    let is_blocked = |blocked: &[u64], i: usize| blocked[i / 64] >> (i % 64) & 1 == 1;

    // Admissible heuristic: top remaining compatible scores.
    let heuristic = |depth: usize, chosen_len: usize, blocked: &[u64]| -> f64 {
        let mut h = 0.0;
        let mut slots = k - chosen_len;
        let mut i = depth;
        while slots > 0 && i < n {
            if !is_blocked(blocked, i) {
                h += ordered_scores[i];
                slots -= 1;
            }
            i += 1;
        }
        h
    };

    let mut heap = BinaryHeap::new();
    let root_h = heuristic(0, 0, &vec![0u64; words]);
    heap.push(Node {
        bound: root_h,
        g: 0.0,
        depth: 0,
        chosen: Vec::new(),
        blocked: vec![0u64; words],
    });

    let mut best = TopKSolution {
        items: Vec::new(),
        total_score: 0.0,
    };

    while let Some(node) = heap.pop() {
        if node.bound <= best.total_score + 1e-12 && !best.items.is_empty() {
            break; // admissible bound: nothing better remains
        }
        if node.depth == n || node.chosen.len() == k {
            if node.g > best.total_score {
                best = TopKSolution {
                    items: node.chosen.iter().map(|&oi| order[oi]).collect(),
                    total_score: node.g,
                };
            }
            continue;
        }
        let i = node.depth;

        // Branch 1: skip item i.
        let skip_h = heuristic(i + 1, node.chosen.len(), &node.blocked);
        let skip = Node {
            bound: node.g + skip_h,
            g: node.g,
            depth: i + 1,
            chosen: node.chosen.clone(),
            blocked: node.blocked.clone(),
        };
        if skip.bound > best.total_score + 1e-12 || best.items.is_empty() {
            heap.push(skip);
        }

        // Branch 2: take item i (if compatible).
        if !is_blocked(&node.blocked, i) {
            let mut blocked = node.blocked;
            for j in (i + 1)..n {
                if graph.conflicts(order[i], order[j]) {
                    blocked[j / 64] |= 1 << (j % 64);
                }
            }
            let mut chosen = node.chosen;
            chosen.push(i);
            let g = node.g + ordered_scores[i];
            let take_h = heuristic(i + 1, chosen.len(), &blocked);
            let take = Node {
                bound: g + take_h,
                g,
                depth: i + 1,
                chosen,
                blocked,
            };
            if take.g > best.total_score {
                best = TopKSolution {
                    items: take.chosen.iter().map(|&oi| order[oi]).collect(),
                    total_score: take.g,
                };
            }
            heap.push(take);
        }
    }
    best
}

/// Greedy diversified top-k: repeatedly select the highest-score item not
/// similar to anything already selected.
///
/// Kept as the ablation baseline; Qin et al. show it has no bounded
/// approximation factor for this problem.
pub fn greedy(scores: &[f64], graph: &ConflictGraph, k: usize) -> TopKSolution {
    let n = scores.len();
    assert_eq!(graph.len(), n, "graph size must match scores");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut items = Vec::new();
    let mut total = 0.0;
    for &i in &order {
        if items.len() >= k {
            break;
        }
        if items.iter().all(|&j| !graph.conflicts(i, j)) {
            items.push(i);
            total += scores[i];
        }
    }
    TopKSolution {
        items,
        total_score: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> ConflictGraph {
        let mut g = ConflictGraph::new(n);
        for &(a, b) in edges {
            g.add_conflict(a, b);
        }
        g
    }

    fn total(items: &[usize], scores: &[f64]) -> f64 {
        items.iter().map(|&i| scores[i]).sum()
    }

    #[test]
    fn no_conflicts_takes_top_k() {
        let scores = [5.0, 1.0, 3.0, 2.0];
        let g = ConflictGraph::new(4);
        let sol = div_astar(&scores, &g, 2);
        let mut items = sol.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert_eq!(sol.total_score, 8.0);
    }

    #[test]
    fn conflict_forces_diversity() {
        // 0 and 2 are the top scorers but conflict.
        let scores = [5.0, 4.0, 4.9];
        let g = graph_from_edges(3, &[(0, 2)]);
        let sol = div_astar(&scores, &g, 2);
        let mut items = sol.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1]);
        assert_eq!(sol.total_score, 9.0);
    }

    #[test]
    fn greedy_can_be_suboptimal_div_astar_is_not() {
        // Star: center scores 10, leaves 6+6+6. Greedy takes the center
        // (10); optimal takes the three leaves (18).
        let scores = [10.0, 6.0, 6.0, 6.0];
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let greedy_sol = greedy(&scores, &g, 3);
        assert_eq!(greedy_sol.items, vec![0]);
        assert_eq!(greedy_sol.total_score, 10.0);
        let exact = div_astar(&scores, &g, 3);
        let mut items = exact.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![1, 2, 3]);
        assert_eq!(exact.total_score, 18.0);
    }

    #[test]
    fn k_limits_solution_size() {
        let scores = [3.0, 2.0, 1.0];
        let g = ConflictGraph::new(3);
        let sol = div_astar(&scores, &g, 1);
        assert_eq!(sol.items, vec![0]);
        assert_eq!(div_astar(&scores, &g, 0).items.len(), 0);
    }

    #[test]
    fn empty_input() {
        let g = ConflictGraph::new(0);
        let sol = div_astar(&[], &g, 3);
        assert!(sol.items.is_empty());
        assert_eq!(sol.total_score, 0.0);
        assert!(greedy(&[], &g, 3).items.is_empty());
    }

    #[test]
    fn fully_connected_picks_single_best() {
        let scores = [1.0, 9.0, 4.0];
        let g = graph_from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let sol = div_astar(&scores, &g, 3);
        assert_eq!(sol.items, vec![1]);
        assert_eq!(sol.total_score, 9.0);
    }

    #[test]
    fn exhaustive_check_on_random_instances() {
        // Compare div-astar against brute force on every instance of a
        // deterministic pseudo-random family (n=10).
        let n = 10;
        for trial in 0..25u64 {
            let mut state = trial.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let scores: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64 / 10.0).collect();
            let mut g = ConflictGraph::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if next() % 100 < 30 {
                        g.add_conflict(a, b);
                    }
                }
            }
            let k = 1 + (next() % 5) as usize;

            // Brute force over all subsets.
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                if mask.count_ones() as usize > k {
                    continue;
                }
                let items: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                let ok = items
                    .iter()
                    .enumerate()
                    .all(|(ii, &a)| items[ii + 1..].iter().all(|&b| !g.conflicts(a, b)));
                if ok {
                    best = best.max(total(&items, &scores));
                }
            }
            let sol = div_astar(&scores, &g, k);
            assert!(
                (sol.total_score - best).abs() < 1e-9,
                "trial {trial}: div_astar={} brute={best}",
                sol.total_score
            );
            // Validity of the returned set.
            for (ii, &a) in sol.items.iter().enumerate() {
                for &b in &sol.items[ii + 1..] {
                    assert!(!g.conflicts(a, b));
                }
            }
            assert!(sol.items.len() <= k);
            // Greedy is never better than exact.
            let gsol = greedy(&scores, &g, k);
            assert!(gsol.total_score <= sol.total_score + 1e-9);
        }
    }
}
