//! Conflict (similarity) graph over candidate items.

/// An undirected graph whose edges mark pairs of items that are "similar"
/// (`sim ≥ τ` in the paper) and therefore may not co-occur in a diversified
/// top-k result.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    n: usize,
    adj: Vec<Vec<u64>>,
}

impl ConflictGraph {
    /// Creates an edgeless graph over `n` items.
    pub fn new(n: usize) -> ConflictGraph {
        let words = n.div_ceil(64).max(1);
        ConflictGraph {
            n,
            adj: vec![vec![0u64; words]; n],
        }
    }

    /// Builds the graph from item scores' pairwise similarity: items `a, b`
    /// conflict iff `sim(a, b) >= tau`.
    pub fn from_similarity<F: Fn(usize, usize) -> f64>(n: usize, sim: F, tau: f64) -> Self {
        let mut g = ConflictGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if sim(a, b) >= tau {
                    g.add_conflict(a, b);
                }
            }
        }
        g
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the graph has no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Marks `a` and `b` as conflicting (self-loops are ignored).
    pub fn add_conflict(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "vertex out of range");
        if a == b {
            return;
        }
        self.adj[a][b / 64] |= 1 << (b % 64);
        self.adj[b][a / 64] |= 1 << (a % 64);
    }

    /// True iff `a` and `b` conflict.
    pub fn conflicts(&self, a: usize, b: usize) -> bool {
        self.adj[a][b / 64] >> (b % 64) & 1 == 1
    }

    /// Number of conflict edges.
    pub fn num_edges(&self) -> usize {
        self.adj
            .iter()
            .map(|row| row.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum::<usize>()
            / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = ConflictGraph::new(70); // spans multiple words
        g.add_conflict(0, 65);
        assert!(g.conflicts(0, 65));
        assert!(g.conflicts(65, 0));
        assert!(!g.conflicts(0, 64));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(1, 1);
        assert!(!g.conflicts(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_similarity_thresholds() {
        let sims = [[1.0, 0.9, 0.1], [0.9, 1.0, 0.5], [0.1, 0.5, 1.0]];
        let g = ConflictGraph::from_similarity(3, |a, b| sims[a][b], 0.5);
        assert!(g.conflicts(0, 1));
        assert!(g.conflicts(1, 2));
        assert!(!g.conflicts(0, 2));
    }
}
