//! Concurrent session simulator over the real `dbex-serve` wire
//! protocol.
//!
//! One OS thread per session (small stacks, staggered starts) — the
//! *client* side deliberately mirrors the server's thread-per-connection
//! architecture so the harness measures the protocol end-to-end rather
//! than an idealized event loop. Each session replays its seeded trace
//! with think-time pacing and can **abandon** at any op boundary: it
//! writes one more request frame and drops the connection without
//! reading the response (exercising the server's executor-drain path),
//! then either vanishes or reconnects, restores its CAD View, and
//! resumes.
//!
//! The report carries everything `bench_explore` aggregates into
//! `BENCH_explore.json`: per-session time-to-first-result, per-op
//! latency samples tagged by [`OpKind`], BUSY/error/abandon/reconnect
//! counts, and — when the caller hands in the server's shared
//! [`StatsCache`] — the cache hit-rate trajectory sampled over the run.

use crate::gen::SyntheticSpec;
use crate::mix::mix;
use crate::trace::{session_trace, OpKind, TraceConfig, TraceOp};
use dbex_serve::{Client, ClientError};
use dbex_stats::StatsCache;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Knobs for [`run_sim`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrent sessions to drive.
    pub sessions: usize,
    /// Trace shape shared by all sessions (each session still gets its
    /// own seeded variation).
    pub trace: TraceConfig,
    /// Per-op-boundary probability that the session abandons its
    /// connection mid-request.
    pub abandon_rate: f64,
    /// Probability an abandoning session reconnects and resumes instead
    /// of vanishing for good.
    pub reconnect_rate: f64,
    /// Connect attempts before giving up on a `BUSY` server (linear
    /// backoff between attempts).
    pub connect_retries: u32,
    /// Delay between consecutive session starts (ramp-up; `0` =
    /// thundering herd).
    pub stagger: Duration,
    /// Cache trajectory sampling interval (used only when a cache is
    /// passed to [`run_sim`]).
    pub cache_sample_every: Duration,
    /// Opt every session into the server's progressive responses
    /// (`.stream on`): expensive CAD builds then answer with a sampled
    /// preview frame before the exact final frame, and TTFR measures the
    /// *first* frame — the paper's "first result on screen" moment.
    pub streamed: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            sessions: 8,
            trace: TraceConfig::default(),
            abandon_rate: 0.05,
            reconnect_rate: 0.5,
            connect_retries: 40,
            stagger: Duration::from_micros(500),
            cache_sample_every: Duration::from_millis(50),
            streamed: true,
        }
    }
}

/// One timed request/response exchange (possibly multi-frame).
#[derive(Debug, Clone, Copy)]
pub struct OpSample {
    /// Which exploration step this was.
    pub kind: OpKind,
    /// Full round-trip latency (send → **final** frame parsed).
    pub latency: Duration,
    /// Latency to the **first** frame — equal to `latency` for classic
    /// single-frame responses, earlier when a preview streamed first.
    pub first_frame: Duration,
    /// Response frames received (`1` classic, `2` preview + exact).
    pub frames: u32,
    /// Whether the server's final frame answered `ok:true`.
    pub ok: bool,
}

/// What happened to one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionOutcome {
    /// Session id (trace seed input).
    pub session: u64,
    /// Time from session start (including connect and BUSY backoff) to
    /// the first successful response — the paper's "first result on
    /// screen" moment. `None` when the session never got one.
    pub ttfr: Option<Duration>,
    /// The session ran its whole trace.
    pub completed: bool,
    /// The session abandoned at least once (it may still have completed
    /// via reconnect).
    pub abandoned: bool,
    /// Successful reconnect-and-resume cycles.
    pub reconnects: u32,
    /// `BUSY` rejections absorbed while connecting.
    pub busy_retries: u32,
    /// Error responses or transport failures observed.
    pub errors: u32,
}

/// One point of the shared-cache trajectory.
#[derive(Debug, Clone, Copy)]
pub struct CacheSample {
    /// Elapsed run time at the sample.
    pub at: Duration,
    /// Cumulative cache hits.
    pub hits: u64,
    /// Cumulative cache misses.
    pub misses: u64,
    /// Cumulative LRU evictions.
    pub evictions: u64,
}

/// Everything [`run_sim`] measured.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-session outcomes, in session order.
    pub outcomes: Vec<SessionOutcome>,
    /// All op samples across all sessions (unordered).
    pub samples: Vec<OpSample>,
    /// Wall-clock of the whole run (first spawn → last join).
    pub wall: Duration,
    /// Shared-cache trajectory (empty when no cache was passed).
    pub cache_trajectory: Vec<CacheSample>,
}

impl SimReport {
    /// Latencies (ms) of successful ops of one kind, unsorted.
    pub fn latencies_ms(&self, kind: Option<OpKind>) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|s| s.ok && kind.is_none_or(|k| s.kind == k))
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect()
    }

    /// First-frame latencies (ms) of successful ops of one kind — the
    /// progressive-response counterpart of [`SimReport::latencies_ms`].
    pub fn first_frame_ms(&self, kind: Option<OpKind>) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|s| s.ok && kind.is_none_or(|k| s.kind == k))
            .map(|s| s.first_frame.as_secs_f64() * 1e3)
            .collect()
    }

    /// How many ops streamed a preview frame before their final answer.
    pub fn previewed_ops(&self) -> usize {
        self.samples.iter().filter(|s| s.frames > 1).count()
    }

    /// Total requests issued (ok + error samples).
    pub fn requests(&self) -> usize {
        self.samples.len()
    }

    /// Total error responses / transport failures.
    pub fn errors(&self) -> u32 {
        self.outcomes.iter().map(|o| o.errors).sum()
    }
}

/// Per-attempt bound on TCP connect + hello. A thousand-session ramp
/// can overflow the listen backlog; a dropped SYN must surface as a
/// retryable timeout here, not sit in the kernel's minutes-long
/// retransmit cycle.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Connects with linear-backoff retries on `BUSY` (counted) and on
/// connect/hello timeouts (backlog pressure, not counted as BUSY).
fn connect_with_retry(
    addr: &str,
    retries: u32,
    busy: &mut u32,
) -> Result<Client, ClientError> {
    let mut attempt = 0u32;
    loop {
        let err = match Client::connect_timeout(addr, CONNECT_TIMEOUT) {
            Ok(c) => return Ok(c),
            Err(ClientError::Busy(msg)) => {
                *busy += 1;
                ClientError::Busy(msg)
            }
            Err(e) if is_timeout(&e) => e,
            Err(e) => return Err(e),
        };
        attempt += 1;
        if attempt > retries {
            return Err(err);
        }
        thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
    }
}

/// Whether a connect error is a per-attempt timeout (retryable).
fn is_timeout(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Protocol(dbex_serve::ProtocolError::Io(io))
            if matches!(io.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
    )
}

/// One request/response exchange, consuming **every** frame of a
/// (possibly streamed) response and timestamping the first. Returns
/// `(final_latency, first_frame_latency, frames, ok)`. Sets `ttfr` once,
/// at the first `ok` frame the session ever receives — a preview frame
/// counts: it is the first usable result on screen.
fn exchange(
    client: &mut Client,
    request: &str,
    session_start: Instant,
    ttfr: &mut Option<Duration>,
) -> Result<(Duration, Duration, u32, bool), ClientError> {
    let started = Instant::now();
    client.send_only(request)?;
    let mut first_frame: Option<Duration> = None;
    let mut frames = 0u32;
    loop {
        let resp = client.read_response()?;
        frames += 1;
        let at = started.elapsed();
        if first_frame.is_none() {
            first_frame = Some(at);
        }
        if resp.ok && ttfr.is_none() {
            *ttfr = Some(session_start.elapsed());
        }
        if resp.is_final() {
            return Ok((at, first_frame.unwrap_or(at), frames, resp.ok));
        }
    }
}

/// Opts a fresh connection into streamed responses. The acknowledgement
/// deliberately does NOT count toward TTFR or the samples — only real
/// exploration ops do.
fn enable_streaming(client: &mut Client, errors: &mut u32) {
    match client.request(".stream on") {
        Ok(resp) if resp.ok => {}
        _ => *errors += 1,
    }
}

/// Runs one session's trace; returns its outcome and samples.
fn run_session(
    addr: &str,
    session: u64,
    trace: &[TraceOp],
    cfg: &SimConfig,
) -> (SessionOutcome, Vec<OpSample>) {
    let mut out = SessionOutcome {
        session,
        ttfr: None,
        completed: false,
        abandoned: false,
        reconnects: 0,
        busy_retries: 0,
        errors: 0,
    };
    let mut samples = Vec::with_capacity(trace.len());
    let mut rng = StdRng::seed_from_u64(mix(cfg.trace.seed ^ 0x7369_6D75, session));
    dbex_obs::counter!("explore.sessions.started").incr(1);
    let start = Instant::now();

    let mut client = match connect_with_retry(addr, cfg.connect_retries, &mut out.busy_retries) {
        Ok(c) => c,
        Err(_) => {
            out.errors += 1;
            dbex_obs::counter!("explore.sessions.failed").incr(1);
            return (out, samples);
        }
    };
    // A wedged server must not strand the session thread forever.
    client.set_read_timeout(Some(Duration::from_secs(30))).ok();
    if cfg.streamed {
        enable_streaming(&mut client, &mut out.errors);
    }

    // Index of the last view-creating op already issued — what a
    // reconnecting session replays to restore its server-side view.
    let mut last_view_op: Option<usize> = None;
    let mut i = 0usize;
    while i < trace.len() {
        let op = &trace[i];
        if !op.think.is_zero() {
            thread::sleep(op.think);
        }
        // Abandon at this boundary?
        if cfg.abandon_rate > 0.0 && rng.random_range(0.0..1.0) < cfg.abandon_rate {
            out.abandoned = true;
            // Fire the request and vanish without reading the response.
            client.send_only(&op.request).ok();
            drop(client);
            dbex_obs::counter!("explore.sessions.abandon_drops").incr(1);
            if rng.random_range(0.0..1.0) >= cfg.reconnect_rate {
                dbex_obs::counter!("explore.sessions.abandoned").incr(1);
                return (out, samples);
            }
            // Reconnect and resume: restore the view, then retry this op.
            thread::sleep(Duration::from_millis(rng.random_range(1u64..10)));
            client = match connect_with_retry(addr, cfg.connect_retries, &mut out.busy_retries) {
                Ok(c) => c,
                Err(_) => {
                    out.errors += 1;
                    dbex_obs::counter!("explore.sessions.abandoned").incr(1);
                    return (out, samples);
                }
            };
            client.set_read_timeout(Some(Duration::from_secs(30))).ok();
            if cfg.streamed {
                enable_streaming(&mut client, &mut out.errors);
            }
            out.reconnects += 1;
            dbex_obs::counter!("explore.sessions.reconnects").incr(1);
            if let Some(v) = last_view_op {
                if needs_view(op.kind) {
                    match exchange(&mut client, &trace[v].request, start, &mut out.ttfr) {
                        Ok((latency, first_frame, frames, true)) => samples.push(OpSample {
                            kind: trace[v].kind,
                            latency,
                            first_frame,
                            frames,
                            ok: true,
                        }),
                        _ => out.errors += 1,
                    }
                }
            }
            // Fall through to issue `op` on the fresh connection.
        }
        match exchange(&mut client, &op.request, start, &mut out.ttfr) {
            Ok((latency, first_frame, frames, ok)) => {
                samples.push(OpSample {
                    kind: op.kind,
                    latency,
                    first_frame,
                    frames,
                    ok,
                });
                if ok {
                    dbex_obs::counter!("explore.ops.ok").incr(1);
                } else {
                    dbex_obs::counter!("explore.ops.err").incr(1);
                    out.errors += 1;
                }
                if matches!(op.kind, OpKind::Cad | OpKind::Pivot) {
                    last_view_op = Some(i);
                }
            }
            Err(_) => {
                // Transport failure (server shed the connection, timeout):
                // count it and end the session rather than spin.
                out.errors += 1;
                dbex_obs::counter!("explore.ops.err").incr(1);
                dbex_obs::counter!("explore.sessions.failed").incr(1);
                return (out, samples);
            }
        }
        i += 1;
    }
    out.completed = true;
    dbex_obs::counter!("explore.sessions.completed").incr(1);
    (out, samples)
}

fn needs_view(kind: OpKind) -> bool {
    // `SUGGEST NEXT FOR v` resolves the view server-side; completion
    // requests don't strictly need it, but replaying the view op before
    // either keeps reconnect-resume uniform and cheap.
    matches!(kind, OpKind::Highlight | OpKind::Reorder | OpKind::Suggest)
}

/// Drives `cfg.sessions` concurrent sessions against the server at
/// `addr`, replaying seeded traces over `spec`'s table. When `cache` is
/// the server's shared [`StatsCache`], a monitor thread samples its
/// cumulative stats every [`SimConfig::cache_sample_every`] for the
/// hit-rate trajectory.
///
/// Deterministic *in structure* (traces, abandon points) for a fixed
/// seed; latencies and interleavings are of course wall-clock.
pub fn run_sim(addr: &str, spec: &SyntheticSpec, cache: Option<&StatsCache>, cfg: &SimConfig) -> SimReport {
    let traces: Vec<Vec<TraceOp>> = (0..cfg.sessions as u64)
        .map(|s| session_trace(spec, &cfg.trace, s))
        .collect();
    let start = Instant::now();
    let done = AtomicBool::new(false);
    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(cfg.sessions);
    let mut samples: Vec<OpSample> = Vec::new();
    let mut trajectory: Vec<CacheSample> = Vec::new();

    thread::scope(|scope| {
        let monitor = cache.map(|cache| {
            let done = &done;
            let every = cfg.cache_sample_every;
            scope.spawn(move || {
                let mut traj = Vec::new();
                loop {
                    let s = cache.stats();
                    traj.push(CacheSample {
                        at: start.elapsed(),
                        hits: s.hits,
                        misses: s.misses,
                        evictions: s.evictions,
                    });
                    if done.load(Ordering::Acquire) {
                        return traj;
                    }
                    thread::sleep(every);
                }
            })
        });

        let handles: Vec<_> = traces
            .iter()
            .enumerate()
            .map(|(s, trace)| {
                let ramp = cfg.stagger * s as u32;
                let builder = thread::Builder::new()
                    .name(format!("explore-s{s}"))
                    .stack_size(128 * 1024);
                #[allow(clippy::expect_used)] // thread spawn failure = dead harness
                builder
                    .spawn_scoped(scope, move || {
                        if !ramp.is_zero() {
                            thread::sleep(ramp);
                        }
                        run_session(addr, s as u64, trace, cfg)
                    })
                    .expect("spawn session thread")
            })
            .collect();
        for h in handles {
            if let Ok((outcome, ops)) = h.join() {
                outcomes.push(outcome);
                samples.extend(ops);
            }
        }
        done.store(true, Ordering::Release);
        if let Some(m) = monitor {
            if let Ok(traj) = m.join() {
                trajectory = traj;
            }
        }
    });

    SimReport {
        outcomes,
        samples,
        wall: start.elapsed(),
        cache_trajectory: trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_serve::{ServeConfig, Server};

    fn boot(spec: &SyntheticSpec, max_connections: usize) -> dbex_serve::ServerHandle {
        let table = spec.generate();
        let config = ServeConfig {
            max_connections,
            ..ServeConfig::default()
        };
        #[allow(clippy::expect_used)]
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        server.preload(&spec.name, table);
        #[allow(clippy::expect_used)]
        server.spawn().expect("spawn server")
    }

    #[test]
    fn small_sim_completes_against_live_server() {
        let spec = SyntheticSpec::exploration_default(400, 11);
        let handle = boot(&spec, 32);
        let cfg = SimConfig {
            sessions: 6,
            trace: TraceConfig {
                seed: 11,
                ops: 6,
                think_min_ms: 0,
                think_max_ms: 2,
            },
            abandon_rate: 0.0,
            ..SimConfig::default()
        };
        let report = run_sim(&handle.addr().to_string(), &spec, None, &cfg);
        assert_eq!(report.outcomes.len(), 6);
        assert!(
            report.outcomes.iter().all(|o| o.completed),
            "all sessions should complete: {:?}",
            report.outcomes
        );
        assert!(report.outcomes.iter().all(|o| o.ttfr.is_some()));
        assert_eq!(report.errors(), 0, "no errors expected on a quiet server");
        assert!(report.requests() >= 6 * 6);
        handle.shutdown();
    }

    #[test]
    fn abandon_churn_is_survivable_and_counted() {
        let spec = SyntheticSpec::exploration_default(400, 13);
        let handle = boot(&spec, 32);
        let cfg = SimConfig {
            sessions: 10,
            trace: TraceConfig {
                seed: 13,
                ops: 8,
                think_min_ms: 0,
                think_max_ms: 1,
            },
            abandon_rate: 0.35,
            reconnect_rate: 0.6,
            ..SimConfig::default()
        };
        let report = run_sim(&handle.addr().to_string(), &spec, None, &cfg);
        assert!(
            report.outcomes.iter().any(|o| o.abandoned),
            "0.35 abandon rate over 80 boundaries should abandon at least once"
        );
        // The server must stay healthy through the churn.
        assert_eq!(handle.panics(), 0);
        let report2 = run_sim(&handle.addr().to_string(), &spec, None, &SimConfig {
            sessions: 2,
            trace: TraceConfig { seed: 99, ops: 3, think_min_ms: 0, think_max_ms: 1 },
            abandon_rate: 0.0,
            ..SimConfig::default()
        });
        assert!(report2.outcomes.iter().all(|o| o.completed), "server unhealthy after churn");
        handle.shutdown();
    }

    #[test]
    fn cache_trajectory_is_monotone() {
        let spec = SyntheticSpec::exploration_default(400, 17);
        let handle = boot(&spec, 32);
        let cache = handle.cache();
        let cfg = SimConfig {
            sessions: 4,
            trace: TraceConfig {
                seed: 17,
                ops: 6,
                think_min_ms: 1,
                think_max_ms: 4,
            },
            abandon_rate: 0.0,
            cache_sample_every: Duration::from_millis(5),
            ..SimConfig::default()
        };
        let report = run_sim(&handle.addr().to_string(), &spec, Some(&cache), &cfg);
        assert!(report.cache_trajectory.len() >= 2, "monitor should sample at least twice");
        for w in report.cache_trajectory.windows(2) {
            assert!(w[1].hits >= w[0].hits, "hits must be cumulative");
            assert!(w[1].misses >= w[0].misses, "misses must be cumulative");
            assert!(w[1].at >= w[0].at);
        }
        let last = report.cache_trajectory.last().unwrap();
        assert!(last.hits + last.misses > 0, "CAD ops should touch the stats cache");
        handle.shutdown();
    }
}
