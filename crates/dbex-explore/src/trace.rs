//! Seeded exploratory session traces.
//!
//! A trace is the paper's canonical exploration loop rendered as wire
//! requests: **facet-drill** (SELECT with accumulating equality
//! predicates) → **CAD View construction** → **pivot change** →
//! **highlight / reorder / suggest** interactions against the view.
//! Each op carries a think-time so the simulator can pace it like a
//! human session rather than a closed-loop saturation test; suggest ops
//! pace at keystroke cadence (the bottom quarter of the think range)
//! because they fire *while* the user types the next statement.
//!
//! Traces are pure functions of `(spec, config, session id)` — the same
//! inputs produce the same request strings and think-times on every run,
//! which is what makes `BENCH_explore.json` reproducible under a fixed
//! seed.
//!
//! Validity by construction: drills predicate only on the two most
//! frequent levels of high-frequency facet attributes (so drilled
//! subsets stay large), pivots only target categorical attributes with a
//! zero NULL rate that are not currently drilled, and similarity
//! references always use the current pivot's level-0 label — the one
//! value guaranteed to survive any drill with overwhelming probability.
//! Residual misses (e.g. a reorder value filtered out by an unlucky
//! subset) surface as counted errors in the simulator, not panics.

use crate::gen::{AttrKind, SyntheticSpec};
use crate::mix::mix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// The kind of exploration step a [`TraceOp`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Facet drill: a `SELECT` narrowing the working predicate set.
    Drill,
    /// CAD View construction (`CREATE CADVIEW`).
    Cad,
    /// Pivot change: re-creates the view around a different attribute.
    Pivot,
    /// `HIGHLIGHT SIMILAR IUNITS` against the current view.
    Highlight,
    /// `REORDER ROWS` in the current view by similarity.
    Reorder,
    /// `SUGGEST NEXT` / `SUGGEST COMPLETE` — keystroke-paced assistance
    /// requests issued while the user composes the next statement.
    Suggest,
}

impl OpKind {
    /// Stable lowercase name used in report JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Drill => "drill",
            OpKind::Cad => "cad",
            OpKind::Pivot => "pivot",
            OpKind::Highlight => "highlight",
            OpKind::Reorder => "reorder",
            OpKind::Suggest => "suggest",
        }
    }

    /// All kinds, in report order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Drill,
        OpKind::Cad,
        OpKind::Pivot,
        OpKind::Highlight,
        OpKind::Reorder,
        OpKind::Suggest,
    ];
}

/// One step of a session trace.
#[derive(Debug, Clone)]
pub struct TraceOp {
    /// What kind of exploration step this is.
    pub kind: OpKind,
    /// The wire request line (no trailing newline).
    pub request: String,
    /// Think-time to wait *before* issuing the request.
    pub think: Duration,
}

/// Knobs for [`session_trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Base seed; combined with the session id so each session gets a
    /// distinct but reproducible trace.
    pub seed: u64,
    /// Ops per session (the first is always a drill; a CAD View is
    /// always created by op 3 at the latest).
    pub ops: usize,
    /// Inclusive think-time bounds in milliseconds.
    pub think_min_ms: u64,
    /// See [`Self::think_min_ms`]. `0..=0` disables pacing entirely.
    pub think_max_ms: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            seed: 0,
            ops: 12,
            think_min_ms: 5,
            think_max_ms: 40,
        }
    }
}

/// Per-session generator state: which facets are drilled, what the view
/// currently pivots on.
struct TraceState<'a> {
    spec: &'a SyntheticSpec,
    /// `(attr index, level)` equality predicates, in drill order.
    preds: Vec<(usize, usize)>,
    /// Current pivot attribute index (always a no-NULL categorical).
    pivot: usize,
    /// Whether a CAD View exists yet.
    has_view: bool,
    /// Suggest ops issued so far (alternates NEXT / COMPLETE).
    suggests: usize,
}

impl TraceState<'_> {
    /// Categorical attributes safe to pivot on: never NULL (so the
    /// level-0 value exists under any drill) and not currently drilled
    /// (a drilled pivot would collapse the view to one column).
    fn pivot_candidates(&self) -> Vec<usize> {
        self.spec
            .attrs
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                a.kind == AttrKind::Categorical
                    && a.null_rate == 0.0
                    && a.cardinality >= 2
                    && !self.preds.iter().any(|(p, _)| p == i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Facet attributes still available to drill: categorical, at least
    /// two levels, not the pivot, not already drilled.
    fn drill_candidates(&self) -> Vec<usize> {
        self.spec
            .attrs
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                a.kind == AttrKind::Categorical
                    && a.cardinality >= 2
                    && *i != self.pivot
                    && !self.preds.iter().any(|(p, _)| p == i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn where_clause(&self) -> String {
        let terms: Vec<String> = self
            .preds
            .iter()
            .map(|&(attr, level)| {
                let a = &self.spec.attrs[attr];
                format!("{} = {}", a.name, a.label(level))
            })
            .collect();
        terms.join(" AND ")
    }

    fn drill_request(&self) -> String {
        let pivot_name = &self.spec.attrs[self.pivot].name;
        format!(
            "SELECT {pivot_name} FROM {} WHERE {} LIMIT 20",
            self.spec.name,
            self.where_clause()
        )
    }

    fn cad_request(&self) -> String {
        let pivot_name = &self.spec.attrs[self.pivot].name;
        let mut req = format!(
            "CREATE CADVIEW v AS SET pivot = {pivot_name} FROM {}",
            self.spec.name
        );
        if !self.preds.is_empty() {
            req.push_str(&format!(" WHERE {}", self.where_clause()));
        }
        req.push_str(" LIMIT COLUMNS 3 IUNITS 2");
        req
    }

    /// The current pivot's most frequent level label — the similarity
    /// anchor for highlight/reorder ops.
    fn anchor(&self) -> String {
        self.spec.attrs[self.pivot].label(0)
    }
}

/// Generates the trace for one session.
///
/// The shape: op 0 drills, op 1 drills again or builds the view, a view
/// exists by op 2; the remainder mixes highlight/reorder interactions
/// (~45%), keystroke-paced suggest requests (~20%), further drills that
/// refresh the view (~20%), and pivot changes (~15%), weights varying
/// per session seed.
pub fn session_trace(spec: &SyntheticSpec, cfg: &TraceConfig, session: u64) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed ^ 0x7472_6163, session));
    let mut state = TraceState {
        spec,
        preds: Vec::new(),
        pivot: 0,
        has_view: false,
        suggests: 0,
    };
    // Pivot starts at the first eligible attribute (the designated pivot
    // in the default spec). Specs without one are a configuration error.
    let candidates = state.pivot_candidates();
    assert!(
        !candidates.is_empty(),
        "spec has no pivotable attribute (categorical, no NULLs)"
    );
    state.pivot = candidates[0];
    assert!(
        !state.drill_candidates().is_empty(),
        "spec has no drillable facet attribute"
    );

    let mut ops: Vec<TraceOp> = Vec::with_capacity(cfg.ops);
    let think = |rng: &mut StdRng| {
        let think_ms = if cfg.think_max_ms > cfg.think_min_ms {
            rng.random_range(cfg.think_min_ms..cfg.think_max_ms + 1)
        } else {
            cfg.think_min_ms
        };
        Duration::from_millis(think_ms)
    };
    // Suggest requests are issued *while typing*, so they pace at
    // keystroke cadence: the bottom quarter of the think-time range.
    let keystroke = |rng: &mut StdRng| {
        let span = (cfg.think_max_ms.saturating_sub(cfg.think_min_ms)) / 4;
        let think_ms = if span > 0 {
            rng.random_range(cfg.think_min_ms..cfg.think_min_ms + span + 1)
        } else {
            cfg.think_min_ms
        };
        Duration::from_millis(think_ms)
    };

    for i in 0..cfg.ops {
        let drills = state.drill_candidates();
        let kind = if i == 0 {
            OpKind::Drill
        } else if !state.has_view && (i >= 2 || rng.random_range(0.0..1.0) < 0.5) {
            OpKind::Cad
        } else if !state.has_view {
            OpKind::Drill
        } else {
            // View exists: weighted mix over the interaction ops.
            let r: f64 = rng.random_range(0.0..1.0);
            if r < 0.25 {
                OpKind::Highlight
            } else if r < 0.45 {
                OpKind::Reorder
            } else if r < 0.65 {
                OpKind::Suggest
            } else if r < 0.85 && !drills.is_empty() && state.preds.len() < 3 {
                OpKind::Drill
            } else if state.pivot_candidates().len() > 1 {
                OpKind::Pivot
            } else {
                OpKind::Highlight
            }
        };
        match kind {
            OpKind::Drill => {
                if drills.is_empty() {
                    // Fully drilled: restart the facet path (a common
                    // real-session move — clear filters, explore anew).
                    state.preds.clear();
                }
                let drills = state.drill_candidates();
                let attr = drills[rng.random_range(0..drills.len())];
                // Top-2 levels only: keeps drilled subsets large and the
                // distinct-predicate space small enough that the shared
                // stats cache warms over session lifetimes.
                let level = rng.random_range(0..2usize.min(spec.attrs[attr].cardinality));
                state.preds.push((attr, level));
                ops.push(TraceOp {
                    kind: OpKind::Drill,
                    request: state.drill_request(),
                    think: think(&mut rng),
                });
                if state.has_view {
                    // Refresh the view over the narrowed subset.
                    ops.push(TraceOp {
                        kind: OpKind::Cad,
                        request: state.cad_request(),
                        think: think(&mut rng),
                    });
                }
            }
            OpKind::Cad => {
                state.has_view = true;
                ops.push(TraceOp {
                    kind: OpKind::Cad,
                    request: state.cad_request(),
                    think: think(&mut rng),
                });
            }
            OpKind::Pivot => {
                let cands = state.pivot_candidates();
                let others: Vec<usize> =
                    cands.into_iter().filter(|&c| c != state.pivot).collect();
                state.pivot = others[rng.random_range(0..others.len())];
                ops.push(TraceOp {
                    kind: OpKind::Pivot,
                    request: state.cad_request(),
                    think: think(&mut rng),
                });
            }
            OpKind::Highlight => {
                ops.push(TraceOp {
                    kind: OpKind::Highlight,
                    request: format!(
                        "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY({}, 1) > 0.5",
                        state.anchor()
                    ),
                    think: think(&mut rng),
                });
            }
            OpKind::Reorder => {
                ops.push(TraceOp {
                    kind: OpKind::Reorder,
                    request: format!(
                        "REORDER ROWS IN v ORDER BY SIMILARITY({}) DESC",
                        state.anchor()
                    ),
                    think: think(&mut rng),
                });
            }
            OpKind::Suggest => {
                state.suggests += 1;
                if state.suggests % 2 == 1 {
                    // "What should I look at next?" over the current view.
                    ops.push(TraceOp {
                        kind: OpKind::Suggest,
                        request: "SUGGEST NEXT FOR v".to_string(),
                        think: keystroke(&mut rng),
                    });
                } else {
                    // A keystroke burst while composing the next drill:
                    // attribute completion at `WHERE`, then value
                    // completion once an attribute has been typed.
                    ops.push(TraceOp {
                        kind: OpKind::Suggest,
                        request: format!(
                            "SUGGEST COMPLETE SELECT * FROM {} WHERE",
                            spec.name
                        ),
                        think: keystroke(&mut rng),
                    });
                    if !drills.is_empty() && ops.len() < cfg.ops {
                        let attr = drills[rng.random_range(0..drills.len())];
                        ops.push(TraceOp {
                            kind: OpKind::Suggest,
                            request: format!(
                                "SUGGEST COMPLETE SELECT * FROM {} WHERE {} =",
                                spec.name, spec.attrs[attr].name
                            ),
                            think: keystroke(&mut rng),
                        });
                    }
                }
            }
        }
        if ops.len() >= cfg.ops {
            break;
        }
    }
    ops.truncate(cfg.ops);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::exploration_default(100, 1)
    }

    #[test]
    fn traces_are_deterministic_per_session() {
        let s = spec();
        let cfg = TraceConfig::default();
        let a = session_trace(&s, &cfg, 3);
        let b = session_trace(&s, &cfg, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.think, y.think);
        }
        let c = session_trace(&s, &cfg, 4);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.request != y.request || x.think != y.think),
            "different sessions should diverge"
        );
    }

    #[test]
    fn trace_shape_is_valid() {
        let s = spec();
        let cfg = TraceConfig {
            ops: 16,
            ..TraceConfig::default()
        };
        for session in 0..50 {
            let trace = session_trace(&s, &cfg, session);
            assert_eq!(trace.len(), cfg.ops);
            assert_eq!(trace[0].kind, OpKind::Drill, "session {session}");
            let mut has_view = false;
            for op in &trace {
                match op.kind {
                    OpKind::Cad | OpKind::Pivot => {
                        has_view = true;
                        assert!(op.request.starts_with("CREATE CADVIEW v AS SET pivot = "));
                    }
                    OpKind::Highlight | OpKind::Reorder => {
                        assert!(has_view, "interaction before view in session {session}");
                    }
                    OpKind::Suggest => {
                        assert!(has_view, "suggest before view in session {session}");
                        assert!(op.request.starts_with("SUGGEST "));
                    }
                    OpKind::Drill => assert!(op.request.starts_with("SELECT ")),
                }
                assert!(
                    op.think >= Duration::from_millis(cfg.think_min_ms)
                        && op.think <= Duration::from_millis(cfg.think_max_ms),
                    "think-time out of bounds"
                );
            }
        }
    }

    #[test]
    fn every_kind_appears_across_sessions() {
        let s = spec();
        let cfg = TraceConfig {
            ops: 16,
            ..TraceConfig::default()
        };
        let mut seen = std::collections::HashSet::new();
        for session in 0..40 {
            for op in session_trace(&s, &cfg, session) {
                seen.insert(op.kind);
            }
        }
        for kind in OpKind::ALL {
            assert!(seen.contains(&kind), "{} never generated", kind.name());
        }
    }

    #[test]
    fn think_times_can_be_disabled() {
        let s = spec();
        let cfg = TraceConfig {
            think_min_ms: 0,
            think_max_ms: 0,
            ..TraceConfig::default()
        };
        for op in session_trace(&s, &cfg, 0) {
            assert_eq!(op.think, Duration::ZERO);
        }
    }
}
