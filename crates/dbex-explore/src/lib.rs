//! # dbex-explore
//!
//! The multi-session exploration benchmark harness (IDEBench-style; see
//! ROADMAP item 3). Three layers, each usable on its own:
//!
//! * [`zipf`] — a seeded, table-driven Zipf sampler (also used by the
//!   cache tests to generate realistically skewed key traffic).
//! * [`gen`] — a deterministic synthetic dataset generator with
//!   controllable per-attribute cardinality, Zipf skew, NULL rates, and
//!   *planted* pairwise correlations the stats layer should rediscover.
//!   Identical seeds are byte-identical across runs **and** thread
//!   counts: every row is derived from its own `(seed, row)` RNG, so
//!   parallel generation assembles the exact same table.
//! * [`trace`] — a seeded generator of exploratory session traces in the
//!   paper's TPFacet shape: facet-drill → pivot → CADVIEW →
//!   highlight/reorder, with per-op think-times.
//! * [`sim`] — a session simulator driving hundreds to thousands of
//!   concurrent sessions over the **real** `dbex-serve` wire protocol,
//!   with think-time pacing and abandon/reconnect churn, reporting
//!   time-to-first-result, per-op latencies, BUSY/error rates, and the
//!   shared cache's hit trajectory over the run.
//!
//! The `bench_explore` binary in `dbex-bench` wires these into
//! `BENCH_explore.json` with `--baseline` regression diffing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod gen;
mod mix;
pub mod sim;
pub mod trace;
pub mod zipf;

pub use gen::{AttrKind, AttrSpec, SyntheticSpec};
pub use sim::{run_sim, OpSample, SessionOutcome, SimConfig, SimReport};
pub use trace::{session_trace, OpKind, TraceConfig, TraceOp};
pub use zipf::Zipf;
