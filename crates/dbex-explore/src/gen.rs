//! Seeded synthetic dataset generator with controllable marginals and
//! planted correlation structure.
//!
//! # Determinism across runs *and* thread counts
//!
//! Every row is derived from its own RNG seeded with a mix of the spec
//! seed and the row index — no RNG state is threaded between rows. A
//! parallel generator therefore computes exactly the rows a sequential
//! one would, and because rows are assembled **in row order** into one
//! [`TableBuilder`], the dictionary code assignment (and hence the CSV
//! bytes) is identical at any thread count.
//!
//! # Knobs
//!
//! Per attribute ([`AttrSpec`]): cardinality (distinct non-NULL levels),
//! Zipf skew of the marginal, NULL rate, categorical vs. numeric
//! rendering, and an optional planted correlation with an earlier
//! attribute. A correlated draw copies the parent's level through a fixed
//! affine permutation with probability `strength`, and falls back to an
//! independent Zipf draw otherwise — so `strength` directly controls the
//! mutual information the stats layer's interaction matrix should
//! rediscover, while the marginal stays close to the configured Zipf.

use crate::mix::mix;
use crate::zipf::Zipf;
use dbex_table::{to_csv, DataType, Field, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How an attribute's levels are rendered into column values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Dictionary-encoded string: level `k` renders as `<name>_v<k>`.
    Categorical,
    /// Integer: level `k` renders as `k * 100 + noise(0..100)`, so the
    /// level structure survives equi-width binning while range
    /// predicates (`BETWEEN`) stay meaningful.
    Numeric,
}

/// One attribute of a [`SyntheticSpec`].
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Column name (must be a bare identifier: the trace generator puts
    /// it into query text unquoted).
    pub name: String,
    /// Distinct non-NULL levels.
    pub cardinality: usize,
    /// Zipf exponent of the marginal (`0` = uniform).
    pub skew: f64,
    /// Probability of NULL, in `[0, 1)`.
    pub null_rate: f64,
    /// Rendering (categorical string vs. integer).
    pub kind: AttrKind,
    /// Planted correlation: `(parent index, strength)`. With probability
    /// `strength` the level is a fixed permutation of the parent's level
    /// (parent must precede this attribute and be non-NULL for the copy
    /// to engage). `None` = independent.
    pub correlated_with: Option<(usize, f64)>,
}

impl AttrSpec {
    /// An independent categorical attribute.
    pub fn categorical(name: &str, cardinality: usize, skew: f64, null_rate: f64) -> AttrSpec {
        AttrSpec {
            name: name.to_owned(),
            cardinality,
            skew,
            null_rate,
            kind: AttrKind::Categorical,
            correlated_with: None,
        }
    }

    /// An independent numeric attribute.
    pub fn numeric(name: &str, cardinality: usize, skew: f64, null_rate: f64) -> AttrSpec {
        AttrSpec {
            kind: AttrKind::Numeric,
            ..AttrSpec::categorical(name, cardinality, skew, null_rate)
        }
    }

    /// Plants a correlation with attribute `parent` (by index) at the
    /// given strength in `[0, 1]`.
    pub fn correlated(mut self, parent: usize, strength: f64) -> AttrSpec {
        self.correlated_with = Some((parent, strength));
        self
    }

    /// The rendered label of level `k` (categorical attributes only) —
    /// exposed so the trace generator can write predicates against known
    /// frequent values.
    pub fn label(&self, k: usize) -> String {
        format!("{}_v{k}", self.name)
    }
}

/// A complete synthetic dataset specification.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Table name (used by the trace generator's `FROM` clauses).
    pub name: String,
    /// Master seed; identical `(seed, rows, attrs)` are byte-identical.
    pub seed: u64,
    /// Row count.
    pub rows: usize,
    /// Attribute specifications, in schema order.
    pub attrs: Vec<AttrSpec>,
}


impl SyntheticSpec {
    /// The default exploration benchmark dataset: 12 attributes in three
    /// families around a dedicated pivot —
    ///
    /// * `p` — the pivot: 6 levels, mild skew, never NULL (so CADVIEW
    ///   pivots and `SIMILARITY(p_v0)` references stay valid under any
    ///   drill).
    /// * `d0..d3` — drill facets with varied cardinality/skew and small
    ///   NULL rates (facet predicates target their two most frequent
    ///   levels, keeping drilled subsets large).
    /// * `c0..c2`, `n0` — planted dependents: `c0` follows the pivot,
    ///   `c1` follows `d0`, `c2` follows `c1` (a chain), `n0` is a
    ///   numeric echo of `d1`. These are the interactions the CAD View's
    ///   compare-attribute selection should surface.
    /// * `x0..x2` — independent noise of varying cardinality.
    pub fn exploration_default(rows: usize, seed: u64) -> SyntheticSpec {
        let attrs = vec![
            AttrSpec::categorical("p", 6, 0.5, 0.0),
            AttrSpec::categorical("d0", 4, 0.8, 0.02),
            AttrSpec::categorical("d1", 8, 1.0, 0.02),
            AttrSpec::categorical("d2", 12, 1.1, 0.05),
            AttrSpec::categorical("d3", 5, 0.6, 0.0),
            AttrSpec::categorical("c0", 6, 0.5, 0.02).correlated(0, 0.8),
            AttrSpec::categorical("c1", 4, 0.8, 0.02).correlated(1, 0.7),
            AttrSpec::categorical("c2", 4, 0.8, 0.05).correlated(6, 0.6),
            AttrSpec::numeric("n0", 8, 1.0, 0.02).correlated(2, 0.75),
            AttrSpec::categorical("x0", 10, 0.3, 0.05),
            AttrSpec::categorical("x1", 3, 0.0, 0.0),
            AttrSpec::numeric("x2", 16, 0.4, 0.1),
        ];
        SyntheticSpec {
            name: "synth".to_owned(),
            seed,
            rows,
            attrs,
        }
    }

    /// The schema this spec generates.
    pub fn fields(&self) -> Vec<Field> {
        self.attrs
            .iter()
            .map(|a| {
                Field::new(
                    a.name.clone(),
                    match a.kind {
                        AttrKind::Categorical => DataType::Categorical,
                        AttrKind::Numeric => DataType::Int,
                    },
                )
            })
            .collect()
    }

    /// Generates one row's *levels* (`None` = NULL) from its private RNG.
    fn row_levels(&self, dists: &[Zipf], row: usize) -> Vec<Option<usize>> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, row as u64));
        let mut levels: Vec<Option<usize>> = Vec::with_capacity(self.attrs.len());
        for (i, attr) in self.attrs.iter().enumerate() {
            // Draw the full per-attribute entropy unconditionally so the
            // stream position never depends on earlier outcomes of the
            // same row — keeps the generator easy to reason about.
            let null_draw: f64 = rng.random_range(0.0..1.0);
            let corr_draw: f64 = rng.random_range(0.0..1.0);
            let indep = dists[i].sample(&mut rng);
            let level = if null_draw < attr.null_rate {
                None
            } else {
                match attr.correlated_with {
                    Some((parent, strength)) if parent < i => match levels[parent] {
                        Some(p) if corr_draw < strength => {
                            // Fixed affine permutation of the parent level:
                            // deterministic, level-preserving, and distinct
                            // from identity so the mapping is non-trivial.
                            Some((p.wrapping_mul(3).wrapping_add(1)) % attr.cardinality)
                        }
                        _ => Some(indep),
                    },
                    _ => Some(indep),
                }
            };
            levels.push(level);
        }
        levels
    }

    /// Renders one level vector into column [`Value`]s.
    fn render_row(&self, levels: &[Option<usize>], row: usize) -> Vec<Value> {
        // Numeric noise comes from a separate stream so it cannot shift
        // the level draws.
        let mut noise_rng = StdRng::seed_from_u64(mix(self.seed ^ 0xA5A5_A5A5, row as u64));
        self.attrs
            .iter()
            .zip(levels)
            .map(|(attr, level)| {
                let noise: i64 = noise_rng.random_range(0i64..100);
                match level {
                    None => Value::Null,
                    Some(k) => match attr.kind {
                        AttrKind::Categorical => Value::Str(attr.label(*k)),
                        AttrKind::Numeric => Value::Int((*k as i64) * 100 + noise),
                    },
                }
            })
            .collect()
    }

    /// Generates the table sequentially. Equivalent to
    /// [`Self::generate_with_threads`]`(1)`.
    pub fn generate(&self) -> Table {
        self.generate_with_threads(1)
    }

    /// Generates the table with `threads` workers (`0` = auto). The
    /// output is byte-identical at any thread count (see module docs).
    ///
    /// # Panics
    /// Panics when the spec is internally inconsistent (an attribute
    /// with zero cardinality, or a correlation pointing at itself or a
    /// later attribute) — specification bugs, not data conditions.
    pub fn generate_with_threads(&self, threads: usize) -> Table {
        for (i, attr) in self.attrs.iter().enumerate() {
            assert!(attr.cardinality >= 1, "attribute {} has zero cardinality", attr.name);
            assert!(
                (0.0..1.0).contains(&attr.null_rate),
                "attribute {} null_rate out of [0,1)",
                attr.name
            );
            if let Some((parent, strength)) = attr.correlated_with {
                assert!(
                    parent < i,
                    "attribute {} correlates with a non-preceding attribute",
                    attr.name
                );
                assert!(
                    (0.0..=1.0).contains(&strength),
                    "attribute {} correlation strength out of [0,1]",
                    attr.name
                );
            }
        }
        let dists: Vec<Zipf> = self
            .attrs
            .iter()
            .map(|a| Zipf::new(a.cardinality, a.skew))
            .collect();
        let threads = dbex_par::resolve_threads(threads);
        let rows: Vec<Vec<Value>> = dbex_par::par_map_chunks(threads, self.rows, 256, |range| {
            range
                .map(|r| self.render_row(&self.row_levels(&dists, r), r))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        #[allow(clippy::expect_used)] // spec validated above; schema is static
        let mut builder = TableBuilder::new(self.fields()).expect("valid synthetic schema");
        for row in rows {
            #[allow(clippy::expect_used)] // rows are rendered from the same schema
            builder.push_row(row).expect("generated row matches schema");
        }
        builder.finish()
    }

    /// The generated table rendered as CSV (header + rows) — for feeding
    /// external tools or diffing determinism across processes.
    pub fn generate_csv(&self) -> String {
        to_csv(&self.generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticSpec {
        SyntheticSpec::exploration_default(2_000, 7)
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let a = small().generate_csv();
        let b = small().generate_csv();
        assert_eq!(a, b, "same seed must be byte-identical");
        let par = to_csv(&small().generate_with_threads(4));
        assert_eq!(a, par, "thread count must not change the bytes");
    }

    #[test]
    fn seeds_differ() {
        let a = small().generate_csv();
        let mut spec = small();
        spec.seed = 8;
        assert_ne!(a, spec.generate_csv());
    }

    #[test]
    fn null_rates_and_cardinalities_respected() {
        let spec = small();
        let table = spec.generate();
        assert_eq!(table.num_rows(), 2_000);
        for (i, attr) in spec.attrs.iter().enumerate() {
            let mut nulls = 0usize;
            let mut distinct = std::collections::HashSet::new();
            for r in 0..table.num_rows() {
                match table.value(r, i) {
                    Value::Null => nulls += 1,
                    v => {
                        distinct.insert(format!("{v:?}"));
                    }
                }
            }
            let observed = nulls as f64 / table.num_rows() as f64;
            assert!(
                (observed - attr.null_rate).abs() < 0.03,
                "{}: null rate {observed} vs configured {}",
                attr.name,
                attr.null_rate
            );
            match attr.kind {
                AttrKind::Categorical => assert!(
                    distinct.len() <= attr.cardinality,
                    "{}: {} distinct > cardinality {}",
                    attr.name,
                    distinct.len(),
                    attr.cardinality
                ),
                // Numeric: each level spans up to 100 noise values.
                AttrKind::Numeric => assert!(distinct.len() <= attr.cardinality * 100),
            }
        }
    }

    #[test]
    fn planted_correlation_is_visible() {
        let spec = small();
        let table = spec.generate();
        // c0 (index 5) follows p (index 0) at strength 0.8 through
        // level -> (3*level + 1) % 6.
        let mut matches = 0usize;
        let mut total = 0usize;
        for r in 0..table.num_rows() {
            let (p, c) = (table.value(r, 0), table.value(r, 5));
            if let (Value::Str(p), Value::Str(c)) = (p, c) {
                let pk: usize = p.trim_start_matches("p_v").parse().unwrap();
                total += 1;
                if c == format!("c0_v{}", (pk * 3 + 1) % 6) {
                    matches += 1;
                }
            }
        }
        let rate = matches as f64 / total as f64;
        assert!(
            rate > 0.7,
            "planted 0.8-strength correlation only observed at {rate}"
        );
    }

    #[test]
    fn pivot_attribute_never_null() {
        let table = small().generate();
        for r in 0..table.num_rows() {
            assert!(!table.value(r, 0).is_null(), "pivot NULL at row {r}");
        }
    }
}
