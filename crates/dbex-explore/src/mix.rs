//! Seed mixing shared by the generator, trace generator, and simulator.
//!
//! `StdRng::seed_from_u64` applies only one pre-mix round, so seeding
//! directly from an affine family (`seed ^ (id * C + D)`) leaves the
//! *first* draws of nearby ids visibly correlated — e.g. ~19% of the
//! first 32 session streams opened below 0.08 instead of 8%, which
//! tripled small-run abandon counts. Running the stream id through a
//! full SplitMix64 finalizer first scatters consecutive ids across the
//! state space, so per-row / per-session streams are independent from
//! their very first draw.

/// Mixes a master seed and a stream id (row index, session id) into a
/// well-scattered RNG seed. SplitMix64 finalizer (Steele, Lea, Flood
/// 2014).
pub(crate) fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ stream
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678_9ABC_DEF1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// The property the simulator depends on: the FIRST draw of
    /// consecutive streams is uniform even over tiny prefixes.
    #[test]
    fn first_draws_are_uniform_over_small_prefixes() {
        for n in [32u64, 256, 1024] {
            let mut below = 0usize;
            for stream in 0..n {
                let mut rng = StdRng::seed_from_u64(mix(42, stream));
                let r: f64 = rng.random_range(0.0..1.0);
                if r < 0.08 {
                    below += 1;
                }
            }
            let frac = below as f64 / n as f64;
            // 4-sigma binomial envelope around 0.08.
            let tol = 4.0 * (0.08 * 0.92 / n as f64).sqrt();
            assert!(
                (frac - 0.08).abs() < tol,
                "n={n}: first-draw frac {frac} vs 0.08 ± {tol:.3}"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        assert_ne!(mix(1, 0), mix(2, 0));
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_ne!(mix(1, 2), mix(2, 1));
    }
}
