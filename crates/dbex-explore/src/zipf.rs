//! Seeded Zipf sampling over a finite level set.
//!
//! `p(k) ∝ 1 / (k + 1)^s` for `k` in `0..n`. `s = 0` degenerates to the
//! uniform distribution; larger `s` concentrates mass on the low levels.
//! Sampling is a binary search over the precomputed CDF, so a draw costs
//! `O(log n)` and is a pure function of the RNG stream — deterministic
//! for a seeded generator.

use rand::rngs::StdRng;
use rand::RngExt;

/// A precomputed Zipf distribution over levels `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(level ≤ k). Last entry is 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n ≥ 1` levels with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite — both are
    /// specification bugs, not data conditions.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one level");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and >= 0");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard the tail against float round-off so a unit draw of
        // 0.999999... can never fall past the last level.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.cdf.len()
    }

    /// The probability mass of level `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - prev
    }

    /// Draws one level from `rng`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12, "level {k}: {}", z.pmf(k));
        }
    }

    #[test]
    fn mass_concentrates_with_skew() {
        let z = Zipf::new(100, 1.2);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let head: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!(head > 0.5, "head mass only {head}");
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let z = Zipf::new(16, 0.9);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert_eq!(x, z.sample(&mut b));
            assert!(x < 16);
        }
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expected = z.pmf(k) * n as f64;
            let tol = 4.0 * (expected.max(1.0)).sqrt() + 10.0;
            assert!(
                ((c as f64) - expected).abs() < tol,
                "level {k}: observed {c}, expected {expected:.1}"
            );
        }
    }
}
