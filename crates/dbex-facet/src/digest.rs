//! Summary digests: per-attribute value counts of a result set.

use dbex_stats::discretize::AttributeCodec;
use dbex_stats::simil::cosine_similarity;
use dbex_table::dict::NULL_CODE;
use dbex_table::View;

/// Value counts of one attribute within a result set.
#[derive(Debug, Clone)]
pub struct AttributeDigest {
    /// Attribute's schema index.
    pub attr_index: usize,
    /// Attribute name.
    pub name: String,
    /// `counts[code]` = number of tuples with that (discretized) value.
    pub counts: Vec<usize>,
    /// Label per code (facet value captions shown in the query panel).
    pub labels: Vec<String>,
}

impl AttributeDigest {
    /// `(label, count)` pairs with non-zero counts, by decreasing count.
    pub fn entries(&self) -> Vec<(&str, usize)> {
        let mut out: Vec<(&str, usize)> = self
            .labels
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(l, &c)| (l.as_str(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// Count for a given value label (0 if absent).
    pub fn count_of(&self, label: &str) -> usize {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }
}

/// The full summary digest: one [`AttributeDigest`] per summarized
/// attribute.
#[derive(Debug, Clone)]
pub struct SummaryDigest {
    /// Digests in schema order of the summarized attributes.
    pub attributes: Vec<AttributeDigest>,
    /// Total number of tuples in the digested result set.
    pub total: usize,
}

impl SummaryDigest {
    /// Computes the digest of `view` for the given attributes, using
    /// pre-built codecs (so digests of different result sets share bins and
    /// are comparable).
    pub fn compute(
        view: &View<'_>,
        attrs: &[(usize, AttributeCodec)],
    ) -> SummaryDigest {
        let mut attributes = Vec::with_capacity(attrs.len());
        for (attr_index, codec) in attrs {
            let column = view.table().column(*attr_index);
            let mut counts = vec![0usize; codec.cardinality()];
            for &row in view.row_ids() {
                if let Some(code) = codec.encode(column, row as usize) {
                    if code != NULL_CODE {
                        counts[code as usize] += 1;
                    }
                }
            }
            let labels = (0..codec.cardinality() as u32)
                .map(|c| codec.label(c).to_owned())
                .collect();
            attributes.push(AttributeDigest {
                attr_index: *attr_index,
                name: view.table().schema().field(*attr_index).name.clone(),
                counts,
                labels,
            });
        }
        SummaryDigest {
            attributes,
            total: view.len(),
        }
    }

    /// Digest of a single attribute by schema index, if present.
    pub fn attribute(&self, attr_index: usize) -> Option<&AttributeDigest> {
        self.attributes.iter().find(|a| a.attr_index == attr_index)
    }
}

/// Cosine similarity between two summary digests.
///
/// The digests are flattened into one long frequency vector (attribute
/// blocks concatenated in order) and compared with cosine similarity —
/// the metric the paper supplies to baseline users for the "most similar
/// facet value pair" task (Section 6.2.2). Both digests must cover the same
/// attributes with the same codecs (i.e. come from the same
/// [`crate::FacetedEngine`]).
pub fn digest_similarity(a: &SummaryDigest, b: &SummaryDigest) -> f64 {
    let flatten = |d: &SummaryDigest| -> Vec<f64> {
        d.attributes
            .iter()
            .flat_map(|attr| attr.counts.iter().map(|&c| c as f64))
            .collect()
    };
    cosine_similarity(&flatten(a), &flatten(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_stats::histogram::BinningStrategy;
    use dbex_table::{DataType, Field, TableBuilder};

    fn setup() -> (dbex_table::Table, Vec<(usize, AttributeCodec)>) {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, p) in [
            ("Ford", 10),
            ("Ford", 12),
            ("Jeep", 30),
            ("Jeep", 32),
            ("Jeep", 34),
        ] {
            b.push_row(vec![m.into(), p.into()]).unwrap();
        }
        let t = b.finish();
        let attrs: Vec<(usize, AttributeCodec)> = (0..2)
            .map(|i| {
                (
                    i,
                    AttributeCodec::build(&t.full_view(), i, 2, BinningStrategy::EquiWidth)
                        .unwrap(),
                )
            })
            .collect();
        (t, attrs)
    }

    #[test]
    fn digest_counts_values() {
        let (t, attrs) = setup();
        let d = SummaryDigest::compute(&t.full_view(), &attrs);
        assert_eq!(d.total, 5);
        let make = d.attribute(0).unwrap();
        assert_eq!(make.count_of("Ford"), 2);
        assert_eq!(make.count_of("Jeep"), 3);
        assert_eq!(make.count_of("Honda"), 0);
        assert_eq!(make.entries()[0], ("Jeep", 3));
    }

    #[test]
    fn numeric_attribute_binned() {
        let (t, attrs) = setup();
        let d = SummaryDigest::compute(&t.full_view(), &attrs);
        let price = d.attribute(1).unwrap();
        assert_eq!(price.counts.iter().sum::<usize>(), 5);
        assert_eq!(price.counts.len(), 2);
        assert_eq!(price.counts[0], 2); // 10, 12 in the low bin
        assert_eq!(price.counts[1], 3);
    }

    #[test]
    fn identical_views_similarity_one() {
        let (t, attrs) = setup();
        let d1 = SummaryDigest::compute(&t.full_view(), &attrs);
        let d2 = SummaryDigest::compute(&t.full_view(), &attrs);
        assert!((digest_similarity(&d1, &d2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_views_similarity_below_one() {
        let (t, attrs) = setup();
        let ford = t
            .filter(&dbex_table::Predicate::eq("Make", "Ford"))
            .unwrap();
        let jeep = t
            .filter(&dbex_table::Predicate::eq("Make", "Jeep"))
            .unwrap();
        let df = SummaryDigest::compute(&ford, &attrs);
        let dj = SummaryDigest::compute(&jeep, &attrs);
        let s = digest_similarity(&df, &dj);
        assert!(s < 0.5, "similarity {s} should be small for disjoint sets");
    }

    #[test]
    fn empty_view_digest() {
        let (t, attrs) = setup();
        let empty = t
            .filter(&dbex_table::Predicate::eq("Make", "Tesla"))
            .unwrap();
        let d = SummaryDigest::compute(&empty, &attrs);
        assert_eq!(d.total, 0);
        assert!(d.attribute(0).unwrap().entries().is_empty());
    }
}
