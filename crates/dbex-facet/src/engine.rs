//! Interactive faceted-navigation engine.
//!
//! Mirrors the interaction model of the paper's Figure 1 / Section 5: a
//! query panel of attribute values with counts, value-click refinement
//! (OR within an attribute, AND across attributes), and a results panel.
//! Digest codecs are built once over the whole table so that digests of any
//! two result sets are comparable.

use crate::digest::SummaryDigest;
use dbex_stats::discretize::AttributeCodec;
use dbex_stats::histogram::BinningStrategy;
use dbex_table::{Error, Predicate, Result, Table, View};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Current selection state: per attribute, the set of selected value labels.
#[derive(Debug, Clone, Default)]
pub struct FacetState {
    /// Attribute index → selected value labels (OR semantics within;
    /// AND across attributes).
    pub selections: BTreeMap<usize, Vec<String>>,
}

impl FacetState {
    /// True iff no value is selected anywhere.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty()
    }

    /// Total number of selected values across attributes.
    pub fn num_selected(&self) -> usize {
        self.selections.values().map(|v| v.len()).sum()
    }
}

/// The faceted search engine over one table.
pub struct FacetedEngine<'a> {
    table: &'a Table,
    /// Facetable attributes with their digest codecs.
    attrs: Vec<(usize, AttributeCodec)>,
    state: FacetState,
    /// Memoized digest of the most recent result set, keyed on the view
    /// fingerprint. A selection change produces a different result view
    /// (different fingerprint), so invalidation is implicit — the stale
    /// entry simply never matches again.
    digest_cache: Mutex<Option<(u64, Arc<SummaryDigest>)>>,
    digest_hits: AtomicU64,
    digest_misses: AtomicU64,
}

impl<'a> FacetedEngine<'a> {
    /// Builds an engine over the queriable attributes of `table`, binning
    /// numeric attributes into `bins` equi-depth buckets.
    pub fn new(table: &'a Table, bins: usize) -> FacetedEngine<'a> {
        let view = table.full_view();
        let attrs = table
            .schema()
            .queriable_indices()
            .into_iter()
            .filter_map(|i| {
                AttributeCodec::build(&view, i, bins, BinningStrategy::EquiDepth)
                    .ok()
                    .map(|codec| (i, codec))
            })
            .collect();
        FacetedEngine {
            table,
            attrs,
            state: FacetState::default(),
            digest_cache: Mutex::new(None),
            digest_hits: AtomicU64::new(0),
            digest_misses: AtomicU64::new(0),
        }
    }

    /// The base table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Facetable attributes and their codecs.
    pub fn attributes(&self) -> &[(usize, AttributeCodec)] {
        &self.attrs
    }

    /// Current selection state.
    pub fn state(&self) -> &FacetState {
        &self.state
    }

    /// Selects a facet value (idempotent). `attr` is a schema index.
    pub fn select(&mut self, attr: usize, label: &str) -> Result<()> {
        let codec = self.codec_of(attr)?;
        if codec.code_of_label(label).is_none() {
            return Err(Error::Invalid(format!(
                "attribute {} has no facet value {label:?}",
                self.table.schema().field(attr).name
            )));
        }
        let entry = self.state.selections.entry(attr).or_default();
        if !entry.iter().any(|l| l == label) {
            entry.push(label.to_owned());
        }
        Ok(())
    }

    /// Deselects a facet value (no-op if not selected).
    pub fn deselect(&mut self, attr: usize, label: &str) {
        if let Some(entry) = self.state.selections.get_mut(&attr) {
            entry.retain(|l| l != label);
            if entry.is_empty() {
                self.state.selections.remove(&attr);
            }
        }
    }

    /// Clears all selections.
    pub fn clear(&mut self) {
        self.state = FacetState::default();
    }

    /// Replaces the entire selection state.
    pub fn set_state(&mut self, state: FacetState) {
        self.state = state;
    }

    /// The current result set under the selection state.
    pub fn results(&self) -> Result<View<'a>> {
        self.results_for(&self.state)
    }

    /// Result set for an arbitrary selection state (without mutating the
    /// engine) — used by simulated users to peek at hypothetical
    /// refinements the way a human opens a selection and backs out.
    pub fn results_for(&self, state: &FacetState) -> Result<View<'a>> {
        let mut conjuncts = Vec::new();
        for (&attr, labels) in &state.selections {
            let codec = self.codec_of(attr)?;
            let disjuncts: Vec<Predicate> = labels
                .iter()
                .map(|label| self.label_predicate(attr, codec, label))
                .collect::<Result<_>>()?;
            conjuncts.push(Predicate::or(disjuncts));
        }
        self.table.filter(&Predicate::and(conjuncts))
    }

    /// Summary digest of the current result set.
    ///
    /// Memoized on the result view's fingerprint: repeated digests of the
    /// same selection (every query-panel render triggers one) are served
    /// from the cache, and any refinement invalidates it implicitly by
    /// changing the fingerprint.
    pub fn digest(&self) -> Result<SummaryDigest> {
        let view = self.results()?;
        let fp = view.fingerprint();
        if let Ok(guard) = self.digest_cache.lock() {
            if let Some((key, digest)) = guard.as_ref() {
                if *key == fp {
                    self.digest_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((**digest).clone());
                }
            }
        }
        self.digest_misses.fetch_add(1, Ordering::Relaxed);
        let digest = SummaryDigest::compute(&view, &self.attrs);
        if let Ok(mut guard) = self.digest_cache.lock() {
            *guard = Some((fp, Arc::new(digest.clone())));
        }
        Ok(digest)
    }

    /// `(hits, misses)` of the digest memo — diagnostics for `EXPLAIN` and
    /// the bench harness.
    pub fn digest_cache_stats(&self) -> (u64, u64) {
        (
            self.digest_hits.load(Ordering::Relaxed),
            self.digest_misses.load(Ordering::Relaxed),
        )
    }

    /// Summary digest of an arbitrary view (with this engine's codecs, so
    /// digests are mutually comparable).
    pub fn digest_of(&self, view: &View<'_>) -> SummaryDigest {
        SummaryDigest::compute(view, &self.attrs)
    }

    /// Renders the query panel: every attribute with its value counts under
    /// the current selection, marking selected values with `*`.
    pub fn render_query_panel(&self) -> Result<String> {
        let digest = self.digest()?;
        let mut out = String::new();
        out.push_str(&format!("=== {} results ===\n", digest.total));
        for attr in &digest.attributes {
            out.push_str(&format!("{}\n", attr.name));
            for (label, count) in attr.entries() {
                let mark = if self
                    .state
                    .selections
                    .get(&attr.attr_index)
                    .is_some_and(|ls| ls.iter().any(|l| l == label))
                {
                    "*"
                } else {
                    " "
                };
                out.push_str(&format!("  {mark} {label} ({count})\n"));
            }
        }
        Ok(out)
    }

    fn codec_of(&self, attr: usize) -> Result<&AttributeCodec> {
        self.attrs
            .iter()
            .find(|(i, _)| *i == attr)
            .map(|(_, c)| c)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "attribute index {attr} is not facetable"
                ))
            })
    }

    /// Converts a facet value label into a predicate over the raw column.
    fn label_predicate(
        &self,
        attr: usize,
        codec: &AttributeCodec,
        label: &str,
    ) -> Result<Predicate> {
        let name = self.table.schema().field(attr).name.clone();
        match codec {
            AttributeCodec::Categorical { .. } => Ok(Predicate::eq(name, label)),
            AttributeCodec::Binned { histogram, .. } => {
                let code = codec.code_of_label(label).ok_or_else(|| {
                    Error::Invalid(format!("no bin labeled {label:?} on {name}"))
                })? as usize;
                let lo = histogram.edges()[code];
                let hi = histogram.edges()[code + 1];
                // Bins are [lo, hi) except the last, which is [lo, hi].
                if code + 1 == histogram.num_bins() {
                    Ok(Predicate::between(name, lo, hi))
                } else {
                    Ok(Predicate::and(vec![
                        Predicate::cmp(name.clone(), dbex_table::predicate::CmpOp::Ge, lo),
                        Predicate::cmp(name, dbex_table::predicate::CmpOp::Lt, hi),
                    ]))
                }
            }
        }
    }

    /// Predicate equivalent of a selection state (useful for exporting the
    /// user's final query).
    pub fn state_predicate(&self, state: &FacetState) -> Result<Predicate> {
        let mut conjuncts = Vec::new();
        for (&attr, labels) in &state.selections {
            let codec = self.codec_of(attr)?;
            let disjuncts: Vec<Predicate> = labels
                .iter()
                .map(|label| self.label_predicate(attr, codec, label))
                .collect::<Result<_>>()?;
            conjuncts.push(Predicate::or(disjuncts));
        }
        Ok(Predicate::and(conjuncts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Body", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::hidden("Engine", DataType::Categorical),
        ])
        .unwrap();
        for (m, body, p, e) in [
            ("Ford", "SUV", 10, "V6"),
            ("Ford", "Sedan", 20, "V4"),
            ("Jeep", "SUV", 30, "V6"),
            ("Jeep", "SUV", 40, "V8"),
            ("Honda", "Sedan", 50, "V4"),
            ("Honda", "SUV", 60, "V4"),
        ] {
            b.push_row(vec![m.into(), body.into(), p.into(), e.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn hidden_attributes_not_facetable() {
        let t = table();
        let e = FacetedEngine::new(&t, 3);
        assert_eq!(e.attributes().len(), 3); // Engine excluded
        assert!(e.attributes().iter().all(|(i, _)| *i != 3));
    }

    #[test]
    fn select_and_refine() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 3);
        e.select(1, "SUV").unwrap();
        assert_eq!(e.results().unwrap().len(), 4);
        e.select(0, "Ford").unwrap();
        assert_eq!(e.results().unwrap().len(), 1);
        // OR within attribute.
        e.select(0, "Jeep").unwrap();
        assert_eq!(e.results().unwrap().len(), 3);
        e.deselect(0, "Ford");
        assert_eq!(e.results().unwrap().len(), 2);
        e.clear();
        assert_eq!(e.results().unwrap().len(), 6);
    }

    #[test]
    fn unknown_value_rejected() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 3);
        assert!(e.select(0, "Tesla").is_err());
        assert!(e.select(3, "V6").is_err()); // hidden attribute
    }

    #[test]
    fn numeric_facet_selection() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 2);
        let digest = e.digest().unwrap();
        let price = digest.attribute(2).unwrap();
        let (label, count) = price.entries()[0];
        let label = label.to_owned();
        e.select(2, &label).unwrap();
        assert_eq!(e.results().unwrap().len(), count);
    }

    #[test]
    fn digest_reflects_selection_context() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 3);
        e.select(0, "Honda").unwrap();
        let digest = e.digest().unwrap();
        let body = digest.attribute(1).unwrap();
        assert_eq!(body.count_of("SUV"), 1);
        assert_eq!(body.count_of("Sedan"), 1);
        assert_eq!(digest.total, 2);
    }

    #[test]
    fn query_panel_renders_marks() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 3);
        e.select(0, "Ford").unwrap();
        let panel = e.render_query_panel().unwrap();
        assert!(panel.contains("* Ford"));
        assert!(panel.contains("=== 2 results ==="));
    }

    #[test]
    fn results_for_does_not_mutate() {
        let t = table();
        let e = FacetedEngine::new(&t, 3);
        let mut s = FacetState::default();
        s.selections.insert(0, vec!["Ford".into()]);
        assert_eq!(e.results_for(&s).unwrap().len(), 2);
        assert!(e.state().is_empty());
        assert_eq!(e.results().unwrap().len(), 6);
    }

    #[test]
    fn digest_memoized_until_selection_changes() {
        let t = table();
        let mut e = FacetedEngine::new(&t, 3);
        let d1 = e.digest().unwrap();
        let d2 = e.digest().unwrap();
        assert_eq!(e.digest_cache_stats(), (1, 1), "second digest should hit");
        assert_eq!(d1.total, d2.total);
        assert_eq!(d1.attribute(0).unwrap().counts, d2.attribute(0).unwrap().counts);

        // A refinement changes the result fingerprint: the memo misses once
        // and the digest reflects the new selection.
        e.select(0, "Ford").unwrap();
        let d3 = e.digest().unwrap();
        assert_eq!(e.digest_cache_stats(), (1, 2));
        assert_eq!(d3.total, 2);
        // Backing out restores the full view; the single-entry memo was
        // overwritten, so this recomputes — but stays correct.
        e.deselect(0, "Ford");
        let d4 = e.digest().unwrap();
        assert_eq!(d4.total, 6);
    }

    #[test]
    fn state_predicate_round_trips() {
        let t = table();
        let e = FacetedEngine::new(&t, 3);
        let mut s = FacetState::default();
        s.selections.insert(0, vec!["Ford".into(), "Jeep".into()]);
        s.selections.insert(1, vec!["SUV".into()]);
        let p = e.state_predicate(&s).unwrap();
        let direct = e.results_for(&s).unwrap();
        let via_pred = t.filter(&p).unwrap();
        assert_eq!(direct.row_ids(), via_pred.row_ids());
    }
}
