//! # dbex-facet
//!
//! Faceted navigation engine — the Apache Solr stand-in of the paper's
//! evaluation (Sections 5-6).
//!
//! A faceted interface has a query panel showing, for every queriable
//! attribute, the attribute values present in the current result set with
//! their tuple counts (the **summary digest**), and lets the user refine the
//! result set by clicking values (OR within an attribute, AND across
//! attributes). This is the observable surface the paper's baseline exposes
//! and the only information a "Solr user" has when performing the study
//! tasks.
//!
//! * [`digest`] — summary digests and their cosine similarity (the metric
//!   the study hands to baseline users for Task 2).
//! * [`engine`] — interactive engine: selection state, refinement,
//!   digest computation, rendering of the query panel.

pub mod digest;
pub mod engine;

pub use digest::{digest_similarity, AttributeDigest, SummaryDigest};
pub use engine::{FacetState, FacetedEngine};
