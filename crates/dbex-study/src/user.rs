//! Simulated study participants.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A simulated participant.
///
/// `speed` scales every operation's duration; `diligence` bounds how much
/// of the candidate space the user explores before committing;
/// `judgment_noise` perturbs mental comparisons (a user eyeballing two
/// digests does not compute an exact cosine). All three are drawn once per
/// user from the study seed, mirroring between-subject variability.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// Stable id `U1..U8` (0-based internally).
    pub id: usize,
    /// Study group: 0 or 1 (controls the matched-pair task assignment).
    pub group: usize,
    /// Operation speed multiplier (≈0.75 slow … 1.35 fast).
    pub speed: f64,
    /// Fraction of candidates explored before committing (0.5 … 1.0).
    pub diligence: f64,
    /// Standard deviation of mental-comparison noise.
    pub judgment_noise: f64,
    /// Personal PRNG seed for within-task randomness.
    pub seed: u64,
}

impl SimulatedUser {
    /// Display name matching the paper's figures (`U1`…`U8`).
    pub fn name(&self) -> String {
        format!("U{}", self.id + 1)
    }

    /// A fresh PRNG for one task execution, derived from the user seed and
    /// a task tag so re-running a single task is deterministic.
    pub fn task_rng(&self, task_tag: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ task_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Builds the paper's roster: 8 users, U1-U4 in group 0, U5-U8 in group 1.
pub fn roster(seed: u64) -> Vec<SimulatedUser> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..8)
        .map(|id| SimulatedUser {
            id,
            group: if id < 4 { 0 } else { 1 },
            speed: rng.random_range(0.75..1.35),
            diligence: rng.random_range(0.5..1.0),
            judgment_noise: rng.random_range(0.02..0.12),
            seed: rng.random_range(0..u64::MAX),
        })
        .collect()
}

/// Draws one sample of zero-mean comparison noise with standard deviation
/// `sd` (sum of uniforms ≈ normal; exactness is irrelevant here).
pub fn judgment_jitter(rng: &mut StdRng, sd: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum();
    (sum - 6.0) * sd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_shape() {
        let users = roster(2016);
        assert_eq!(users.len(), 8);
        assert!(users[..4].iter().all(|u| u.group == 0));
        assert!(users[4..].iter().all(|u| u.group == 1));
        assert_eq!(users[0].name(), "U1");
        assert_eq!(users[7].name(), "U8");
        for u in &users {
            assert!((0.75..1.35).contains(&u.speed));
            assert!((0.5..1.0).contains(&u.diligence));
        }
    }

    #[test]
    fn roster_deterministic_and_seed_sensitive() {
        let a = roster(1);
        let b = roster(1);
        let c = roster(2);
        assert_eq!(a[3].seed, b[3].seed);
        assert_ne!(a[3].seed, c[3].seed);
    }

    #[test]
    fn jitter_centered() {
        let users = roster(5);
        let mut rng = users[0].task_rng(9);
        let samples: Vec<f64> = (0..2000).map(|_| judgment_jitter(&mut rng, 0.1)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        let sd = (samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        assert!((sd - 0.1).abs() < 0.02, "sd {sd}");
    }
}
