//! Robustness analysis of the simulated study's conclusions.
//!
//! A simulated user study is only as good as its calibration, so we test
//! whether the paper-level conclusions survive perturbation of everything
//! we calibrated: each operation cost halved and doubled (one at a time and
//! jointly) and different simulated-user populations (different seeds). The
//! conclusions checked are the qualitative ones the reproduction claims:
//!
//! 1. TPFacet is several times faster on Tasks 1-2 and at least at time
//!    parity on Task 3 (where the paper itself reports only a marginal
//!    time effect, p = 0.108),
//! 2. TPFacet's classifier F1 is no worse than Solr's,
//! 3. TPFacet's Task-3 retrieval error is lower than Solr's.

use crate::cost::CostModel;

/// A named perturbation of the cost model.
type Perturbation = (String, Box<dyn Fn(&CostModel) -> CostModel>);
use crate::study::{run_study, Interface, StudyConfig};
use crate::tasks::TaskId;

/// Outcome of one perturbed study run.
#[derive(Debug, Clone)]
pub struct SensitivityOutcome {
    /// Human-readable description of the perturbation.
    pub label: String,
    /// Solr/TPFacet time ratio per task (classifier, pair, alt-condition).
    pub time_ratios: [f64; 3],
    /// Conclusion 1: Tasks 1-2 are > 1.5x faster and Task 3 is at least at
    /// time parity (> 0.9x) — matching the paper's strong/weak split.
    pub faster_everywhere: bool,
    /// Conclusion 2: TPFacet F1 ≥ Solr F1 − 0.05.
    pub f1_no_worse: bool,
    /// Conclusion 3: TPFacet error < Solr error.
    pub error_lower: bool,
}

impl SensitivityOutcome {
    /// All three conclusions hold.
    pub fn holds(&self) -> bool {
        self.faster_everywhere && self.f1_no_worse && self.error_lower
    }
}

/// The perturbations applied: `(label, cost-model transformer)`.
fn perturbations() -> Vec<Perturbation> {
    let mut out: Vec<Perturbation> = Vec::new();
    out.push(("baseline".into(), Box::new(|c: &CostModel| c.clone())));
    type FieldAccess = fn(&mut CostModel) -> &mut f64;
    let fields: [(&str, FieldAccess); 7] = [
        ("facet_click", |c| &mut c.facet_click),
        ("digest_scan_attr", |c| &mut c.digest_scan_attr),
        ("digest_compare", |c| &mut c.digest_compare),
        ("cad_build", |c| &mut c.cad_build),
        ("iunit_inspect", |c| &mut c.iunit_inspect),
        ("cad_click", |c| &mut c.cad_click),
        ("decision", |c| &mut c.decision),
    ];
    for (name, accessor) in fields {
        for scale in [0.5f64, 2.0] {
            out.push((
                format!("{name} x{scale}"),
                Box::new(move |c: &CostModel| {
                    let mut c = c.clone();
                    *accessor(&mut c) *= scale;
                    c
                }),
            ));
        }
    }
    out.push((
        "all costs x2".into(),
        Box::new(|c: &CostModel| {
            let mut c = c.clone();
            c.facet_click *= 2.0;
            c.digest_scan_attr *= 2.0;
            c.digest_compare *= 2.0;
            c.cad_build *= 2.0;
            c.iunit_inspect *= 2.0;
            c.cad_click *= 2.0;
            c.decision *= 2.0;
            c
        }),
    ));
    out
}

/// Runs the study under every perturbation plus alternative user
/// populations (`extra_seeds`), returning one outcome per run.
///
/// `rows` sizes the Mushroom dataset (use a few thousand for speed; the
/// planted structure is stable well below the full 8,124).
pub fn run_sensitivity(rows: usize, extra_seeds: &[u64]) -> Vec<SensitivityOutcome> {
    let mut outcomes = Vec::new();
    for (label, transform) in perturbations() {
        let base = StudyConfig {
            rows,
            ..StudyConfig::default()
        };
        let config = StudyConfig {
            costs: transform(&base.costs),
            ..base
        };
        outcomes.push(evaluate(&label, &config));
    }
    for &seed in extra_seeds {
        let config = StudyConfig {
            seed,
            rows,
            ..StudyConfig::default()
        };
        outcomes.push(evaluate(&format!("user population seed {seed}"), &config));
    }
    outcomes
}

fn evaluate(label: &str, config: &StudyConfig) -> SensitivityOutcome {
    let report = run_study(config);
    let ratio = |task: TaskId| {
        report.mean(task, Interface::Solr, true)
            / report.mean(task, Interface::TpFacet, true).max(1e-9)
    };
    let time_ratios = [
        ratio(TaskId::Classifier),
        ratio(TaskId::SimilarPair),
        ratio(TaskId::AltCondition),
    ];
    let f1_solr = report.mean(TaskId::Classifier, Interface::Solr, false);
    let f1_tp = report.mean(TaskId::Classifier, Interface::TpFacet, false);
    let err_solr = report.mean(TaskId::AltCondition, Interface::Solr, false);
    let err_tp = report.mean(TaskId::AltCondition, Interface::TpFacet, false);
    SensitivityOutcome {
        label: label.to_owned(),
        time_ratios,
        faster_everywhere: time_ratios[0] > 1.5
            && time_ratios[1] > 1.5
            && time_ratios[2] > 0.9,
        f1_no_worse: f1_tp >= f1_solr - 0.05,
        error_lower: err_tp < err_solr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_robust_to_cost_calibration() {
        // Small dataset for speed; every cost perturbation must preserve
        // the qualitative conclusions.
        let outcomes = run_sensitivity(1_500, &[]);
        assert!(outcomes.len() >= 15);
        let holding = outcomes.iter().filter(|o| o.holds()).count();
        assert!(
            holding == outcomes.len(),
            "conclusions broke under: {:?}",
            outcomes
                .iter()
                .filter(|o| !o.holds())
                .map(|o| (&o.label, o.time_ratios))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn conclusions_robust_to_user_population() {
        let outcomes = run_sensitivity(1_500, &[7, 99, 12345]);
        let seeded: Vec<&SensitivityOutcome> = outcomes
            .iter()
            .filter(|o| o.label.starts_with("user population"))
            .collect();
        assert_eq!(seeded.len(), 3);
        for o in seeded {
            assert!(o.holds(), "{}: {:?}", o.label, o.time_ratios);
        }
    }
}
