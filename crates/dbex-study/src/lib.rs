//! # dbex-study
//!
//! Simulated reproduction of the paper's user study (Section 6.2).
//!
//! The original study put eight graduate students in front of two
//! interfaces — Apache Solr's faceted navigation and TPFacet (faceted
//! navigation + CAD View) — and measured task completion time and response
//! quality on three exploratory tasks over the Mushroom dataset:
//!
//! 1. **Simple Classifier** (Figures 2-3) — build a ≤2-value classifier for
//!    a target class, scored by F1.
//! 2. **Most Similar Value Pair** (Figures 4-5) — among four given values
//!    of an attribute, find the two with the most similar data profiles.
//! 3. **Alternative Search Condition** (Figures 6-7) — find a different
//!    ≤2-value selection reproducing a given selection's result set.
//!
//! We cannot rerun humans, so each user is a *policy* that only consumes
//! information its interface actually exposes (facet digests for Solr;
//! digests + CAD Views for TPFacet), pays per-operation time costs from a
//! calibrated [`cost::CostModel`], and carries per-user speed / diligence /
//! judgment-noise parameters. Group assignment, matched task pairs (each
//! group does task A on one interface and task B on the other), and the
//! linear mixed-model analysis (χ² likelihood-ratio tests with user as
//! random effect) all follow the paper's protocol.

pub mod cost;
pub mod replicate;
pub mod sensitivity;
pub mod study;
pub mod tasks;
pub mod user;

pub use cost::{CostModel, Stopwatch};
pub use replicate::{render_replicated, run_replicated, ReplicatedSummary};
pub use sensitivity::{run_sensitivity, SensitivityOutcome};
pub use study::{run_study, Interface, StudyConfig, StudyReport, TaskAnalysis, TaskObservation};
pub use tasks::TaskId;
pub use user::{roster, SimulatedUser};
