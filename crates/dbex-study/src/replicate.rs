//! Replicated study runs: variance across simulated populations.
//!
//! The paper ran one cohort of eight humans; a simulation can rerun the
//! whole protocol under many independently-drawn user populations and
//! datasets and report means with standard deviations — the error bars the
//! original figures could not have.

use crate::study::{run_study, Interface, StudyConfig};
use crate::tasks::TaskId;

/// Aggregated result of one `(task, interface)` cell across replicates.
#[derive(Debug, Clone)]
pub struct ReplicatedSummary {
    /// Which task.
    pub task: TaskId,
    /// Which interface.
    pub interface: Interface,
    /// Mean of the per-replicate mean quality.
    pub quality_mean: f64,
    /// Standard deviation of the per-replicate mean quality.
    pub quality_sd: f64,
    /// Mean of the per-replicate mean minutes.
    pub minutes_mean: f64,
    /// Standard deviation of the per-replicate mean minutes.
    pub minutes_sd: f64,
    /// Number of replicates.
    pub reps: usize,
}

/// Runs `reps` independent replications of the full study (seeds
/// `base.seed`, `base.seed+1`, ...) and aggregates each `(task,
/// interface)` cell.
pub fn run_replicated(base: &StudyConfig, reps: usize) -> Vec<ReplicatedSummary> {
    assert!(reps > 0, "at least one replicate");
    let tasks = [TaskId::Classifier, TaskId::SimilarPair, TaskId::AltCondition];
    let interfaces = [Interface::Solr, Interface::TpFacet];

    // per (task, interface): collected per-replicate means
    let mut quality: Vec<Vec<f64>> = (0..6).map(|_| Vec::with_capacity(reps)).collect();
    let mut minutes: Vec<Vec<f64>> = (0..6).map(|_| Vec::with_capacity(reps)).collect();
    for r in 0..reps {
        let config = StudyConfig {
            seed: base.seed.wrapping_add(r as u64),
            rows: base.rows,
            costs: base.costs.clone(),
        };
        let report = run_study(&config);
        for (ti, &task) in tasks.iter().enumerate() {
            for (ii, &interface) in interfaces.iter().enumerate() {
                let cell = ti * 2 + ii;
                quality[cell].push(report.mean(task, interface, false));
                minutes[cell].push(report.mean(task, interface, true));
            }
        }
    }

    let stats = |xs: &[f64]| -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    };

    let mut out = Vec::with_capacity(6);
    for (ti, &task) in tasks.iter().enumerate() {
        for (ii, &interface) in interfaces.iter().enumerate() {
            let cell = ti * 2 + ii;
            let (quality_mean, quality_sd) = stats(&quality[cell]);
            let (minutes_mean, minutes_sd) = stats(&minutes[cell]);
            out.push(ReplicatedSummary {
                task,
                interface,
                quality_mean,
                quality_sd,
                minutes_mean,
                minutes_sd,
                reps,
            });
        }
    }
    out
}

/// Renders the replicated summary as an aligned table.
pub fn render_replicated(summaries: &[ReplicatedSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>8}  {:>16}  {:>16}\n",
        "task", "iface", "quality (±sd)", "minutes (±sd)"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<36} {:>8}  {:>8.2} ±{:>5.2}  {:>8.1} ±{:>5.1}\n",
            s.task.name(),
            s.interface.name(),
            s.quality_mean,
            s.quality_sd,
            s.minutes_mean,
            s.minutes_sd
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_aggregates_and_preserves_conclusions() {
        let base = StudyConfig {
            rows: 1_200,
            ..StudyConfig::default()
        };
        let summaries = run_replicated(&base, 3);
        assert_eq!(summaries.len(), 6);
        for s in &summaries {
            assert_eq!(s.reps, 3);
            assert!(s.minutes_mean > 0.0);
            assert!(s.minutes_sd.is_finite());
        }
        // TPFacet faster on tasks 1-2 in replicated means too.
        let get = |task: TaskId, iface: Interface| {
            summaries
                .iter()
                .find(|s| s.task == task && s.interface == iface)
                .expect("cell present")
        };
        for task in [TaskId::Classifier, TaskId::SimilarPair] {
            assert!(
                get(task, Interface::Solr).minutes_mean
                    > 1.5 * get(task, Interface::TpFacet).minutes_mean
            );
        }
        let text = render_replicated(&summaries);
        assert!(text.contains("Simple Classifier"));
        assert!(text.contains("±"));
    }
}
