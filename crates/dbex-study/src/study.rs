//! Study harness: protocol, execution, and mixed-model analysis.
//!
//! Follows the paper's protocol (Section 6.2): eight users in two groups,
//! three matched task pairs; for each pair, group 1 does task A with
//! TPFacet and task B with Solr, group 2 the reverse. Each task's quality
//! and time are analyzed with a linear mixed model (interface as fixed
//! effect, user as random effect) and a likelihood-ratio χ² test.

use crate::cost::CostModel;
use crate::tasks::alt_condition::AltConditionTask;
use crate::tasks::classifier::ClassifierTask;
use crate::tasks::similar_pair::SimilarPairTask;
use crate::tasks::{TaskId, TaskOutcome};
use crate::user::roster;
use dbex_data::MushroomGenerator;
use dbex_stats::mixed::{fit_lmm, likelihood_ratio_test, LrtResult};
use dbex_table::Table;

/// The two interfaces under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// Apache Solr-style faceted navigation (baseline).
    Solr,
    /// TPFacet: faceted navigation + CAD View.
    TpFacet,
}

impl Interface {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Interface::Solr => "Solr",
            Interface::TpFacet => "TPFacet",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed (users, datasets, and judgments all derive from it).
    pub seed: u64,
    /// Mushroom dataset rows (the paper's dataset has 8,124).
    pub rows: usize,
    /// Interface-operation cost model.
    pub costs: CostModel,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2016,
            rows: dbex_data::mushroom::MUSHROOM_ROWS,
            costs: CostModel::default(),
        }
    }
}

/// One measured task execution.
#[derive(Debug, Clone)]
pub struct TaskObservation {
    /// User display name (`U1`…`U8`).
    pub user: String,
    /// User index (0-based).
    pub user_idx: usize,
    /// Interface used.
    pub interface: Interface,
    /// Which task.
    pub task: TaskId,
    /// Which matched instance (`'A'` or `'B'`).
    pub instance: char,
    /// Task-specific quality (F1 / rank / retrieval error).
    pub quality: f64,
    /// Completion time in minutes.
    pub minutes: f64,
}

/// Mixed-model analysis of one task.
#[derive(Debug, Clone)]
pub struct TaskAnalysis {
    /// Which task.
    pub task: TaskId,
    /// Name of the quality metric.
    pub metric: &'static str,
    /// LRT for the interface effect on quality.
    pub quality_lrt: LrtResult,
    /// TPFacet effect on quality: (estimate, standard error).
    pub quality_effect: (f64, f64),
    /// LRT for the interface effect on time.
    pub time_lrt: LrtResult,
    /// TPFacet effect on minutes: (estimate, standard error).
    pub time_effect: (f64, f64),
}

/// Complete study output.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// All 48 observations (8 users × 3 tasks × 2 interfaces).
    pub observations: Vec<TaskObservation>,
    /// Per-task mixed-model analyses.
    pub analyses: Vec<TaskAnalysis>,
}

/// Runs the full study and analysis.
pub fn run_study(config: &StudyConfig) -> StudyReport {
    let table = MushroomGenerator::new(config.seed).generate(config.rows);
    let users = roster(config.seed);
    let mut observations = Vec::new();

    // Matched task pairs (A, B) per task type.
    let classifier_a = ClassifierTask {
        class_attr: "Bruises".into(),
        target: "true".into(),
    };
    let classifier_b = ClassifierTask {
        class_attr: "GillSize".into(),
        target: "broad".into(),
    };
    let pair_a = SimilarPairTask {
        attr: "GillColor".into(),
        values: [
            "buff".into(),
            "white".into(),
            "brown".into(),
            "green".into(),
        ],
    };
    let pair_b = SimilarPairTask {
        attr: "CapColor".into(),
        values: [
            "red".into(),
            "pink".into(),
            "gray".into(),
            "yellow".into(),
        ],
    };
    let alt_a = AltConditionTask {
        given: vec![
            ("StalkShape".into(), "enlarging".into()),
            ("SporePrintColor".into(), "chocolate".into()),
        ],
    };
    let alt_b = AltConditionTask {
        given: vec![("StalkColorAboveRing".into(), "gray".into())],
    };

    for user in &users {
        // Group 0: A on TPFacet, B on Solr. Group 1: reversed.
        let (tp_instance, solr_instance) = if user.group == 0 { ('A', 'B') } else { ('B', 'A') };
        let run = |task: TaskId,
                   interface: Interface,
                   instance: char,
                   observations: &mut Vec<TaskObservation>,
                   outcome: TaskOutcome| {
            observations.push(TaskObservation {
                user: user.name(),
                user_idx: user.id,
                interface,
                task,
                instance,
                quality: outcome.quality,
                minutes: outcome.minutes,
            });
        };

        // Task 1.
        let (a, b) = (&classifier_a, &classifier_b);
        let (tp_task, solr_task) = if user.group == 0 { (a, b) } else { (b, a) };
        run(
            TaskId::Classifier,
            Interface::TpFacet,
            tp_instance,
            &mut observations,
            tp_task.run_tpfacet(&table, &config.costs, user),
        );
        run(
            TaskId::Classifier,
            Interface::Solr,
            solr_instance,
            &mut observations,
            solr_task.run_solr(&table, &config.costs, user),
        );

        // Task 2.
        let (a, b) = (&pair_a, &pair_b);
        let (tp_task, solr_task) = if user.group == 0 { (a, b) } else { (b, a) };
        run(
            TaskId::SimilarPair,
            Interface::TpFacet,
            tp_instance,
            &mut observations,
            tp_task.run_tpfacet(&table, &config.costs, user),
        );
        run(
            TaskId::SimilarPair,
            Interface::Solr,
            solr_instance,
            &mut observations,
            solr_task.run_solr(&table, &config.costs, user),
        );

        // Task 3.
        let (a, b) = (&alt_a, &alt_b);
        let (tp_task, solr_task) = if user.group == 0 { (a, b) } else { (b, a) };
        run(
            TaskId::AltCondition,
            Interface::TpFacet,
            tp_instance,
            &mut observations,
            tp_task.run_tpfacet(&table, &config.costs, user),
        );
        run(
            TaskId::AltCondition,
            Interface::Solr,
            solr_instance,
            &mut observations,
            solr_task.run_solr(&table, &config.costs, user),
        );
    }

    let analyses = [
        (TaskId::Classifier, "F1 score"),
        (TaskId::SimilarPair, "similar pair rank"),
        (TaskId::AltCondition, "retrieval error"),
    ]
    .iter()
    .map(|&(task, metric)| analyze(task, metric, &observations))
    .collect();

    StudyReport {
        observations,
        analyses,
    }
}

/// Fits the paper's mixed model (`y ~ interface + (1 | user)`) for one
/// task's quality and time.
fn analyze(task: TaskId, metric: &'static str, observations: &[TaskObservation]) -> TaskAnalysis {
    let obs: Vec<&TaskObservation> = observations.iter().filter(|o| o.task == task).collect();
    let x: Vec<f64> = obs
        .iter()
        .map(|o| if o.interface == Interface::TpFacet { 1.0 } else { 0.0 })
        .collect();
    let groups: Vec<usize> = obs.iter().map(|o| o.user_idx).collect();

    let quality: Vec<f64> = obs.iter().map(|o| o.quality).collect();
    let q_full = fit_lmm(&quality, std::slice::from_ref(&x), &groups);
    let q_null = fit_lmm(&quality, &[], &groups);
    let quality_lrt = likelihood_ratio_test(&q_full, &q_null);
    let quality_effect = (q_full.beta[1], q_full.se[1]);

    let minutes: Vec<f64> = obs.iter().map(|o| o.minutes).collect();
    let t_full = fit_lmm(&minutes, &[x], &groups);
    let t_null = fit_lmm(&minutes, &[], &groups);
    let time_lrt = likelihood_ratio_test(&t_full, &t_null);
    let time_effect = (t_full.beta[1], t_full.se[1]);

    TaskAnalysis {
        task,
        metric,
        quality_lrt,
        quality_effect,
        time_lrt,
        time_effect,
    }
}

impl StudyReport {
    /// Observations for one task and interface, ordered `U1..U8`.
    pub fn series(&self, task: TaskId, interface: Interface) -> Vec<&TaskObservation> {
        let mut v: Vec<&TaskObservation> = self
            .observations
            .iter()
            .filter(|o| o.task == task && o.interface == interface)
            .collect();
        v.sort_by_key(|o| o.user_idx);
        v
    }

    /// Mean of a per-user series.
    pub fn mean(&self, task: TaskId, interface: Interface, time: bool) -> f64 {
        let s = self.series(task, interface);
        let sum: f64 = s
            .iter()
            .map(|o| if time { o.minutes } else { o.quality })
            .sum();
        sum / s.len().max(1) as f64
    }

    /// Exports all observations as CSV (for external plotting of
    /// Figures 2-7).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("user,task,interface,instance,quality,minutes\n");
        for o in &self.observations {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                o.user,
                o.task.name().replace(',', ";"),
                o.interface.name(),
                o.instance,
                o.quality,
                o.minutes
            ));
        }
        out
    }

    /// Renders the per-user figures and statistics as text (Figures 2-7
    /// plus the §6.2 statistical sentences).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let figures = [
            (TaskId::Classifier, "Figure 2: F1 score", "Figure 3: time (min)"),
            (TaskId::SimilarPair, "Figure 4: similar pair rank", "Figure 5: time (min)"),
            (TaskId::AltCondition, "Figure 6: retrieval error", "Figure 7: time (min)"),
        ];
        for (task, quality_title, time_title) in figures {
            out.push_str(&format!("== {} ==\n", task.name()));
            for (title, time) in [(quality_title, false), (time_title, true)] {
                out.push_str(&format!("{title}\n"));
                out.push_str("  user:    ");
                for o in self.series(task, Interface::Solr) {
                    out.push_str(&format!("{:>7}", o.user));
                }
                out.push('\n');
                for iface in [Interface::Solr, Interface::TpFacet] {
                    out.push_str(&format!("  {:<8}", iface.name()));
                    for o in self.series(task, iface) {
                        let v = if time { o.minutes } else { o.quality };
                        out.push_str(&format!("{v:>7.2}"));
                    }
                    out.push('\n');
                }
            }
            if let Some(a) = self.analyses.iter().find(|a| a.task == task) {
                out.push_str(&format!(
                    "  {}: chi2(1)={:.2}, p={:.4}; TPFacet effect {:+.3} ± {:.3}\n",
                    a.metric, a.quality_lrt.chi2, a.quality_lrt.p_value,
                    a.quality_effect.0, a.quality_effect.1
                ));
                out.push_str(&format!(
                    "  time: chi2(1)={:.2}, p={:.4}; TPFacet effect {:+.2} ± {:.2} minutes\n",
                    a.time_lrt.chi2, a.time_lrt.p_value, a.time_effect.0, a.time_effect.1
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Convenience: the study's Mushroom table for external inspection.
pub fn study_table(config: &StudyConfig) -> Table {
    MushroomGenerator::new(config.seed).generate(config.rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StudyConfig {
        StudyConfig {
            rows: 3_000,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn full_protocol_shape() {
        let report = run_study(&small_config());
        assert_eq!(report.observations.len(), 48);
        for task in [TaskId::Classifier, TaskId::SimilarPair, TaskId::AltCondition] {
            assert_eq!(report.series(task, Interface::Solr).len(), 8);
            assert_eq!(report.series(task, Interface::TpFacet).len(), 8);
        }
        assert_eq!(report.analyses.len(), 3);
        // Each user did each task once per interface with complementary
        // instances.
        for o in &report.observations {
            assert!(o.instance == 'A' || o.instance == 'B');
        }
    }

    #[test]
    fn headline_results_match_paper_direction() {
        let report = run_study(&small_config());
        // Time: TPFacet faster on every task; strongly so on tasks 1-2,
        // more modestly on task 3 (the paper reports 1.5-2x there with
        // p = 0.108).
        for (task, ratio) in [
            (TaskId::Classifier, 1.5),
            (TaskId::SimilarPair, 1.5),
            (TaskId::AltCondition, 1.15),
        ] {
            let solr = report.mean(task, Interface::Solr, true);
            let tp = report.mean(task, Interface::TpFacet, true);
            assert!(
                solr > ratio * tp,
                "{}: Solr {solr:.1} min vs TPFacet {tp:.1} min",
                task.name()
            );
        }
        // Quality: F1 higher, rank/error no worse.
        let f1_solr = report.mean(TaskId::Classifier, Interface::Solr, false);
        let f1_tp = report.mean(TaskId::Classifier, Interface::TpFacet, false);
        assert!(f1_tp >= f1_solr - 0.05, "F1 {f1_tp:.2} vs {f1_solr:.2}");
        let err_solr = report.mean(TaskId::AltCondition, Interface::Solr, false);
        let err_tp = report.mean(TaskId::AltCondition, Interface::TpFacet, false);
        assert!(err_tp <= err_solr + 0.05, "err {err_tp:.2} vs {err_solr:.2}");
    }

    #[test]
    fn time_effects_statistically_significant() {
        let report = run_study(&small_config());
        for a in &report.analyses {
            // The paper finds strong significance on tasks 1-2 (p = 0.003,
            // p = 0.0005) and a marginal effect on task 3 (p = 0.108); we
            // hold task 3 to that weaker bar.
            let bar = if a.task == TaskId::AltCondition { 0.2 } else { 0.05 };
            assert!(
                a.time_lrt.p_value < bar,
                "{}: time p = {}",
                a.task.name(),
                a.time_lrt.p_value
            );
            assert!(a.time_effect.0 < 0.0, "TPFacet should reduce time");
        }
    }

    #[test]
    fn render_mentions_every_figure() {
        let report = run_study(&small_config());
        let text = report.render();
        for fig in ["Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7"] {
            assert!(text.contains(fig), "missing {fig}:\n{text}");
        }
        assert!(text.contains("chi2(1)="));
    }

    #[test]
    fn csv_export_covers_all_observations() {
        let report = run_study(&small_config());
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 49); // header + 48 observations
        assert!(csv.starts_with("user,task,interface,instance,quality,minutes"));
        assert!(csv.contains("U1,Simple Classifier,TPFacet,"));
        assert!(csv.contains("U8,"));
    }

    #[test]
    fn deterministic_report() {
        let a = run_study(&small_config());
        let b = run_study(&small_config());
        assert_eq!(a.render(), b.render());
    }
}
