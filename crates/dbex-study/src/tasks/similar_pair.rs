//! Task 2 — Most Similar Attribute Value Pair (Section 6.2.2, Figures 4-5).
//!
//! Given four values of one attribute, find the two whose data profiles are
//! most similar. Ground truth ranks all six pairs by the digest cosine
//! similarity of their result sets (the metric the paper gave its users);
//! quality is the rank of the user's chosen pair (1 = best, 6 = worst).

use crate::cost::{CostModel, Stopwatch};
use crate::tasks::{digest_width, TaskOutcome};
use crate::user::{judgment_jitter, SimulatedUser};
use dbex_core::{build_cad_view, CadRequest};
use dbex_facet::{digest_similarity, FacetState, FacetedEngine};
use dbex_table::Table;

/// Task 2 specification.
#[derive(Debug, Clone)]
pub struct SimilarPairTask {
    /// The attribute whose values are compared (e.g. `GillColor`).
    pub attr: String,
    /// The four candidate values.
    pub values: [String; 4],
}

impl SimilarPairTask {
    /// Ground truth: all six pairs ranked by digest cosine similarity,
    /// most similar first. Returns `(i, j, similarity)` triples.
    pub fn ground_truth(&self, table: &Table) -> Vec<(usize, usize, f64)> {
        let engine = FacetedEngine::new(table, 6);
        let attr = table.schema().index_of(&self.attr).expect("attr exists");
        let digests: Vec<_> = self
            .values
            .iter()
            .map(|v| {
                let mut state = FacetState::default();
                state.selections.insert(attr, vec![v.clone()]);
                engine.digest_of(&engine.results_for(&state).expect("valid value"))
            })
            .collect();
        let mut pairs = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push((i, j, digest_similarity(&digests[i], &digests[j])));
            }
        }
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        pairs
    }

    /// 1-based rank of pair `(i, j)` in the ground truth ordering.
    pub fn rank_of(&self, table: &Table, pair: (usize, usize)) -> usize {
        let normalized = (pair.0.min(pair.1), pair.0.max(pair.1));
        self.ground_truth(table)
            .iter()
            .position(|&(i, j, _)| (i, j) == normalized)
            .map(|p| p + 1)
            .expect("pair is among the six")
    }

    /// Solr policy: select each value in turn, study its digest, then
    /// mentally compare the six digest pairs with the provided metric.
    pub fn run_solr(&self, table: &Table, costs: &CostModel, user: &SimulatedUser) -> TaskOutcome {
        let engine = FacetedEngine::new(table, 6);
        let mut rng = user.task_rng(0x51AC_0001);
        let mut watch = Stopwatch::new(user.speed);
        let attr = table.schema().index_of(&self.attr).expect("attr exists");

        // Study each value's digest. Diligence bounds how carefully each
        // digest is read; skimming inflates comparison noise.
        let width = digest_width(&engine);
        let read_attrs = ((user.diligence * width as f64).ceil() as usize).clamp(1, width);
        let skim_penalty = 0.12 * (1.0 - read_attrs as f64 / width as f64);
        let mut digests = Vec::with_capacity(4);
        for v in &self.values {
            watch.charge_n(costs.facet_click, 2); // select + later deselect
            let mut state = FacetState::default();
            state.selections.insert(attr, vec![v.clone()]);
            digests.push(engine.digest_of(&engine.results_for(&state).expect("valid value")));
            watch.charge_n(costs.digest_scan_attr, read_attrs);
        }

        // Compare the six pairs by eye, with noise.
        let mut best: Option<((usize, usize), f64)> = None;
        for i in 0..4 {
            for j in (i + 1)..4 {
                watch.charge(costs.digest_compare);
                let perceived = digest_similarity(&digests[i], &digests[j])
                    + judgment_jitter(&mut rng, user.judgment_noise + skim_penalty);
                if best.map(|(_, q)| perceived > q).unwrap_or(true) {
                    best = Some(((i, j), perceived));
                }
            }
        }
        watch.charge(costs.decision);
        let chosen = best.expect("six pairs compared").0;
        TaskOutcome {
            quality: self.rank_of(table, chosen) as f64,
            minutes: watch.minutes(),
        }
    }

    /// TPFacet policy: build a CAD View pivoted on the attribute with the
    /// four values, click each value to reorder rows by similarity, and
    /// read off the closest pair (Algorithm 2 distances, computed by the
    /// system — no mental arithmetic).
    pub fn run_tpfacet(
        &self,
        table: &Table,
        costs: &CostModel,
        user: &SimulatedUser,
    ) -> TaskOutcome {
        let mut watch = Stopwatch::new(user.speed);
        watch.charge(costs.cad_build);
        let cad = build_cad_view(
            &table.full_view(),
            &CadRequest::new(&self.attr)
                .with_pivot_values(self.values.to_vec())
                // k = 5: Algorithm 2's integer rank distances are too
                // coarse at k = 3 to separate the six pairs reliably.
                .with_iunits(5)
                .with_max_compare_attrs(5),
        )
        .expect("CAD View over the task attribute");

        // Look over the view once (k IUnits per value), then click each
        // pivot value; the reorder shows Algorithm-2 distances with the
        // content-similarity tie-break, exactly what the interface renders.
        let total_iunits: usize = cad.rows.iter().map(|r| r.iunits.len()).sum();
        watch.charge_n(costs.iunit_inspect, total_iunits);
        let mut best: Option<((usize, usize), (f64, f64))> = None;
        for (i, v) in self.values.iter().enumerate() {
            watch.charge(costs.cad_click);
            for (label, distance) in cad.reorder_rows(v) {
                if &label == v {
                    continue;
                }
                let j = self
                    .values
                    .iter()
                    .position(|x| *x == label)
                    .expect("pivot value");
                let key = (i.min(j), i.max(j));
                let content = cad.content_similarity(v, &label).unwrap_or(0.0);
                let score = (distance, -content);
                let better = match &best {
                    Some((_, s)) => score.0 < s.0 || (score.0 == s.0 && score.1 < s.1),
                    None => true,
                };
                if better {
                    best = Some((key, score));
                }
            }
        }
        watch.charge(costs.decision);
        let chosen = best.expect("reorder produced rows").0;
        TaskOutcome {
            quality: self.rank_of(table, chosen) as f64,
            minutes: watch.minutes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::roster;
    use dbex_data::MushroomGenerator;

    fn task() -> SimilarPairTask {
        SimilarPairTask {
            attr: "GillColor".into(),
            values: [
                "buff".into(),
                "white".into(),
                "brown".into(),
                "green".into(),
            ],
        }
    }

    #[test]
    fn ground_truth_brown_white_most_similar() {
        let table = MushroomGenerator::new(2016).generate(4_000);
        let t = task();
        let gt = t.ground_truth(&table);
        // values[1] = white, values[2] = brown: the planted twin pair.
        assert_eq!((gt[0].0, gt[0].1), (1, 2), "ground truth: {gt:?}");
        assert_eq!(t.rank_of(&table, (2, 1)), 1);
    }

    #[test]
    fn both_policies_find_good_pairs_tpfacet_faster() {
        let table = MushroomGenerator::new(2016).generate(4_000);
        let t = task();
        let costs = CostModel::default();
        let users = roster(7);
        let mut solr_rank = 0.0;
        let mut tp_rank = 0.0;
        let mut solr_min = 0.0;
        let mut tp_min = 0.0;
        for user in &users {
            let s = t.run_solr(&table, &costs, user);
            let p = t.run_tpfacet(&table, &costs, user);
            solr_rank += s.quality;
            tp_rank += p.quality;
            solr_min += s.minutes;
            tp_min += p.minutes;
        }
        let n = users.len() as f64;
        assert!(tp_rank / n <= 2.0, "TPFacet mean rank {}", tp_rank / n);
        // The paper found no quality difference between interfaces here.
        assert!(solr_rank / n <= 3.0, "Solr mean rank {}", solr_rank / n);
        assert!(
            solr_min / n > 3.0 * tp_min / n,
            "Solr {} vs TPFacet {} minutes",
            solr_min / n,
            tp_min / n
        );
    }

    #[test]
    fn tpfacet_is_deterministic() {
        let table = MushroomGenerator::new(2016).generate(3_000);
        let t = task();
        let costs = CostModel::default();
        let users = roster(3);
        let a = t.run_tpfacet(&table, &costs, &users[2]);
        let b = t.run_tpfacet(&table, &costs, &users[2]);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.minutes, b.minutes);
    }
}
