//! The three study tasks and shared policy machinery.
//!
//! Every policy is *honest*: it consumes only information its interface
//! exposes (digest counts for Solr; digests plus CAD View contents for
//! TPFacet), pays for every operation through the [`crate::cost::Stopwatch`], and makes
//! noisy mental comparisons via the user's judgment jitter. Ground-truth
//! quality is computed afterwards from the full data, exactly as the paper
//! scored its participants.

pub mod alt_condition;
pub mod classifier;
pub mod similar_pair;

use crate::cost::CostModel;
use dbex_facet::{FacetState, FacetedEngine};
use dbex_table::{Predicate, Result, Table, View};

/// Identifies one of the paper's three tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// Section 6.2.1 — Figures 2-3.
    Classifier,
    /// Section 6.2.2 — Figures 4-5.
    SimilarPair,
    /// Section 6.2.3 — Figures 6-7.
    AltCondition,
}

impl TaskId {
    /// Human-readable task name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskId::Classifier => "Simple Classifier",
            TaskId::SimilarPair => "Most Similar Attribute Value Pair",
            TaskId::AltCondition => "Alternative Search Condition",
        }
    }
}

/// Outcome of one (user, interface, task) execution.
#[derive(Debug, Clone, Copy)]
pub struct TaskOutcome {
    /// Task-specific quality (F1, rank, or retrieval error).
    pub quality: f64,
    /// Completion time in minutes.
    pub minutes: f64,
}

/// A candidate selection: conjunction of `(attribute index, value label)`
/// facet picks (at most two, per the task rules).
pub type Selection = Vec<(usize, String)>;

/// Builds a [`FacetState`] from a selection.
pub(crate) fn state_of(selection: &Selection) -> FacetState {
    let mut state = FacetState::default();
    for (attr, label) in selection {
        state
            .selections
            .entry(*attr)
            .or_default()
            .push(label.clone());
    }
    state
}

/// The result view of a selection (read-only peek, no engine mutation).
pub(crate) fn view_of<'a>(
    engine: &FacetedEngine<'a>,
    selection: &Selection,
) -> Result<View<'a>> {
    engine.results_for(&state_of(selection))
}

/// Exact F1 of "rows matching `selection`" as a classifier for
/// `class_attr = target` (ground-truth scoring for Task 1).
pub(crate) fn selection_f1(
    table: &Table,
    engine: &FacetedEngine<'_>,
    selection: &Selection,
    class_attr: usize,
    target: &str,
) -> f64 {
    let predicted = view_of(engine, selection).expect("valid selection");
    let class_name = &table.schema().field(class_attr).name;
    let actual = table
        .filter(&Predicate::eq(class_name.clone(), target))
        .expect("class attribute exists");
    let predicted_set: std::collections::HashSet<u32> =
        predicted.row_ids().iter().copied().collect();
    let actual_set: std::collections::HashSet<u32> = actual.row_ids().iter().copied().collect();
    let tp = predicted_set.intersection(&actual_set).count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / predicted_set.len() as f64;
    let recall = tp / actual_set.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Relative symmetric-difference retrieval error for Task 3:
/// `(|target \ alt| + |alt \ target|) / |target|`. Zero is perfect; values
/// above 1 mean the alternative is mostly wrong.
pub(crate) fn retrieval_error(target: &View<'_>, alt: &View<'_>) -> f64 {
    let t: std::collections::HashSet<u32> = target.row_ids().iter().copied().collect();
    let a: std::collections::HashSet<u32> = alt.row_ids().iter().copied().collect();
    if t.is_empty() {
        return if a.is_empty() { 0.0 } else { a.len() as f64 };
    }
    let missing = t.difference(&a).count();
    let extra = a.difference(&t).count();
    (missing + extra) as f64 / t.len() as f64
}

/// Number of facet-able attributes scanned when a user reads a full digest.
pub(crate) fn digest_width(engine: &FacetedEngine<'_>) -> usize {
    engine.attributes().len()
}

/// Cost of one trial: clear the panel, click each value of the candidate
/// selection, glance at the relevant digest row, decide.
pub(crate) fn charge_trial(
    watch: &mut crate::cost::Stopwatch,
    costs: &CostModel,
    selection_len: usize,
) {
    watch.charge(costs.facet_click); // clear / reset
    watch.charge_n(costs.facet_click, selection_len);
    watch.charge(costs.digest_scan_attr);
    watch.charge(costs.decision);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Class", DataType::Categorical),
            Field::new("X", DataType::Categorical),
        ])
        .unwrap();
        for i in 0..20 {
            let class = if i < 10 { "pos" } else { "neg" };
            let x = if !(8..18).contains(&i) { "a" } else { "b" };
            b.push_row(vec![class.into(), x.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn selection_f1_matches_hand_computation() {
        let t = table();
        let engine = FacetedEngine::new(&t, 4);
        // X=a: rows 0-7 (pos) and 18-19 (neg) → tp=8, fp=2, fn=2.
        let sel: Selection = vec![(1, "a".into())];
        let f1 = selection_f1(&t, &engine, &sel, 0, "pos");
        let expected = 2.0 * 0.8 * 0.8 / (0.8 + 0.8);
        assert!((f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn retrieval_error_zero_for_identity() {
        let t = table();
        let v = t.full_view();
        assert_eq!(retrieval_error(&v, &v), 0.0);
    }

    #[test]
    fn retrieval_error_counts_both_sides() {
        let t = table();
        let a = View::from_rows(&t, vec![0, 1, 2, 3]);
        let b = View::from_rows(&t, vec![2, 3, 4, 5, 6]);
        // missing = {0,1} (2), extra = {4,5,6} (3), |target| = 4.
        assert!((retrieval_error(&a, &b) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn state_of_builds_conjunction() {
        let t = table();
        let engine = FacetedEngine::new(&t, 4);
        let sel: Selection = vec![(0, "pos".into()), (1, "a".into())];
        let v = view_of(&engine, &sel).unwrap();
        assert_eq!(v.len(), 8);
    }
}
