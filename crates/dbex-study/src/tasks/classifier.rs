//! Task 1 — Simple Classifier (paper Section 6.2.1, Figures 2-3).
//!
//! "Build a classifier for binary class data ... selecting at most two
//! attribute values that maximizes the number of tuples retrieved from a
//! given target class, and minimizes the number of tuples from the other
//! class", scored by F1.

use crate::cost::{CostModel, Stopwatch};
use crate::tasks::{charge_trial, digest_width, selection_f1, state_of, Selection, TaskOutcome};
use crate::user::{judgment_jitter, SimulatedUser};
use dbex_core::{build_cad_view, CadRequest};
use dbex_facet::{FacetState, FacetedEngine};
use dbex_table::Table;
use rand::rngs::StdRng;
use rand::RngExt;

/// Task 1 specification.
#[derive(Debug, Clone)]
pub struct ClassifierTask {
    /// Binary class attribute (e.g. `Bruises`).
    pub class_attr: String,
    /// Target class value (e.g. `true`).
    pub target: String,
}

/// A scored candidate `(attribute, value)` pick.
#[derive(Debug, Clone)]
struct Candidate {
    attr: usize,
    label: String,
    perceived: f64,
}

impl ClassifierTask {
    /// Runs the task with the Solr-style baseline policy.
    ///
    /// The user selects the target class, reads the full digest, repeats
    /// for the complement, mentally ranks value candidates by the count
    /// contrast, then trial-and-errors the top combinations.
    pub fn run_solr(
        &self,
        table: &Table,
        costs: &CostModel,
        user: &SimulatedUser,
    ) -> TaskOutcome {
        let engine = FacetedEngine::new(table, 6);
        let mut rng = user.task_rng(0x7A5C_0001);
        let mut watch = Stopwatch::new(user.speed);
        let class_attr = table
            .schema()
            .index_of(&self.class_attr)
            .expect("class attribute exists");

        // Read the digest conditioned on the target class...
        let mut target_state = FacetState::default();
        target_state
            .selections
            .insert(class_attr, vec![self.target.clone()]);
        watch.charge(costs.facet_click);
        let target_digest = engine
            .digest_of(&engine.results_for(&target_state).expect("valid class value"));
        watch.charge_n(costs.digest_scan_attr, digest_width(&engine));

        // ...and on the complement (deselect + full rescan).
        watch.charge_n(costs.facet_click, 2);
        let full = engine.table().full_view();
        let full_digest = engine.digest_of(&full);
        watch.charge_n(costs.digest_scan_attr, digest_width(&engine));

        // Rank candidates by the perceived contrast between in-class and
        // out-of-class relative frequency. Diligence bounds how many
        // attributes the user actually studies.
        let n_attrs = target_digest.attributes.len();
        let studied = ((user.diligence * n_attrs as f64).ceil() as usize).clamp(1, n_attrs);
        let mut attr_order: Vec<usize> = (0..n_attrs).collect();
        shuffle(&mut attr_order, &mut rng);
        let candidates = self.rank_candidates(
            &target_digest,
            &full_digest,
            &attr_order[..studied],
            class_attr,
            user,
            &mut rng,
        );
        watch.charge_n(costs.decision, studied.min(6));

        self.run_trials(
            table, &engine, class_attr, candidates, costs, user, &mut rng, watch, 5, 1.5,
        )
    }

    /// Runs the task with the TPFacet policy.
    ///
    /// The user pivots on the class attribute and builds a CAD View; the
    /// chi-square-selected Compare Attributes and the per-class IUnit
    /// labels surface the discriminating values directly, so only a couple
    /// of trials are needed.
    pub fn run_tpfacet(
        &self,
        table: &Table,
        costs: &CostModel,
        user: &SimulatedUser,
    ) -> TaskOutcome {
        let engine = FacetedEngine::new(table, 6);
        let mut rng = user.task_rng(0x7A5C_0002);
        let mut watch = Stopwatch::new(user.speed);
        let class_attr = table
            .schema()
            .index_of(&self.class_attr)
            .expect("class attribute exists");

        watch.charge(costs.cad_build);
        let cad = build_cad_view(
            &table.full_view(),
            &CadRequest::new(&self.class_attr)
                .with_iunits(3)
                .with_max_compare_attrs(5),
        )
        .expect("CAD View over the class attribute");

        // Inspect both rows' IUnits; collect values frequent in the target
        // row and rare in the other rows.
        let total_iunits: usize = cad.rows.iter().map(|r| r.iunits.len()).sum();
        watch.charge_n(costs.iunit_inspect, total_iunits);
        let target_row = cad.row(&self.target).expect("target class row");
        let row_total: f64 = target_row
            .iunits
            .iter()
            .map(|u| u.size as f64)
            .sum::<f64>()
            .max(1.0);
        let mut candidates = Vec::new();
        for (a, &attr_index) in cad.compare_attrs.iter().enumerate() {
            // Aggregate frequencies across the row's IUnits.
            let card = target_row.iunits.first().map(|u| u.freqs[a].len()).unwrap_or(0);
            for code in 0..card {
                let in_target: f64 = target_row.iunits.iter().map(|u| u.freqs[a][code]).sum();
                let elsewhere: f64 = cad
                    .rows
                    .iter()
                    .filter(|r| r.pivot_label != self.target)
                    .flat_map(|r| r.iunits.iter())
                    .map(|u| u.freqs[a][code])
                    .sum();
                if in_target <= 0.0 {
                    continue;
                }
                // F1 proxy, exactly the quantity the task optimizes: the
                // IUnit frequency vectors expose both how much of the
                // target class the value covers (recall) and how exclusive
                // to the target row it is (precision).
                let precision = in_target / (in_target + elsewhere);
                let recall = in_target / row_total;
                let proxy = 2.0 * precision * recall / (precision + recall).max(1e-12);
                let label = engine
                    .attributes()
                    .iter()
                    .find(|(i, _)| *i == attr_index)
                    .map(|(_, codec)| codec.label(code as u32).to_owned());
                let Some(label) = label else { continue };
                let perceived = proxy + judgment_jitter(&mut rng, user.judgment_noise * 0.3);
                candidates.push(Candidate {
                    attr: attr_index,
                    label,
                    perceived,
                });
            }
        }
        candidates.sort_by(|x, y| y.perceived.total_cmp(&x.perceived));
        watch.charge(costs.decision);

        self.run_trials(
            table, &engine, class_attr, candidates, costs, user, &mut rng, watch, 4, 0.25,
        )
    }

    /// Ranks Solr candidates from two digests.
    fn rank_candidates(
        &self,
        target_digest: &dbex_facet::SummaryDigest,
        full_digest: &dbex_facet::SummaryDigest,
        studied_attrs: &[usize],
        class_attr: usize,
        user: &SimulatedUser,
        rng: &mut StdRng,
    ) -> Vec<Candidate> {
        let target_total = target_digest.total.max(1) as f64;
        let full_total = full_digest.total.max(1) as f64;
        let mut out = Vec::new();
        for &ai in studied_attrs {
            let tattr = &target_digest.attributes[ai];
            if tattr.attr_index == class_attr {
                continue;
            }
            let fattr = &full_digest.attributes[ai];
            for (code, label) in tattr.labels.iter().enumerate() {
                let in_target = tattr.counts[code] as f64;
                if in_target == 0.0 {
                    continue;
                }
                let overall = fattr.counts[code] as f64;
                let out_of_target = (overall - in_target).max(0.0);
                let p_in = in_target / target_total;
                let p_out = out_of_target / (full_total - target_total).max(1.0);
                let perceived =
                    (p_in - p_out) + judgment_jitter(rng, user.judgment_noise);
                out.push(Candidate {
                    attr: tattr.attr_index,
                    label: label.clone(),
                    perceived,
                });
            }
        }
        out.sort_by(|x, y| y.perceived.total_cmp(&x.perceived));
        out
    }

    /// Shared trial loop: try top singles plus the pair of the top two,
    /// observe F1 through the interface, keep the best observed.
    #[allow(clippy::too_many_arguments)]
    fn run_trials(
        &self,
        table: &Table,
        engine: &FacetedEngine<'_>,
        class_attr: usize,
        candidates: Vec<Candidate>,
        costs: &CostModel,
        user: &SimulatedUser,
        rng: &mut StdRng,
        mut watch: Stopwatch,
        budget: usize,
        obs_noise: f64,
    ) -> TaskOutcome {
        let mut trials: Vec<Selection> = Vec::new();
        for c in candidates.iter().take(budget.saturating_sub(2)) {
            trials.push(vec![(c.attr, c.label.clone())]);
        }
        // Combinations of the top two distinct-attribute candidates.
        if let Some(first) = candidates.first() {
            if let Some(second) = candidates.iter().find(|c| c.attr != first.attr) {
                trials.push(vec![
                    (first.attr, first.label.clone()),
                    (second.attr, second.label.clone()),
                ]);
            }
        }

        let mut best: Option<(f64, Selection)> = None;
        for trial in trials.into_iter().take(budget) {
            charge_trial(&mut watch, costs, trial.len());
            // Observed through the interface: select, read the class row of
            // the digest — exact counts, tiny reading noise.
            let observed = selection_f1(table, engine, &trial, class_attr, &self.target)
                + judgment_jitter(rng, user.judgment_noise * obs_noise);
            if best.as_ref().map(|(q, _)| observed > *q).unwrap_or(true) {
                best = Some((observed, trial));
            }
        }
        let selection = best.map(|(_, s)| s).unwrap_or_default();
        watch.charge(costs.decision);
        let quality = selection_f1(table, engine, &selection, class_attr, &self.target);
        let _ = state_of(&selection); // selection is reportable state
        TaskOutcome {
            quality,
            minutes: watch.minutes(),
        }
    }
}

fn shuffle(v: &mut [usize], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::roster;
    use dbex_data::MushroomGenerator;

    fn setup() -> (Table, CostModel, Vec<SimulatedUser>) {
        (
            MushroomGenerator::new(2016).generate(3_000),
            CostModel::default(),
            roster(7),
        )
    }

    #[test]
    fn tpfacet_beats_solr_on_average() {
        let (table, costs, users) = setup();
        let task = ClassifierTask {
            class_attr: "Bruises".into(),
            target: "true".into(),
        };
        let mut solr_f1 = 0.0;
        let mut tp_f1 = 0.0;
        let mut solr_min = 0.0;
        let mut tp_min = 0.0;
        for user in &users {
            let s = task.run_solr(&table, &costs, user);
            let t = task.run_tpfacet(&table, &costs, user);
            solr_f1 += s.quality;
            tp_f1 += t.quality;
            solr_min += s.minutes;
            tp_min += t.minutes;
        }
        let n = users.len() as f64;
        assert!(
            tp_f1 / n >= solr_f1 / n - 0.02,
            "TPFacet F1 {} vs Solr {}",
            tp_f1 / n,
            solr_f1 / n
        );
        assert!(
            solr_min / n > 2.5 * tp_min / n,
            "Solr {} min vs TPFacet {} min",
            solr_min / n,
            tp_min / n
        );
        // Both interfaces produce genuinely good classifiers on this data.
        assert!(tp_f1 / n > 0.7, "TPFacet mean F1 {}", tp_f1 / n);
    }

    #[test]
    fn deterministic_per_user() {
        let (table, costs, users) = setup();
        let task = ClassifierTask {
            class_attr: "Bruises".into(),
            target: "true".into(),
        };
        let a = task.run_solr(&table, &costs, &users[0]);
        let b = task.run_solr(&table, &costs, &users[0]);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.minutes, b.minutes);
    }
}
