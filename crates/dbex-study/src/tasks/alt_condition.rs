//! Task 3 — Alternative Search Condition (Section 6.2.3, Figures 6-7).
//!
//! Given a selection, find a *different* selection (≤2 attribute values,
//! none of the given ones) that reproduces the same result set. Quality is
//! the relative symmetric-difference retrieval error (0 = identical result
//! sets; the paper's example user error of "48 missing tuples out of 1344"
//! scores 48/1344 ≈ 0.036).

use crate::cost::{CostModel, Stopwatch};
use crate::tasks::{charge_trial, digest_width, retrieval_error, view_of, Selection, TaskOutcome};
use crate::user::{judgment_jitter, SimulatedUser};
use dbex_core::{build_cad_view, CadRequest};
use dbex_facet::{digest_similarity, FacetedEngine};
use dbex_table::{Predicate, Table, View};
use rand::rngs::StdRng;

/// Task 3 specification.
#[derive(Debug, Clone)]
pub struct AltConditionTask {
    /// The given selection: `(attribute name, value)` conjuncts.
    pub given: Vec<(String, String)>,
}

/// A scored alternative candidate.
#[derive(Debug, Clone)]
struct Candidate {
    attr: usize,
    label: String,
    perceived: f64,
}

impl AltConditionTask {
    /// The target result set defined by the given selection.
    pub fn target_view<'a>(&self, table: &'a Table) -> View<'a> {
        let conjuncts: Vec<Predicate> = self
            .given
            .iter()
            .map(|(a, v)| Predicate::eq(a.clone(), v.clone()))
            .collect();
        table.filter(&Predicate::and(conjuncts)).expect("valid given")
    }

    fn given_attr_indices(&self, table: &Table) -> Vec<usize> {
        self.given
            .iter()
            .map(|(a, _)| table.schema().index_of(a).expect("attr exists"))
            .collect()
    }

    /// Solr policy: apply the given selection, rank other attributes'
    /// values by in-target frequency (all the digest shows), then
    /// trial-and-error: apply a candidate, compare its digest against the
    /// memorized target digest, keep the best.
    pub fn run_solr(&self, table: &Table, costs: &CostModel, user: &SimulatedUser) -> TaskOutcome {
        let engine = FacetedEngine::new(table, 6);
        let mut rng = user.task_rng(0xA17C_0001);
        let mut watch = Stopwatch::new(user.speed);
        let target = self.target_view(table);
        let target_digest = engine.digest_of(&target);
        let given_attrs = self.given_attr_indices(table);

        // Apply the given selection and study the digest.
        watch.charge_n(costs.facet_click, self.given.len());
        let width = digest_width(&engine);
        let studied = ((user.diligence * width as f64).ceil() as usize).clamp(1, width);
        watch.charge_n(costs.digest_scan_attr, studied);

        // Candidates: high-recall values (count close to the result size).
        // The digest cannot show precision — that is exactly the baseline's
        // handicap.
        let mut candidates = Vec::new();
        for (scanned, attr) in target_digest.attributes.iter().enumerate() {
            if scanned >= studied {
                break;
            }
            if given_attrs.contains(&attr.attr_index) {
                continue;
            }
            for (label, count) in attr.entries().into_iter().take(3) {
                let recall = count as f64 / target_digest.total.max(1) as f64;
                if recall < 0.3 {
                    continue;
                }
                candidates.push(Candidate {
                    attr: attr.attr_index,
                    label: label.to_owned(),
                    perceived: recall + judgment_jitter(&mut rng, user.judgment_noise),
                });
            }
        }
        candidates.sort_by(|a, b| b.perceived.total_cmp(&a.perceived));

        let budget = 5 + (user.diligence * 4.0).round() as usize;
        self.run_trials(
            table, &engine, &target, &target_digest, candidates, costs, user, &mut rng, watch,
            budget, true,
        )
    }

    /// TPFacet policy: pivot the CAD View on one of the given attributes;
    /// the given value's row shows which other values co-occur with it
    /// *specifically* (frequent in its IUnits, rare in other rows'), so the
    /// candidate list is discriminative and only a few trials are needed.
    pub fn run_tpfacet(
        &self,
        table: &Table,
        costs: &CostModel,
        user: &SimulatedUser,
    ) -> TaskOutcome {
        let engine = FacetedEngine::new(table, 6);
        let mut rng = user.task_rng(0xA17C_0002);
        let mut watch = Stopwatch::new(user.speed);
        let target = self.target_view(table);
        let target_digest = engine.digest_of(&target);
        let given_attrs = self.given_attr_indices(table);

        // Build the CAD View pivoted on the first given attribute, in the
        // context of the remaining given conjuncts.
        let (pivot_name, pivot_value) = &self.given[0];
        watch.charge(costs.cad_build);
        let context: Vec<Predicate> = self.given[1..]
            .iter()
            .map(|(a, v)| Predicate::eq(a.clone(), v.clone()))
            .collect();
        let context_view = table
            .filter(&Predicate::and(context))
            .expect("valid context");
        let cad = build_cad_view(
            &context_view,
            &CadRequest::new(pivot_name)
                .with_iunits(3)
                .with_max_compare_attrs(6),
        )
        .expect("CAD View over given attribute");

        let Some(target_row) = cad.row(pivot_value) else {
            // Degenerate: pivot value missing — fall back to the digest.
            return self.run_trials(
                table,
                &engine,
                &target,
                &target_digest,
                Vec::new(),
                costs,
                user,
                &mut rng,
                watch,
                2,
                false,
            );
        };
        let total_iunits: usize = cad.rows.iter().map(|r| r.iunits.len()).sum();
        watch.charge_n(costs.iunit_inspect, total_iunits);

        // Discriminative candidates: frequent within the target row's
        // IUnits, rare elsewhere.
        let mut candidates = Vec::new();
        for (a, &attr_index) in cad.compare_attrs.iter().enumerate() {
            if given_attrs.contains(&attr_index) {
                continue;
            }
            let Some(codec) = engine
                .attributes()
                .iter()
                .find(|(i, _)| *i == attr_index)
                .map(|(_, c)| c)
            else {
                continue;
            };
            let card = target_row
                .iunits
                .first()
                .map(|u| u.freqs[a].len())
                .unwrap_or(0);
            let row_total: f64 = target_row
                .iunits
                .iter()
                .map(|u| u.size as f64)
                .sum::<f64>()
                .max(1.0);
            for code in 0..card {
                let inside: f64 = target_row.iunits.iter().map(|u| u.freqs[a][code]).sum();
                if inside <= 0.0 {
                    continue;
                }
                let outside: f64 = cad
                    .rows
                    .iter()
                    .filter(|r| r.pivot_label != *pivot_value)
                    .flat_map(|r| r.iunits.iter())
                    .map(|u| u.freqs[a][code])
                    .sum();
                let recall = inside / row_total;
                let precision_proxy = inside / (inside + outside);
                candidates.push(Candidate {
                    attr: attr_index,
                    label: codec.label(code as u32).to_owned(),
                    perceived: recall * precision_proxy
                        + judgment_jitter(&mut rng, user.judgment_noise * 0.3),
                });
            }
        }
        candidates.sort_by(|x, y| y.perceived.total_cmp(&x.perceived));

        self.run_trials(
            table, &engine, &target, &target_digest, candidates, costs, user, &mut rng, watch, 4,
            false,
        )
    }

    /// Trial loop shared by both policies: apply a candidate selection,
    /// compare the resulting digest to the (memorized) target digest, keep
    /// the best perceived match, stop early on a near-perfect one.
    #[allow(clippy::too_many_arguments)]
    fn run_trials(
        &self,
        table: &Table,
        engine: &FacetedEngine<'_>,
        target: &View<'_>,
        target_digest: &dbex_facet::SummaryDigest,
        candidates: Vec<Candidate>,
        costs: &CostModel,
        user: &SimulatedUser,
        rng: &mut StdRng,
        mut watch: Stopwatch,
        budget: usize,
        noisy_compare: bool,
    ) -> TaskOutcome {
        // Singles first, then the pairwise AND-combinations of the top
        // candidates across distinct attributes (a ≤2-value alternative may
        // need both).
        let mut trials: Vec<Selection> = Vec::new();
        let singles = (budget / 2).max(1);
        for c in candidates.iter().take(singles) {
            trials.push(vec![(c.attr, c.label.clone())]);
        }
        let top: Vec<&Candidate> = candidates.iter().take(4).collect();
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                if top[i].attr != top[j].attr {
                    trials.push(vec![
                        (top[i].attr, top[i].label.clone()),
                        (top[j].attr, top[j].label.clone()),
                    ]);
                }
            }
        }

        let mut best: Option<(f64, Selection)> = None;
        for trial in trials.into_iter().take(budget) {
            charge_trial(&mut watch, costs, trial.len());
            watch.charge(costs.digest_compare);
            let view = view_of(engine, &trial).expect("valid trial");
            let noise = if noisy_compare {
                judgment_jitter(rng, user.judgment_noise)
            } else {
                judgment_jitter(rng, user.judgment_noise * 0.3)
            };
            let perceived = digest_similarity(target_digest, &engine.digest_of(&view)) + noise;
            if best.as_ref().map(|(q, _)| perceived > *q).unwrap_or(true) {
                best = Some((perceived, trial));
            }
            if best.as_ref().is_some_and(|(q, _)| *q > 0.985) {
                break;
            }
        }
        watch.charge(costs.decision);
        let selection = best.map(|(_, s)| s).unwrap_or_default();
        let quality = if selection.is_empty() {
            // No acceptable alternative found: error of an empty selection
            // is the full table vs the target.
            retrieval_error(target, &table.full_view())
        } else {
            retrieval_error(target, &view_of(engine, &selection).expect("valid selection"))
        };
        TaskOutcome {
            quality,
            minutes: watch.minutes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::roster;
    use dbex_data::MushroomGenerator;

    fn hard_task() -> AltConditionTask {
        AltConditionTask {
            given: vec![
                ("StalkShape".into(), "enlarging".into()),
                ("SporePrintColor".into(), "chocolate".into()),
            ],
        }
    }

    fn easy_task() -> AltConditionTask {
        AltConditionTask {
            given: vec![("StalkColorAboveRing".into(), "gray".into())],
        }
    }

    #[test]
    fn easy_task_twin_attribute_found_with_low_error() {
        let table = MushroomGenerator::new(2016).generate(4_000);
        let costs = CostModel::default();
        let users = roster(7);
        let task = easy_task();
        for user in &users[..4] {
            let out = task.run_tpfacet(&table, &costs, user);
            assert!(
                out.quality < 0.4,
                "{}: error {} too high for the twin-attribute task",
                user.name(),
                out.quality
            );
        }
    }

    #[test]
    fn tpfacet_lower_error_and_faster_on_hard_task() {
        let table = MushroomGenerator::new(2016).generate(4_000);
        let costs = CostModel::default();
        let users = roster(7);
        let task = hard_task();
        let mut solr_err = 0.0;
        let mut tp_err = 0.0;
        let mut solr_min = 0.0;
        let mut tp_min = 0.0;
        for user in &users {
            let s = task.run_solr(&table, &costs, user);
            let t = task.run_tpfacet(&table, &costs, user);
            solr_err += s.quality;
            tp_err += t.quality;
            solr_min += s.minutes;
            tp_min += t.minutes;
        }
        let n = users.len() as f64;
        assert!(
            tp_err / n < solr_err / n,
            "TPFacet error {} vs Solr {}",
            tp_err / n,
            solr_err / n
        );
        assert!(
            solr_min / n > 1.2 * tp_min / n,
            "Solr {} vs TPFacet {} minutes",
            solr_min / n,
            tp_min / n
        );
    }

    #[test]
    fn target_view_nonempty() {
        let table = MushroomGenerator::new(2016).generate(4_000);
        assert!(hard_task().target_view(&table).len() > 50);
        assert!(easy_task().target_view(&table).len() > 50);
    }
}
