//! Interface-operation cost model and task stopwatch.
//!
//! Absolute task times in the paper come from humans; here they come from a
//! per-operation cost model. The defaults are calibrated so the *baseline*
//! (Solr) task times land in the ranges the paper reports (≈4-16 minutes
//! per task) — the reproduction's claim is the *ratio and ordering* between
//! interfaces, which emerges from the operation counts each policy needs,
//! not from the calibration constants.

/// Seconds charged per interface operation.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Clicking a facet value (select or deselect), including the page
    /// refresh and reorientation.
    pub facet_click: f64,
    /// Reading one attribute's value counts in the summary digest.
    pub digest_scan_attr: f64,
    /// Manually comparing two memorized/noted digests with the provided
    /// cosine metric (the paper hands Solr users this metric for Task 2).
    pub digest_compare: f64,
    /// Requesting a CAD View build (includes looking it over once).
    pub cad_build: f64,
    /// Reading one IUnit's labels.
    pub iunit_inspect: f64,
    /// An interactive CAD click (highlight similar / reorder rows),
    /// including reading the highlighted result.
    pub cad_click: f64,
    /// Noting down / deciding on an intermediate result.
    pub decision: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            facet_click: 6.0,
            digest_scan_attr: 9.0,
            digest_compare: 30.0,
            cad_build: 20.0,
            iunit_inspect: 8.0,
            cad_click: 10.0,
            decision: 5.0,
        }
    }
}

/// Accumulates task time as operations are charged.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    seconds: f64,
    /// Per-user speed multiplier (>1 = faster user).
    speed: f64,
    ops: usize,
}

impl Stopwatch {
    /// Starts a stopwatch for a user with the given speed factor.
    pub fn new(speed: f64) -> Stopwatch {
        assert!(speed > 0.0, "speed must be positive");
        Stopwatch {
            seconds: 0.0,
            speed,
            ops: 0,
        }
    }

    /// Charges one operation of base cost `base_seconds`.
    pub fn charge(&mut self, base_seconds: f64) {
        self.seconds += base_seconds / self.speed;
        self.ops += 1;
    }

    /// Charges `n` operations of base cost `base_seconds`.
    pub fn charge_n(&mut self, base_seconds: f64, n: usize) {
        self.seconds += base_seconds * n as f64 / self.speed;
        self.ops += n;
    }

    /// Elapsed task time in minutes.
    pub fn minutes(&self) -> f64 {
        self.seconds / 60.0
    }

    /// Elapsed task time in seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Number of operations charged.
    pub fn ops(&self) -> usize {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_scale_with_speed() {
        let mut w = Stopwatch::new(2.0);
        w.charge(10.0);
        w.charge_n(5.0, 4);
        assert!((w.seconds() - 15.0).abs() < 1e-12); // (10+20)/2
        assert_eq!(w.ops(), 5);
        assert!((w.minutes() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slow_user_takes_longer() {
        let mut fast = Stopwatch::new(1.3);
        let mut slow = Stopwatch::new(0.8);
        fast.charge(60.0);
        slow.charge(60.0);
        assert!(slow.seconds() > fast.seconds());
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        Stopwatch::new(0.0);
    }
}
