//! The packed-code kernels against their one-hot reference oracle.
//!
//! The contract is *bit-identity*, not approximation: for any input, the
//! packed k-means / mini-batch / out-of-sample-assignment paths must
//! return exactly the assignments, centroids (to the float bit), sizes,
//! inertia bits, and iteration counts of the sparse reference
//! implementations. Random fixtures cover NULLs, duplicate rows, empty
//! rows, tiny n, and the `u8 → u16` width promotion above 255 distinct
//! values per attribute.

use dbex_cluster::kmeans::{assign_all_packed, kmeans, kmeans_packed, KMeansConfig};
use dbex_cluster::minibatch::{mini_batch_kmeans, mini_batch_kmeans_packed, MiniBatchConfig};
use dbex_cluster::packed::PackedMatrix;
use dbex_cluster::{KMeansResult, OneHotSpace};
use dbex_stats::discretize::{AttributeCodec, CodedColumn};
use dbex_table::dict::NULL_CODE;
use proptest::prelude::*;

/// Builds coded columns with the given cardinalities from explicit codes
/// (`None` = NULL), rows in row-major order.
fn columns_from(cards: &[usize], rows: &[Vec<Option<u32>>]) -> Vec<CodedColumn> {
    cards
        .iter()
        .enumerate()
        .map(|(a, &card)| CodedColumn {
            attr_index: a,
            codec: AttributeCodec::Categorical {
                labels: (0..card).map(|i| format!("v{i}")).collect(),
            },
            codes: rows
                .iter()
                .map(|r| r[a].map_or(NULL_CODE, |c| c))
                .collect(),
        })
        .collect()
}

/// Deterministic pseudo-random rows over the given cardinalities, with a
/// NULL probability of roughly 1/8.
fn random_rows(cards: &[usize], n: usize, seed: u64) -> Vec<Vec<Option<u32>>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            cards
                .iter()
                .map(|&card| {
                    let r = next();
                    if r % 8 == 0 {
                        None
                    } else {
                        Some((r % card as u64) as u32)
                    }
                })
                .collect()
        })
        .collect()
}

fn assert_bit_identical(packed: &KMeansResult, reference: &KMeansResult, ctx: &str) {
    assert_eq!(packed.assignments, reference.assignments, "{ctx}: assignments");
    assert_eq!(packed.sizes, reference.sizes, "{ctx}: sizes");
    assert_eq!(packed.iterations, reference.iterations, "{ctx}: iterations");
    assert_eq!(
        packed.inertia.to_bits(),
        reference.inertia.to_bits(),
        "{ctx}: inertia {} vs {}",
        packed.inertia,
        reference.inertia
    );
    assert_eq!(packed.centroids.len(), reference.centroids.len(), "{ctx}: k");
    for (c, (p, r)) in packed.centroids.iter().zip(&reference.centroids).enumerate() {
        let pb: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
        let rb: Vec<u64> = r.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, rb, "{ctx}: centroid {c}");
    }
}

/// Runs both paths over the same data and checks bit-identity of k-means,
/// mini-batch, and out-of-sample assignment.
fn check_equivalence(cards: &[usize], rows: &[Vec<Option<u32>>], k: usize, seed: u64) {
    let columns = columns_from(cards, rows);
    let refs: Vec<&CodedColumn> = columns.iter().collect();
    let positions: Vec<usize> = (0..rows.len()).collect();
    let space = OneHotSpace::from_columns(&refs);
    let points = space.encode_positions(&refs, &positions);
    let matrix = PackedMatrix::from_columns(&refs, &positions)
        .unwrap_or_else(|| panic!("cards {cards:?} must pack"));
    assert_eq!(matrix.dim(), space.dim());

    for plus_plus in [true, false] {
        let cfg = KMeansConfig {
            k,
            max_iters: 12,
            seed,
            plus_plus,
            threads: 1,
        };
        let reference = kmeans(&points, space.dim(), &cfg).unwrap();
        let packed = kmeans_packed(&matrix, &cfg).unwrap();
        assert_bit_identical(&packed, &reference, &format!("kmeans pp={plus_plus}"));
        let threaded = kmeans_packed(
            &matrix,
            &KMeansConfig {
                threads: 3,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_bit_identical(&threaded, &reference, &format!("kmeans t=3 pp={plus_plus}"));
        assert_eq!(
            assign_all_packed(&reference, &matrix),
            reference.assign_all(&points),
            "assign_all pp={plus_plus}"
        );
    }

    let mb = MiniBatchConfig {
        k,
        batch_size: 16,
        batches: 12,
        seed,
    };
    let reference = mini_batch_kmeans(&points, space.dim(), &mb).unwrap();
    let packed = mini_batch_kmeans_packed(&matrix, &mb).unwrap();
    assert_bit_identical(&packed, &reference, "mini_batch");
}

#[test]
fn packed_kmeans_matches_reference_small_cardinalities() {
    let cards = [5, 3, 7, 2];
    for seed in 0..6u64 {
        let rows = random_rows(&cards, 120, seed + 1);
        check_equivalence(&cards, &rows, 4, seed);
    }
}

#[test]
fn packed_kmeans_matches_reference_with_all_null_rows() {
    let cards = [4, 4];
    let mut rows = random_rows(&cards, 40, 3);
    rows[0] = vec![None, None];
    rows[17] = vec![None, None];
    rows[39] = vec![None, None];
    check_equivalence(&cards, &rows, 3, 9);
}

#[test]
fn packed_kmeans_matches_reference_fewer_points_than_k() {
    let cards = [3, 3];
    let rows = random_rows(&cards, 4, 5);
    check_equivalence(&cards, &rows, 9, 2);
}

#[test]
fn width_promotion_keeps_kernels_exact_above_255_values() {
    // Cardinality 300 forces u16 storage; distances must not corrupt.
    let cards = [300, 4];
    for seed in 0..3u64 {
        let rows = random_rows(&cards, 150, seed + 11);
        let columns = columns_from(&cards, &rows);
        let refs: Vec<&CodedColumn> = columns.iter().collect();
        let matrix =
            PackedMatrix::from_columns(&refs, &(0..rows.len()).collect::<Vec<_>>()).unwrap();
        assert!(!matrix.is_u8(), "cardinality 300 must promote to u16");
        check_equivalence(&cards, &rows, 5, seed);
    }
}

#[test]
fn empty_input_matches_reference() {
    let cards = [3usize, 2];
    let columns = columns_from(&cards, &[]);
    let refs: Vec<&CodedColumn> = columns.iter().collect();
    let matrix = PackedMatrix::from_columns(&refs, &[]).unwrap();
    let cfg = KMeansConfig {
        k: 3,
        ..KMeansConfig::default()
    };
    let reference = kmeans(&[], 5, &cfg).unwrap();
    let packed = kmeans_packed(&matrix, &cfg).unwrap();
    assert_bit_identical(&packed, &reference, "empty");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: arbitrary inputs spanning the u8/u16 promotion boundary.
    /// Attribute 0's cardinality ranges across 255/256 so some cases pack
    /// as u8 and others must promote; either way the packed kernels must
    /// equal the one-hot reference bit for bit.
    #[test]
    fn packed_distance_equals_onehot_distance_on_arbitrary_inputs(
        card0 in 250usize..300,
        card1 in 2usize..6,
        raw in prop::collection::vec((0u32..300, 0u32..6, 0u32..8), 6..60),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let cards = [card0, card1];
        let rows: Vec<Vec<Option<u32>>> = raw
            .iter()
            .map(|&(c0, c1, null_sel)| {
                vec![
                    if null_sel == 0 { None } else { Some(c0 % card0 as u32) },
                    if null_sel == 1 { None } else { Some(c1 % card1 as u32) },
                ]
            })
            .collect();
        check_equivalence(&cards, &rows, k, seed);
    }
}
