//! Mini-batch k-means (Sculley, WWW 2010).
//!
//! A scaling alternative to the paper's sample-and-assign optimization:
//! instead of clustering a fixed sample, iterate over small random batches
//! and move each centroid toward its assigned batch points with a
//! per-centroid decaying learning rate. Converges to slightly worse inertia
//! than full Lloyd iterations but touches each point a constant number of
//! times — useful when result sets grow beyond the paper's 40K scale.

use crate::error::ClusterError;
use crate::fault;
use crate::kmeans::{
    accumulate_dots, build_lut, kmeans, kmeans_packed, packed_onehot, packed_sparse_dist2,
    validate_points, KMeansConfig, KMeansResult,
};
use crate::packed::{CodeWord, PackedMatrix, PackedView};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`mini_batch_kmeans`].
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Points per batch.
    pub batch_size: usize,
    /// Number of batches processed.
    pub batches: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            k: 8,
            batch_size: 256,
            batches: 60,
            seed: 0x1111,
        }
    }
}

/// Runs mini-batch k-means on sparse one-hot `points` of dimensionality
/// `dim`. Returns the same result type as [`kmeans`] (final assignments
/// are a full pass over all points).
///
/// Fails with a typed [`ClusterError`] when `config.k == 0`,
/// `config.batch_size == 0`, or a point activates a dimension outside
/// `0..dim`.
pub fn mini_batch_kmeans(
    points: &[Vec<u32>],
    dim: usize,
    config: &MiniBatchConfig,
) -> Result<KMeansResult, ClusterError> {
    fault::check("cluster::minibatch")?;
    if config.k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    if config.batch_size == 0 {
        return Err(ClusterError::ZeroBatchSize);
    }
    validate_points(points, dim)?;
    let n = points.len();
    if n == 0 {
        return Ok(KMeansResult {
            assignments: Vec::new(),
            centroids: vec![vec![0.0; dim]; config.k],
            sizes: vec![0; config.k],
            inertia: 0.0,
            iterations: 0,
            histograms: Vec::new(),
        });
    }
    if n <= config.batch_size {
        // Batches would cover everything anyway: run exact k-means.
        return kmeans(
            points,
            dim,
            &KMeansConfig {
                k: config.k,
                seed: config.seed,
                ..KMeansConfig::default()
            },
        );
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let k = config.k.min(n);

    // Farthest-point seeding: a random first seed, then repeatedly the
    // point farthest from every chosen seed. Distinct *indices* are not
    // enough — one-hot datasets are full of duplicate points, and two
    // identical centroids strand a cluster.
    let mut seed_idx = vec![rng.random_range(0..n)];
    let sparse_d2 = |a: &[u32], b: &[u32]| -> f64 {
        let common = a.iter().filter(|d| b.contains(d)).count();
        (a.len() + b.len() - 2 * common) as f64
    };
    let mut min_d2: Vec<f64> = points
        .iter()
        .map(|p| sparse_d2(p, &points[seed_idx[0]]))
        .collect();
    while seed_idx.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| min_d2[a].total_cmp(&min_d2[b]))
            .unwrap_or(0);
        seed_idx.push(far);
        for (i, p) in points.iter().enumerate() {
            let d = sparse_d2(p, &points[far]);
            if d < min_d2[i] {
                min_d2[i] = d;
            }
        }
    }
    let mut centroids: Vec<Vec<f64>> = seed_idx
        .iter()
        .map(|&i| {
            let mut c = vec![0.0; dim];
            for &d in &points[i] {
                c[d as usize] = 1.0;
            }
            c
        })
        .collect();

    // Per-centroid update counts drive the decaying learning rate.
    let mut counts = vec![0u64; k];
    for _ in 0..config.batches {
        // Sample a batch (with replacement — standard for mini-batch).
        let batch: Vec<usize> = (0..config.batch_size)
            .map(|_| rng.random_range(0..n))
            .collect();
        // Assign, then update with per-center learning rates.
        let norms: Vec<f64> = centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        let assigned: Vec<usize> = batch
            .iter()
            .map(|&i| nearest(&points[i], &centroids, &norms))
            .collect();
        for (&i, &c) in batch.iter().zip(&assigned) {
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f64;
            // Move centroid toward the one-hot point: scale everything
            // down, then add eta at the active dimensions.
            for v in centroids[c].iter_mut() {
                *v *= 1.0 - eta;
            }
            for &d in &points[i] {
                centroids[c][d as usize] += eta;
            }
        }
    }

    // Final full assignment pass.
    let norms: Vec<f64> = centroids
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum())
        .collect();
    let mut assignments = Vec::with_capacity(n);
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for p in points {
        let best = nearest(p, &centroids, &norms);
        let dot: f64 = p.iter().map(|&d| centroids[best][d as usize]).sum();
        inertia += (norms[best] - 2.0 * dot + p.len() as f64).max(0.0);
        sizes[best] += 1;
        assignments.push(best);
    }
    while centroids.len() < config.k {
        centroids.push(vec![0.0; dim]);
        sizes.push(0);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        sizes,
        inertia,
        iterations: config.batches,
        histograms: Vec::new(),
    })
}

/// [`mini_batch_kmeans`] over a [`PackedMatrix`] — bit-identical results,
/// packed storage (see the packed-kernel comment in [`crate::kmeans`]).
///
/// The small-input fallback mirrors the sparse path: `n ≤ batch_size`
/// delegates to [`kmeans_packed`] with the same derived configuration.
pub fn mini_batch_kmeans_packed(
    matrix: &PackedMatrix,
    config: &MiniBatchConfig,
) -> Result<KMeansResult, ClusterError> {
    fault::check("cluster::minibatch")?;
    if config.k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    if config.batch_size == 0 {
        return Err(ClusterError::ZeroBatchSize);
    }
    let n = matrix.rows();
    if n == 0 {
        return Ok(KMeansResult {
            assignments: Vec::new(),
            centroids: vec![vec![0.0; matrix.dim()]; config.k],
            sizes: vec![0; config.k],
            inertia: 0.0,
            iterations: 0,
            histograms: Vec::new(),
        });
    }
    if n <= config.batch_size {
        // Batches would cover everything anyway: run exact k-means.
        return kmeans_packed(
            matrix,
            &KMeansConfig {
                k: config.k,
                seed: config.seed,
                ..KMeansConfig::default()
            },
        );
    }
    matrix.dispatch(|view| match view {
        PackedView::U8(codes) => mini_batch_packed_impl(codes, matrix, config),
        PackedView::U16(codes) => mini_batch_packed_impl(codes, matrix, config),
    })
}

fn mini_batch_packed_impl<T: CodeWord>(
    codes: &[T],
    m: &PackedMatrix,
    config: &MiniBatchConfig,
) -> Result<KMeansResult, ClusterError> {
    let n = m.rows();
    let dim = m.dim();
    let attrs = m.attrs();
    let row = |i: usize| &codes[i * attrs..(i + 1) * attrs];
    let mut rng = StdRng::seed_from_u64(config.seed);
    let k = config.k.min(n);

    // Farthest-point seeding, mirroring the sparse path draw for draw.
    let mut seed_idx = vec![rng.random_range(0..n)];
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| packed_sparse_dist2(row(i), row(seed_idx[0]), m.len_of(i), m.len_of(seed_idx[0])))
        .collect();
    while seed_idx.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| min_d2[a].total_cmp(&min_d2[b]))
            .unwrap_or(0);
        seed_idx.push(far);
        for (i, slot) in min_d2.iter_mut().enumerate() {
            let d = packed_sparse_dist2(row(i), row(far), m.len_of(i), m.len_of(far));
            if d < *slot {
                *slot = d;
            }
        }
    }
    let mut centroids: Vec<Vec<f64>> = seed_idx
        .iter()
        .map(|&i| packed_onehot(row(i), m, dim))
        .collect();

    // Per-centroid update counts drive the decaying learning rate.
    let mut counts = vec![0u64; k];
    let mut dot = vec![0.0f64; k];
    for _ in 0..config.batches {
        // Sample a batch (with replacement — standard for mini-batch).
        let batch: Vec<usize> = (0..config.batch_size)
            .map(|_| rng.random_range(0..n))
            .collect();
        // Assign, then update with per-center learning rates. The whole
        // batch is assigned against the pre-batch centroids (as in the
        // sparse path), so one LUT snapshot per batch is exact.
        let norms: Vec<f64> = centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        let lut = build_lut(&centroids, dim);
        let assigned: Vec<usize> = batch
            .iter()
            .map(|&i| {
                accumulate_dots(row(i), m, &lut, &mut dot);
                nearest_unclamped_from_dots(&norms, &dot, m.len_of(i) as f64)
            })
            .collect();
        for (&i, &c) in batch.iter().zip(&assigned) {
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f64;
            // Move centroid toward the one-hot point: scale everything
            // down, then add eta at the active dimensions.
            for v in centroids[c].iter_mut() {
                *v *= 1.0 - eta;
            }
            for (a, &code) in row(i).iter().enumerate() {
                if code != T::NULL {
                    centroids[c][m.offset(a) + code.index()] += eta;
                }
            }
        }
    }

    // Final full assignment pass.
    let norms: Vec<f64> = centroids
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum())
        .collect();
    let lut = build_lut(&centroids, dim);
    let mut assignments = Vec::with_capacity(n);
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for i in 0..n {
        accumulate_dots(row(i), m, &lut, &mut dot);
        let len = m.len_of(i) as f64;
        let best = nearest_unclamped_from_dots(&norms, &dot, len);
        inertia += (norms[best] - 2.0 * dot[best] + len).max(0.0);
        sizes[best] += 1;
        assignments.push(best);
    }
    while centroids.len() < config.k {
        centroids.push(vec![0.0; dim]);
        sizes.push(0);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        sizes,
        inertia,
        iterations: config.batches,
        histograms: Vec::new(),
    })
}

/// The packed mirror of [`nearest`]: *unclamped* distance (this file's
/// historical behavior, kept bit-compatible), first-min tie-break.
#[inline]
fn nearest_unclamped_from_dots(norms: &[f64], dot: &[f64], len: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, (&n2, &dt)) in norms.iter().zip(dot).enumerate() {
        let d = n2 - 2.0 * dt + len;
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

fn nearest(point: &[u32], centroids: &[Vec<f64>], norms: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let dot: f64 = point.iter().map(|&d| centroid[d as usize]).sum();
        let d = norms[c] - 2.0 * dot + point.len() as f64;
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_groups(n_each: usize) -> Vec<Vec<u32>> {
        let mut pts = Vec::new();
        for _ in 0..n_each {
            pts.push(vec![0, 3]);
            pts.push(vec![1, 4]);
            pts.push(vec![2, 5]);
        }
        pts
    }

    #[test]
    fn separates_clear_groups() {
        let pts = three_groups(300);
        let result = mini_batch_kmeans(
            &pts,
            6,
            &MiniBatchConfig {
                k: 3,
                batch_size: 64,
                batches: 80,
                seed: 1,
            },
        )
        .unwrap();
        // Near-perfect clustering: inertia close to zero.
        assert!(
            result.inertia < 0.1 * pts.len() as f64,
            "inertia {}",
            result.inertia
        );
        // All three groups get distinct clusters.
        let a = result.assignments[0];
        let b = result.assignments[1];
        let c = result.assignments[2];
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn inertia_close_to_full_kmeans() {
        let pts = three_groups(200);
        let full = kmeans(
            &pts,
            6,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mb = mini_batch_kmeans(
            &pts,
            6,
            &MiniBatchConfig {
                k: 3,
                batch_size: 50,
                batches: 60,
                seed: 3,
            },
        )
        .unwrap();
        assert!(
            mb.inertia <= full.inertia * 1.25 + 1.0,
            "mini-batch {} vs full {}",
            mb.inertia,
            full.inertia
        );
    }

    #[test]
    fn small_input_falls_back_to_exact() {
        let pts = three_groups(2); // 6 points < batch_size
        let result = mini_batch_kmeans(&pts, 6, &MiniBatchConfig::default())
        .unwrap();
        assert_eq!(result.assignments.len(), 6);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic() {
        let pts = three_groups(100);
        let cfg = MiniBatchConfig {
            k: 3,
            batch_size: 32,
            batches: 40,
            seed: 9,
        };
        let a = mini_batch_kmeans(&pts, 6, &cfg)
        .unwrap();
        let b = mini_batch_kmeans(&pts, 6, &cfg)
        .unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn empty_input() {
        let result = mini_batch_kmeans(&[], 4, &MiniBatchConfig::default())
        .unwrap();
        assert!(result.assignments.is_empty());
    }
}
