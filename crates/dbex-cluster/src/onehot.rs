//! One-hot encoding of discretized tuples.
//!
//! Each Compare Attribute with cardinality `c_a` contributes `c_a`
//! dimensions; a tuple activates exactly one dimension per non-NULL
//! attribute. Points are stored sparsely (the list of active dimensions),
//! which makes squared Euclidean distances between a point and a dense
//! centroid computable in `O(#attributes)`.

use dbex_stats::discretize::CodedColumn;
use dbex_table::dict::NULL_CODE;

/// The one-hot feature space induced by a set of discretized attributes.
#[derive(Debug, Clone)]
pub struct OneHotSpace {
    /// Start offset of each attribute's block of dimensions.
    offsets: Vec<usize>,
    /// Total dimensionality (sum of attribute cardinalities).
    dim: usize,
}

impl OneHotSpace {
    /// Builds the space from attribute cardinalities.
    pub fn from_cardinalities(cards: &[usize]) -> OneHotSpace {
        let mut offsets = Vec::with_capacity(cards.len());
        let mut dim = 0;
        for &c in cards {
            offsets.push(dim);
            dim += c;
        }
        OneHotSpace { offsets, dim }
    }

    /// Builds the space from coded columns (cardinality of each codec).
    pub fn from_columns(columns: &[&CodedColumn]) -> OneHotSpace {
        let cards: Vec<usize> = columns.iter().map(|c| c.codec.cardinality()).collect();
        Self::from_cardinalities(&cards)
    }

    /// Total dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.offsets.len()
    }

    /// Global dimension of `(attribute, code)`.
    pub fn dim_of(&self, attr: usize, code: u32) -> usize {
        self.offsets[attr] + code as usize
    }

    /// Inverse of [`Self::dim_of`]: which `(attribute, code)` a global
    /// dimension belongs to.
    pub fn attr_code_of(&self, dim: usize) -> (usize, u32) {
        debug_assert!(dim < self.dim);
        let attr = match self.offsets.binary_search(&dim) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (attr, (dim - self.offsets[attr]) as u32)
    }

    /// Encodes one tuple: `codes[a]` is attribute `a`'s discrete code
    /// (`NULL_CODE` for NULL). Returns the sorted active dimensions.
    pub fn encode(&self, codes: &[u32]) -> Vec<u32> {
        debug_assert_eq!(codes.len(), self.offsets.len());
        let mut active = Vec::with_capacity(codes.len());
        for (attr, &code) in codes.iter().enumerate() {
            if code != NULL_CODE {
                active.push(self.dim_of(attr, code) as u32);
            }
        }
        active
    }

    /// Encodes every position of a set of coded columns.
    ///
    /// `positions` index into the columns' code vectors (i.e. the view's
    /// row positions). Each output point is the sparse active-dimension
    /// list of one tuple.
    pub fn encode_positions(&self, columns: &[&CodedColumn], positions: &[usize]) -> Vec<Vec<u32>> {
        positions
            .iter()
            .map(|&p| {
                let mut active = Vec::with_capacity(columns.len());
                for (attr, col) in columns.iter().enumerate() {
                    let code = col.codes[p];
                    if code != NULL_CODE {
                        active.push(self.dim_of(attr, code) as u32);
                    }
                }
                active
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_dims() {
        let s = OneHotSpace::from_cardinalities(&[3, 2, 4]);
        assert_eq!(s.dim(), 9);
        assert_eq!(s.num_attrs(), 3);
        assert_eq!(s.dim_of(0, 2), 2);
        assert_eq!(s.dim_of(1, 0), 3);
        assert_eq!(s.dim_of(2, 3), 8);
    }

    #[test]
    fn attr_code_round_trip() {
        let s = OneHotSpace::from_cardinalities(&[3, 2, 4]);
        for attr in 0..3 {
            let card = [3, 2, 4][attr];
            for code in 0..card {
                let d = s.dim_of(attr, code as u32);
                assert_eq!(s.attr_code_of(d), (attr, code as u32));
            }
        }
    }

    #[test]
    fn encode_skips_nulls() {
        let s = OneHotSpace::from_cardinalities(&[3, 2]);
        assert_eq!(s.encode(&[1, 0]), vec![1, 3]);
        assert_eq!(s.encode(&[dbex_table::dict::NULL_CODE, 1]), vec![4]);
        assert_eq!(
            s.encode(&[dbex_table::dict::NULL_CODE, dbex_table::dict::NULL_CODE]),
            Vec::<u32>::new()
        );
    }
}
