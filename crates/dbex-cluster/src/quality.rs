//! Cluster-quality measures.
//!
//! The CAD View's usefulness depends on IUnits being real structure, not
//! arbitrary partitions. The silhouette coefficient quantifies that: for
//! each point, how much closer it is to its own cluster than to the nearest
//! other cluster. Used by the ablation benchmarks (seeding strategies,
//! candidate counts) and available to library users tuning `l`.

/// Mean silhouette coefficient of a clustering of sparse one-hot points.
///
/// `assignments[i]` is point `i`'s cluster. Returns `None` when fewer than
/// two non-empty clusters exist (silhouette is undefined). Complexity is
/// O(n²·|point|) — intended for samples, not full 40K results; callers
/// should subsample first.
pub fn silhouette(points: &[Vec<u32>], assignments: &[usize]) -> Option<f64> {
    assert_eq!(points.len(), assignments.len(), "length mismatch");
    let n = points.len();
    if n < 2 {
        return None;
    }
    let num_clusters = assignments.iter().copied().max()? + 1;
    let mut sizes = vec![0usize; num_clusters];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return None;
    }

    // Pairwise distances accumulated per (point, cluster).
    let mut sum_to_cluster = vec![vec![0.0f64; num_clusters]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sparse_dist(&points[i], &points[j]);
            sum_to_cluster[i][assignments[j]] += d;
            sum_to_cluster[j][assignments[i]] += d;
        }
    }

    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            // Singleton clusters contribute silhouette 0 by convention.
            counted += 1;
            continue;
        }
        let a = sum_to_cluster[i][own] / (sizes[own] - 1) as f64;
        let b = (0..num_clusters)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sum_to_cluster[i][c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
        counted += 1;
    }
    Some(total / counted as f64)
}

/// Euclidean distance between two sparse binary points.
fn sparse_dist(a: &[u32], b: &[u32]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    ((a.len() + b.len() - 2 * common) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_high_silhouette() {
        let mut points = Vec::new();
        let mut assignments = Vec::new();
        for _ in 0..10 {
            points.push(vec![0u32, 2]);
            assignments.push(0);
            points.push(vec![1u32, 3]);
            assignments.push(1);
        }
        let s = silhouette(&points, &assignments).unwrap();
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn random_assignment_low_silhouette() {
        let mut points = Vec::new();
        let mut assignments = Vec::new();
        for i in 0..20 {
            points.push(if i % 2 == 0 { vec![0u32, 2] } else { vec![1u32, 3] });
            assignments.push(i % 3 % 2); // scrambled labels
        }
        let good: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let s_bad = silhouette(&points, &assignments).unwrap();
        let s_good = silhouette(&points, &good).unwrap();
        assert!(s_good > s_bad, "good {s_good} vs bad {s_bad}");
    }

    #[test]
    fn degenerate_cases() {
        assert!(silhouette(&[vec![0]], &[0]).is_none());
        // Single cluster.
        assert!(silhouette(&[vec![0], vec![1]], &[0, 0]).is_none());
        // Two singleton clusters: defined, contributes 0s.
        let s = silhouette(&[vec![0], vec![1]], &[0, 1]).unwrap();
        assert_eq!(s, 0.0);
    }
}
