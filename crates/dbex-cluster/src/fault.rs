//! Deterministic fault injection for the clustering layer.
//!
//! Mirrors `dbex_stats::fault`: tests arm a named site on their thread and
//! the matching code path returns [`ClusterError::FaultInjected`] until the
//! guard drops. Known sites: `"cluster::kmeans"`, `"cluster::minibatch"`.
//!
//! # Interaction with parallel CAD builds
//!
//! As in `dbex_stats::fault`, hooks fire **only on the arming thread**.
//! The CAD builder's default `CadConfig::threads == 1` clusters every
//! partition on the caller's thread, so an armed `"cluster::kmeans"` is
//! honored and the degradation ladder descends. With `threads > 1` the
//! per-partition clustering runs on `dbex_par::par_map` pool workers whose
//! fresh thread-locals are never armed — those partitions cluster at full
//! fidelity. `tests/parallel_determinism.rs` pins down both behaviors.

use crate::error::ClusterError;
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Arms `site` on this thread: subsequent [`check`]s for it fail.
pub fn arm(site: &'static str) {
    ARMED.with(|a| a.set(Some(site)));
}

/// Disarms any armed fault on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Arms `site` for the lifetime of the returned guard.
pub fn scoped(site: &'static str) -> ScopedFault {
    arm(site);
    ScopedFault { _private: () }
}

/// Guard that disarms the thread's fault on drop.
#[must_use = "the fault is disarmed when this guard drops"]
pub struct ScopedFault {
    _private: (),
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        disarm();
    }
}

/// Returns the injected error if `site` is armed on this thread.
pub fn check(site: &'static str) -> Result<(), ClusterError> {
    let armed = ARMED.with(|a| a.get());
    if armed == Some(site) {
        return Err(ClusterError::FaultInjected { site });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_arm_and_release() {
        assert!(check("cluster::kmeans").is_ok());
        {
            let _g = scoped("cluster::kmeans");
            assert!(check("cluster::kmeans").is_err());
            assert!(check("cluster::minibatch").is_ok());
        }
        assert!(check("cluster::kmeans").is_ok());
    }
}
