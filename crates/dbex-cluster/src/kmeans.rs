//! Lloyd's k-means over sparse one-hot points.
//!
//! Matches the paper's use of Weka `SimpleKMeans` (Section 3.1.2) with the
//! quality/latency refinements the performance study relies on:
//!
//! * **k-means++ seeding** for reliable starts (random seeding is kept as an
//!   ablation option; the benchmark suite compares the two).
//! * **Empty-cluster reseeding** to the point farthest from its centroid.
//! * **Out-of-sample assignment**: the paper's Optimization 1 clusters a
//!   sample and assigns remaining tuples to the nearest learned centroid.
//!
//! Points are sparse binary vectors (active dimensions, one per non-NULL
//! attribute); centroids are dense. The squared distance between point `x`
//! and centroid `c` is `‖c‖² − 2·Σ_{d∈x} c_d + |x|`, so each distance costs
//! `O(#attributes)` regardless of dimensionality.

use crate::error::ClusterError;
use crate::fault;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters (`l` candidate IUnits in the paper).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// PRNG seed; identical seeds give identical clusterings.
    pub seed: u64,
    /// Use k-means++ seeding (`true`, default) or uniform random seeding
    /// (`false`, ablation baseline).
    pub plus_plus: bool,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 25,
            seed: 0xDBE0,
            plus_plus: true,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Dense centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations actually run.
    pub iterations: usize,
}

impl KMeansResult {
    /// Assigns an out-of-sample sparse point to its nearest centroid.
    pub fn assign(&self, point: &[u32]) -> usize {
        let norms: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        nearest(point, &self.centroids, &norms).0
    }

    /// Assigns many out-of-sample points (shares the centroid-norm cache).
    pub fn assign_all(&self, points: &[Vec<u32>]) -> Vec<usize> {
        let norms: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        points
            .iter()
            .map(|p| nearest(p, &self.centroids, &norms).0)
            .collect()
    }
}

/// Runs k-means on sparse one-hot `points` of dimensionality `dim`.
///
/// When `points.len() <= config.k`, each point gets its own cluster (and
/// surplus clusters stay empty with zero centroids). Points may be empty
/// (all-NULL tuples); they land in whichever cluster is nearest by `‖c‖²`.
///
/// Fails with a typed [`ClusterError`] when `config.k == 0` or a point
/// activates a dimension outside `0..dim`.
pub fn kmeans(
    points: &[Vec<u32>],
    dim: usize,
    config: &KMeansConfig,
) -> Result<KMeansResult, ClusterError> {
    fault::check("cluster::kmeans")?;
    if config.k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    validate_points(points, dim)?;
    let n = points.len();
    let k = config.k.min(n.max(1));
    if n == 0 {
        return Ok(KMeansResult {
            assignments: Vec::new(),
            centroids: vec![vec![0.0; dim]; config.k],
            sizes: vec![0; config.k],
            inertia: 0.0,
            iterations: 0,
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let seeds = if config.plus_plus {
        seed_plus_plus(points, k, &mut rng)
    } else {
        seed_random(n, k, &mut rng)
    };
    let mut centroids: Vec<Vec<f64>> = seeds
        .iter()
        .map(|&i| {
            let mut c = vec![0.0; dim];
            for &d in &points[i] {
                c[d as usize] = 1.0;
            }
            c
        })
        .collect();

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let norms: Vec<f64> = centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (best, _) = nearest(p, &centroids, &norms);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for &d in p {
                sums[c][d as usize] += 1.0;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed empty cluster to the point farthest from its centroid.
                let norms: Vec<f64> = centroids
                    .iter()
                    .map(|cc| cc.iter().map(|v| v * v).sum())
                    .collect();
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = dist2(&points[a], &centroids[assignments[a]], norms[assignments[a]]);
                        let db = dist2(&points[b], &centroids[assignments[b]], norms[assignments[b]]);
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0);
                let mut cc = vec![0.0; dim];
                for &d in &points[far] {
                    cc[d as usize] = 1.0;
                }
                centroids[c] = cc;
            } else {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
    }

    // Final stats.
    let norms: Vec<f64> = centroids
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum())
        .collect();
    let mut inertia = 0.0;
    let mut sizes = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let (best, d) = nearest(p, &centroids, &norms);
        assignments[i] = best;
        sizes[best] += 1;
        inertia += d;
    }
    // Pad to the requested k so callers can index by cluster id uniformly.
    while centroids.len() < config.k {
        centroids.push(vec![0.0; dim]);
        sizes.push(0);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        sizes,
        inertia,
        iterations,
    })
}

/// Rejects points referencing dimensions outside `0..dim` — they would
/// otherwise index out of bounds in the centroid update.
pub(crate) fn validate_points(points: &[Vec<u32>], dim: usize) -> Result<(), ClusterError> {
    for (i, p) in points.iter().enumerate() {
        for &d in p {
            if d as usize >= dim {
                return Err(ClusterError::DimensionOutOfRange {
                    point: i,
                    dim: d,
                    space: dim,
                });
            }
        }
    }
    Ok(())
}

/// Squared distance between sparse point and dense centroid with cached
/// `‖c‖²`.
fn dist2(point: &[u32], centroid: &[f64], norm2: f64) -> f64 {
    let mut dot = 0.0;
    for &d in point {
        dot += centroid[d as usize];
    }
    (norm2 - 2.0 * dot + point.len() as f64).max(0.0)
}

fn nearest(point: &[u32], centroids: &[Vec<f64>], norms: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(point, centroid, norms[c]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn seed_random(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    // Partial Fisher-Yates over 0..n.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.random_range(0..n - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

fn seed_plus_plus(points: &[Vec<u32>], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = points.len();
    let mut seeds = Vec::with_capacity(k);
    let mut last = rng.random_range(0..n);
    seeds.push(last);
    // Squared distance of each point to its nearest chosen seed. In one-hot
    // space the distance between two sparse points x,y is |x| + |y| − 2|x∩y|.
    let mut d2 = vec![f64::INFINITY; n];
    for _ in 1..k {
        for (i, p) in points.iter().enumerate() {
            let d = sparse_dist2(p, &points[last]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        seeds.push(next);
        last = next;
    }
    seeds
}

/// Squared distance between two sparse binary points (sorted dim lists).
fn sparse_dist2(a: &[u32], b: &[u32]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (a.len() + b.len() - 2 * common) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious groups: points activating dims {0,2} vs dims {1,3}.
    fn two_groups(n_each: usize) -> Vec<Vec<u32>> {
        let mut pts = Vec::new();
        for _ in 0..n_each {
            pts.push(vec![0, 2]);
            pts.push(vec![1, 3]);
        }
        pts
    }

    #[test]
    fn separates_two_groups() {
        let pts = two_groups(20);
        let result = kmeans(
            &pts,
            4,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // All even-index points together, all odd-index points together.
        let c0 = result.assignments[0];
        let c1 = result.assignments[1];
        assert_ne!(c0, c1);
        for (i, &a) in result.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { c0 } else { c1 });
        }
        assert!(result.inertia < 1e-9);
        assert_eq!(result.sizes.iter().sum::<usize>(), 40);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_groups(10);
        let cfg = KMeansConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        };
        let a = kmeans(&pts, 4, &cfg)
        .unwrap();
        let b = kmeans(&pts, 4, &cfg)
        .unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn fewer_points_than_k() {
        let pts = vec![vec![0u32], vec![1u32]];
        let result = kmeans(
            &pts,
            2,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.centroids.len(), 5);
        assert_eq!(result.sizes.len(), 5);
        assert_eq!(result.sizes.iter().sum::<usize>(), 2);
        assert_ne!(result.assignments[0], result.assignments[1]);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], 3, &KMeansConfig::default())
        .unwrap();
        assert!(result.assignments.is_empty());
        assert_eq!(result.inertia, 0.0);
    }

    #[test]
    fn out_of_sample_assignment() {
        let pts = two_groups(20);
        let result = kmeans(
            &pts,
            4,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let a = result.assign(&[0, 2]);
        let b = result.assign(&[1, 3]);
        assert_eq!(a, result.assignments[0]);
        assert_eq!(b, result.assignments[1]);
        assert_eq!(result.assign_all(&pts), result.assignments);
    }

    #[test]
    fn plus_plus_no_worse_than_random_on_structured_data() {
        // Three groups; compare final inertia.
        let mut pts = Vec::new();
        for _ in 0..30 {
            pts.push(vec![0u32, 3]);
            pts.push(vec![1u32, 4]);
            pts.push(vec![2u32, 5]);
        }
        let pp = kmeans(
            &pts,
            6,
            &KMeansConfig {
                k: 3,
                plus_plus: true,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mut best_rand = f64::INFINITY;
        for seed in 0..5 {
            let r = kmeans(
                &pts,
                6,
                &KMeansConfig {
                    k: 3,
                    plus_plus: false,
                    seed,
                    ..Default::default()
                },
            )
        .unwrap();
            best_rand = best_rand.min(r.inertia);
        }
        assert!(pp.inertia <= best_rand + 1e-9);
    }

    #[test]
    fn sparse_dist2_matches_definition() {
        assert_eq!(sparse_dist2(&[0, 2], &[0, 2]), 0.0);
        assert_eq!(sparse_dist2(&[0, 2], &[1, 3]), 4.0);
        assert_eq!(sparse_dist2(&[0, 2], &[0, 3]), 2.0);
        assert_eq!(sparse_dist2(&[], &[1]), 1.0);
    }

    #[test]
    fn all_identical_points_single_effective_cluster() {
        let pts = vec![vec![1u32, 5]; 12];
        let result = kmeans(
            &pts,
            8,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.inertia < 1e-9);
        // Every point in the same cluster.
        assert!(result.assignments.iter().all(|&a| a == result.assignments[0]));
    }
}
