//! Lloyd's k-means over sparse one-hot points.
//!
//! Matches the paper's use of Weka `SimpleKMeans` (Section 3.1.2) with the
//! quality/latency refinements the performance study relies on:
//!
//! * **k-means++ seeding** for reliable starts (random seeding is kept as an
//!   ablation option; the benchmark suite compares the two).
//! * **Empty-cluster reseeding** to the point farthest from its centroid.
//! * **Out-of-sample assignment**: the paper's Optimization 1 clusters a
//!   sample and assigns remaining tuples to the nearest learned centroid.
//!
//! Points are sparse binary vectors (active dimensions, one per non-NULL
//! attribute). During Lloyd iterations a centroid is represented as an
//! integer **histogram**: the per-dimension member counts `h_d` plus the
//! cluster size `m` (the conceptual dense centroid is `h_d / m`). The
//! squared distance between point `x` and centroid `(h, m)` is then
//!
//! ```text
//! ‖c‖² − 2·Σ_{d∈x} h_d · (1/m) + |x|      where ‖c‖² = Σ_d h_d² · (1/m)²
//! ```
//!
//! so the per-point inner loop is a pure *integer* accumulation — exact in
//! any evaluation order, which frees the packed kernel below to vectorize
//! it — followed by one float multiply per centroid. Each distance costs
//! `O(#attributes)` regardless of dimensionality.

use crate::error::ClusterError;
use crate::fault;
use crate::simd::{assign_rows_with, assign_scatter_rows_with, dot_stride};
use dbex_stats::simd::SimdDispatch;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters (`l` candidate IUnits in the paper).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// PRNG seed; identical seeds give identical clusterings.
    pub seed: u64,
    /// Use k-means++ seeding (`true`, default) or uniform random seeding
    /// (`false`, ablation baseline).
    pub plus_plus: bool,
    /// Worker threads for the packed assignment/update and final-stats
    /// steps (`1` = run on the caller thread). Rows are split into
    /// deterministic chunks whose integer partials merge in chunk order,
    /// so the output is **byte-identical at any thread count**; the f64
    /// inertia is folded sequentially in row order for the same reason.
    /// The reference [`kmeans`] ignores this field.
    pub threads: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 25,
            seed: 0xDBE0,
            plus_plus: true,
            threads: 1,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Dense centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations actually run.
    pub iterations: usize,
    /// Integer centroid histograms from the final Lloyd state — per
    /// cluster, the per-dimension member counts plus the update-step
    /// cluster size (`centroids[c][d] == histograms[c].0[d] / histograms[c].1`).
    /// Only the clusters that actually ran Lloyd are present (fewer than
    /// the padded `centroids` when `k` was clamped to the point count);
    /// empty for mini-batch results, whose learning-rate centroids are
    /// not count ratios. The incremental-reuse warm-start path feeds
    /// these into a later build.
    pub histograms: Vec<(Vec<u32>, u32)>,
}

impl KMeansResult {
    /// Assigns an out-of-sample sparse point to its nearest centroid.
    pub fn assign(&self, point: &[u32]) -> usize {
        let norms: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        nearest(point, &self.centroids, &norms).0
    }

    /// Assigns many out-of-sample points (shares the centroid-norm cache).
    pub fn assign_all(&self, points: &[Vec<u32>]) -> Vec<usize> {
        let norms: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        points
            .iter()
            .map(|p| nearest(p, &self.centroids, &norms).0)
            .collect()
    }
}

/// Runs k-means on sparse one-hot `points` of dimensionality `dim`.
///
/// When `points.len() <= config.k`, each point gets its own cluster (and
/// surplus clusters stay empty with zero centroids). Points may be empty
/// (all-NULL tuples); they land in whichever cluster is nearest by `‖c‖²`.
///
/// Fails with a typed [`ClusterError`] when `config.k == 0` or a point
/// activates a dimension outside `0..dim`.
pub fn kmeans(
    points: &[Vec<u32>],
    dim: usize,
    config: &KMeansConfig,
) -> Result<KMeansResult, ClusterError> {
    fault::check("cluster::kmeans")?;
    if config.k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    validate_points(points, dim)?;
    let n = points.len();
    let k = config.k.min(n.max(1));
    if n == 0 {
        return Ok(KMeansResult {
            assignments: Vec::new(),
            centroids: vec![vec![0.0; dim]; config.k],
            sizes: vec![0; config.k],
            inertia: 0.0,
            iterations: 0,
            histograms: Vec::new(),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let seeds = if config.plus_plus {
        seed_plus_plus(points, k, &mut rng)
    } else {
        seed_random(n, k, &mut rng)
    };
    let mut hist: Vec<Vec<u32>> = seeds.iter().map(|&i| hist_onehot(&points[i], dim)).collect();
    let mut count: Vec<u32> = vec![1; k];

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
        let norms: Vec<f64> = hist
            .iter()
            .zip(&inv)
            .map(|(h, &iv)| hist_norm2(h, iv))
            .collect();
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (best, _) = nearest_hist(p, &hist, &norms, &inv);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step (integer sums; `n < 2³²` is implied by the points
        // fitting in memory).
        let mut sums = vec![vec![0u32; dim]; k];
        let mut counts = vec![0u32; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for &d in p {
                sums[c][d as usize] += 1;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed empty cluster to the point farthest from its
                // centroid (against the mixed state: clusters before `c`
                // already hold this iteration's histograms).
                let inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
                let norms: Vec<f64> = hist
                    .iter()
                    .zip(&inv)
                    .map(|(h, &iv)| hist_norm2(h, iv))
                    .collect();
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let ca = assignments[a];
                        let cb = assignments[b];
                        let da = hist_dist2(&points[a], &hist[ca], norms[ca], inv[ca]);
                        let db = hist_dist2(&points[b], &hist[cb], norms[cb], inv[cb]);
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0);
                hist[c] = hist_onehot(&points[far], dim);
                count[c] = 1;
            } else {
                std::mem::swap(&mut hist[c], &mut sums[c]);
                count[c] = counts[c];
            }
        }
    }

    // Final stats.
    let inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
    let norms: Vec<f64> = hist
        .iter()
        .zip(&inv)
        .map(|(h, &iv)| hist_norm2(h, iv))
        .collect();
    let mut inertia = 0.0;
    let mut sizes = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let (best, d) = nearest_hist(p, &hist, &norms, &inv);
        assignments[i] = best;
        sizes[best] += 1;
        inertia += d;
    }
    let mut centroids: Vec<Vec<f64>> = hist
        .iter()
        .zip(&count)
        .map(|(h, &m)| h.iter().map(|&v| f64::from(v) / f64::from(m)).collect())
        .collect();
    // Pad to the requested k so callers can index by cluster id uniformly
    // (histograms stay unpadded: padded clusters never ran Lloyd).
    while centroids.len() < config.k {
        centroids.push(vec![0.0; dim]);
        sizes.push(0);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        sizes,
        inertia,
        iterations,
        histograms: hist.into_iter().zip(count).collect(),
    })
}

/// The one-hot integer histogram of a sparse point (cluster size 1).
fn hist_onehot(point: &[u32], dim: usize) -> Vec<u32> {
    let mut h = vec![0u32; dim];
    for &d in point {
        h[d as usize] = 1;
    }
    h
}

/// `‖c‖²` of histogram centroid `(h, 1/m)`: `Σ_d h_d² · (1/m)²`, summed
/// in ascending dimension order — the canonical order both kernels use.
fn hist_norm2(hist: &[u32], inv: f64) -> f64 {
    let mut sum = 0.0;
    for &v in hist {
        let f = f64::from(v);
        sum += f * f;
    }
    sum * inv * inv
}

/// Squared distance between a sparse point and a histogram centroid:
/// `(‖c‖² − 2·dot·(1/m) + |x|).max(0)` with an exact integer `dot`.
fn hist_dist2(point: &[u32], hist: &[u32], norm2: f64, inv: f64) -> f64 {
    let mut dot: u64 = 0;
    for &d in point {
        dot += u64::from(hist[d as usize]);
    }
    (norm2 - 2.0 * dot as f64 * inv + point.len() as f64).max(0.0)
}

fn nearest_hist(point: &[u32], hists: &[Vec<u32>], norms: &[f64], invs: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, h) in hists.iter().enumerate() {
        let d = hist_dist2(point, h, norms[c], invs[c]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Rejects points referencing dimensions outside `0..dim` — they would
/// otherwise index out of bounds in the centroid update.
pub(crate) fn validate_points(points: &[Vec<u32>], dim: usize) -> Result<(), ClusterError> {
    for (i, p) in points.iter().enumerate() {
        for &d in p {
            if d as usize >= dim {
                return Err(ClusterError::DimensionOutOfRange {
                    point: i,
                    dim: d,
                    space: dim,
                });
            }
        }
    }
    Ok(())
}

/// Squared distance between sparse point and dense centroid with cached
/// `‖c‖²`.
fn dist2(point: &[u32], centroid: &[f64], norm2: f64) -> f64 {
    let mut dot = 0.0;
    for &d in point {
        dot += centroid[d as usize];
    }
    (norm2 - 2.0 * dot + point.len() as f64).max(0.0)
}

fn nearest(point: &[u32], centroids: &[Vec<f64>], norms: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(point, centroid, norms[c]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn seed_random(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    // Partial Fisher-Yates over 0..n.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.random_range(0..n - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

fn seed_plus_plus(points: &[Vec<u32>], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = points.len();
    let mut seeds = Vec::with_capacity(k);
    let mut last = rng.random_range(0..n);
    seeds.push(last);
    // Squared distance of each point to its nearest chosen seed. In one-hot
    // space the distance between two sparse points x,y is |x| + |y| − 2|x∩y|.
    let mut d2 = vec![f64::INFINITY; n];
    for _ in 1..k {
        for (i, p) in points.iter().enumerate() {
            let d = sparse_dist2(p, &points[last]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        seeds.push(next);
        last = next;
    }
    seeds
}

// --- Packed-code kernel -------------------------------------------------
//
// The packed variants mirror the sparse reference implementation above
// *operation for operation*: the histogram formulation makes the per-point
// inner loop a pure integer accumulation (exact in any order — the
// reference's u64 scalar dot and the packed kernel's u32 strip adds
// compute the same integers), every floating-point combine happens in the
// same canonical expression (`‖c‖² − 2·dot·(1/m) + |x|`, norms summed in
// ascending dimension order), every RNG draw happens at the same point in
// the control flow, and ties break identically. The results are therefore
// bit-equal to `kmeans` / `KMeansResult::assign_all` on the same data —
// the reference path stays available as the oracle the packed path is
// tested against.
//
// The speed comes from the data layout: no per-tuple heap allocation,
// contiguous u8/u16 rows, and a per-iteration transposed centroid-count
// table (`lut[d·k + c] = hist[c][d]` as u32, k ≤ dozens, so it lives in
// L1) that turns the assignment step's inner loop into a dense integer
// `dot[0..k] += lut[base..base+k]` strip add the compiler is free to
// vectorize four lanes wide. `PackedMatrix::from_columns` refuses inputs
// with `rows·attrs > u32::MAX`, so a u32 dot accumulator cannot overflow.
//
// The f64 LUT helpers below the integer ones remain in use by the
// mini-batch kernel (whose learning-rate centroids are genuinely dense
// floats) and by out-of-sample assignment against final `f64` centroids.

use crate::packed::{CodeWord, PackedMatrix, PackedView};


/// Minimum rows per worker chunk in the packed kernel. Below this the
/// per-chunk partials (k histograms of `dim` u32s each) cost more to
/// allocate and merge than the row walk saves, so short partitions stay
/// on one chunk regardless of the requested thread count.
pub(crate) const KMEANS_PAR_MIN_CHUNK: usize = 256;

/// [`kmeans`] over a [`PackedMatrix`] — bit-identical results, packed
/// storage. See the module comment above for why the bits match.
pub fn kmeans_packed(
    matrix: &PackedMatrix,
    config: &KMeansConfig,
) -> Result<KMeansResult, ClusterError> {
    kmeans_packed_warm(matrix, config, None)
}

/// [`kmeans_packed`] with optional warm-start centroid histograms.
///
/// When `initial` supplies at least `min(k, n)` histograms of the right
/// dimensionality with non-zero cluster sizes, Lloyd iterations start
/// from them (first `min(k, n)` taken) instead of seeding — the
/// incremental-reuse path feeds a previous build's
/// [`KMeansResult::histograms`] here. Unusable `initial` values (too
/// few clusters, wrong dimensionality, zero sizes, or counts large
/// enough to overflow the u32 dot accumulator) fall back to cold
/// seeding. Warm starts converge faster but are *not* bit-identical to
/// a cold run.
pub fn kmeans_packed_warm(
    matrix: &PackedMatrix,
    config: &KMeansConfig,
    initial: Option<&[(Vec<u32>, u32)]>,
) -> Result<KMeansResult, ClusterError> {
    fault::check("cluster::kmeans")?;
    if config.k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    matrix.dispatch(|view| match view {
        PackedView::U8(codes) => kmeans_packed_impl(codes, matrix, config, initial),
        PackedView::U16(codes) => kmeans_packed_impl(codes, matrix, config, initial),
    })
}

/// Assigns every row of `matrix` to its nearest centroid — the packed
/// mirror of [`KMeansResult::assign_all`] (bit-identical assignments).
pub fn assign_all_packed(result: &KMeansResult, matrix: &PackedMatrix) -> Vec<usize> {
    let norms: Vec<f64> = result
        .centroids
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum())
        .collect();
    matrix.dispatch(|view| match view {
        PackedView::U8(codes) => assign_all_packed_impl(codes, matrix, &result.centroids, &norms),
        PackedView::U16(codes) => assign_all_packed_impl(codes, matrix, &result.centroids, &norms),
    })
}

fn kmeans_packed_impl<T: CodeWord>(
    codes: &[T],
    m: &PackedMatrix,
    config: &KMeansConfig,
    initial: Option<&[(Vec<u32>, u32)]>,
) -> Result<KMeansResult, ClusterError> {
    let n = m.rows();
    let dim = m.dim();
    let attrs = m.attrs();
    let k = config.k.min(n.max(1));
    if n == 0 {
        return Ok(KMeansResult {
            assignments: Vec::new(),
            centroids: vec![vec![0.0; dim]; config.k],
            sizes: vec![0; config.k],
            inertia: 0.0,
            iterations: 0,
            histograms: Vec::new(),
        });
    }
    let row = |i: usize| &codes[i * attrs..(i + 1) * attrs];

    // A warm start is usable when it covers k clusters of this space's
    // dimensionality, every cluster is non-empty, and no histogram entry
    // could overflow the u32 dot accumulator (`attrs · max_entry`).
    let warm = initial.filter(|init| {
        init.len() >= k
            && init.iter().all(|(h, count)| {
                h.len() == dim
                    && *count > 0
                    && h.iter().all(|&v| (v as usize).saturating_mul(attrs) <= u32::MAX as usize)
            })
    });
    let (mut hist, mut count): (Vec<Vec<u32>>, Vec<u32>) = match warm {
        Some(init) => init.iter().take(k).cloned().unzip(),
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let seeds = if config.plus_plus {
                packed_seed_plus_plus(codes, m, k, &mut rng)
            } else {
                seed_random(n, k, &mut rng)
            };
            (
                seeds.iter().map(|&i| packed_hist_onehot(row(i), m, dim)).collect(),
                vec![1; k],
            )
        }
    };

    // Flatten each row's active one-hot dimensions once (CSR layout):
    // every Lloyd iteration then walks plain `u32` dim lists instead of
    // re-deriving attribute offsets and NULL checks from the packed
    // codes, and `dims.len()` doubles as the row's |x| term.
    let mut row_dims: Vec<u32> = Vec::with_capacity(n * attrs);
    let mut row_ends: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n {
        for (a, &code) in row(i).iter().enumerate() {
            if code != T::NULL {
                row_dims.push((m.offset(a) + code.index()) as u32);
            }
        }
        row_ends.push(row_dims.len() as u32);
    }

    let threads = config.threads.max(1);
    // `usize::MAX` = "not yet assigned": the first pass moves every row
    // into its cluster, priming the running histogram below.
    let mut assignments = vec![usize::MAX; n];
    // Running assignment histogram, maintained incrementally: each pass
    // merges per-chunk wrapping deltas (rows that changed cluster) instead
    // of rebuilding the `k × dim` sums from scratch — bit-identical by the
    // group argument on `assign_scatter_rows_with`, and nearly free once
    // Lloyd stops moving rows.
    let mut sums = vec![0u32; k * dim];
    let mut counts = vec![0u32; k];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step. The centroid constants are padded to the LUT
        // stride with (+inf, 0.0) so the fused kernel's padded lanes can
        // never win the argmin (see `assign_rows_with`).
        let stride = dot_stride(k);
        let mut inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
        let mut norms: Vec<f64> = hist
            .iter()
            .zip(&inv)
            .map(|(h, &iv)| hist_norm2(h, iv))
            .collect();
        norms.resize(stride, f64::INFINITY);
        inv.resize(stride, 0.0);
        let lut = build_int_lut(&hist, dim);
        // Assignment fused with the incremental update scatter: each chunk
        // reports which of its rows moved between clusters as wrapping
        // `(counts, sums)` deltas against the previous assignment. The
        // partials merge in chunk order into the running histogram;
        // because every merged quantity is a wrapping integer sum, the
        // result is byte-identical to a from-scratch scatter at any
        // thread count (see `assign_scatter_rows_with`).
        let chunk = |range: std::ops::Range<usize>| {
            // Resolve the kernel family once per chunk, not per row: the
            // batched kernel keeps its dot accumulators in registers for
            // the whole chunk. The per-chunk delta histogram is one flat
            // `k × dim` array — contiguous scatter targets, and the chunk
            // merge below is a single strip add.
            let disp = dbex_stats::simd::dispatch();
            let mut part_assign = Vec::with_capacity(range.len());
            let mut part_counts = vec![0u32; k];
            let mut part_sums = vec![0u32; k * dim];
            assign_scatter_rows_with(
                disp,
                &row_dims,
                &row_ends,
                range,
                &lut,
                &norms,
                &inv,
                dim,
                &assignments,
                &mut part_assign,
                &mut part_counts,
                &mut part_sums,
            );
            (part_assign, part_counts, part_sums)
        };
        let parts = dbex_par::par_map_chunks(threads, n, KMEANS_PAR_MIN_CHUNK, chunk);
        let ranges = dbex_par::chunk_ranges(n, threads, KMEANS_PAR_MIN_CHUNK);
        let mut changed = false;
        for (range, (part_assign, part_counts, part_sums)) in ranges.into_iter().zip(parts) {
            for (slot, best) in assignments[range].iter_mut().zip(part_assign) {
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            for (c, pc) in counts.iter_mut().zip(&part_counts) {
                *c = c.wrapping_add(*pc);
            }
            dbex_stats::simd::add_assign_u32(&mut sums, &part_sums);
        }
        if !changed && iter > 0 {
            break;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed empty cluster to the point farthest from its
                // centroid (mixed state, mirroring the reference).
                let inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
                let norms: Vec<f64> = hist
                    .iter()
                    .zip(&inv)
                    .map(|(h, &iv)| hist_norm2(h, iv))
                    .collect();
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let ca = assignments[a];
                        let cb = assignments[b];
                        let da =
                            packed_hist_dist2(row(a), m, &hist[ca], norms[ca], inv[ca]);
                        let db =
                            packed_hist_dist2(row(b), m, &hist[cb], norms[cb], inv[cb]);
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0);
                hist[c] = packed_hist_onehot(row(far), m, dim);
                count[c] = 1;
            } else {
                hist[c].copy_from_slice(&sums[c * dim..(c + 1) * dim]);
                count[c] = counts[c];
            }
        }
    }

    // Final stats.
    let stride = dot_stride(k);
    let mut inv: Vec<f64> = count.iter().map(|&m| 1.0 / f64::from(m)).collect();
    let mut norms: Vec<f64> = hist
        .iter()
        .zip(&inv)
        .map(|(h, &iv)| hist_norm2(h, iv))
        .collect();
    norms.resize(stride, f64::INFINITY);
    inv.resize(stride, 0.0);
    let lut = build_int_lut(&hist, dim);
    // Nearest-centroid lookups chunk like the iteration loop; the f64
    // inertia fold stays sequential in row order (float addition is not
    // associative, so only the per-row (best, d) pairs parallelize).
    let parts = dbex_par::par_map_chunks(threads, n, KMEANS_PAR_MIN_CHUNK, |range| {
        let disp = dbex_stats::simd::dispatch();
        let mut out = Vec::with_capacity(range.len());
        assign_rows_with(disp, &row_dims, &row_ends, range, &lut, &norms, &inv, &mut out);
        out
    });
    let mut inertia = 0.0;
    let mut sizes = vec![0usize; k];
    for (slot, (best, d)) in assignments.iter_mut().zip(parts.into_iter().flatten()) {
        *slot = best;
        sizes[best] += 1;
        inertia += d;
    }
    let mut centroids: Vec<Vec<f64>> = hist
        .iter()
        .zip(&count)
        .map(|(h, &m)| h.iter().map(|&v| f64::from(v) / f64::from(m)).collect())
        .collect();
    // Pad to the requested k so callers can index by cluster id uniformly.
    while centroids.len() < config.k {
        centroids.push(vec![0.0; dim]);
        sizes.push(0);
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        sizes,
        inertia,
        iterations,
        histograms: hist.into_iter().zip(count).collect(),
    })
}

fn assign_all_packed_impl<T: CodeWord>(
    codes: &[T],
    m: &PackedMatrix,
    centroids: &[Vec<f64>],
    norms: &[f64],
) -> Vec<usize> {
    let attrs = m.attrs();
    let lut = build_lut(centroids, m.dim());
    let mut dot = vec![0.0f64; centroids.len()];
    (0..m.rows())
        .map(|i| {
            accumulate_dots(&codes[i * attrs..(i + 1) * attrs], m, &lut, &mut dot);
            nearest_from_dots(norms, &dot, m.len_of(i) as f64).0
        })
        .collect()
}

/// Transposed centroid table: `lut[d·k + c] = centroids[c][d]`, so one
/// active dimension contributes a contiguous k-wide strip of partial dots.
pub(crate) fn build_lut(centroids: &[Vec<f64>], dim: usize) -> Vec<f64> {
    let k = centroids.len();
    let mut lut = vec![0.0; dim * k];
    for (c, cent) in centroids.iter().enumerate() {
        for (d, &v) in cent.iter().enumerate() {
            lut[d * k + c] = v;
        }
    }
    lut
}

/// Accumulates `dot[c] = Σ_{d∈x} centroids[c][d]` for all centroids at
/// once. Per centroid, additions happen in ascending attribute order —
/// exactly the order `dist2` walks a sorted sparse point — so each
/// `dot[c]` is bit-equal to the reference dot product.
#[inline]
pub(crate) fn accumulate_dots<T: CodeWord>(
    row: &[T],
    m: &PackedMatrix,
    lut: &[f64],
    dot: &mut [f64],
) {
    let k = dot.len();
    for v in dot.iter_mut() {
        *v = 0.0;
    }
    for (a, &code) in row.iter().enumerate() {
        if code != T::NULL {
            let base = (m.offset(a) + code.index()) * k;
            for (acc, &v) in dot.iter_mut().zip(&lut[base..base + k]) {
                *acc += v;
            }
        }
    }
}

/// `nearest` over precomputed dots (clamped distance, first-min ties).
#[inline]
pub(crate) fn nearest_from_dots(norms: &[f64], dot: &[f64], len: f64) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, (&n2, &dt)) in norms.iter().zip(dot).enumerate() {
        let d = (n2 - 2.0 * dt + len).max(0.0);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Transposed integer histogram table with padded stride:
/// `lut[d·stride + c] = hist[c][d]`, zero in the padding lanes. Half the
/// footprint of the f64 [`build_lut`], and because integer addition is
/// associative the strip adds are free to vectorize — eight u32 lanes
/// per 256-bit op instead of two f64 doublewords.
pub(crate) fn build_int_lut(hists: &[Vec<u32>], dim: usize) -> Vec<u32> {
    let ks = dot_stride(hists.len());
    let mut lut = vec![0u32; dim * ks];
    for (c, h) in hists.iter().enumerate() {
        for (d, &v) in h.iter().enumerate() {
            lut[d * ks + c] = v;
        }
    }
    lut
}

// `nearest` over precomputed integer dots lives in [`crate::simd`]
// (`nearest_from_int_dots_with`): it evaluates the canonical histogram
// expression `(norm2 − 2·dot·inv + len).max(0)` — identical to
// [`hist_dist2`] in the reference kernel (clamped, first-min ties) —
// with per-lane-exact SIMD variants behind the runtime dispatch.

/// The packed mirror of [`hist_dist2`]: single-point distance to one
/// histogram centroid, same canonical expression as
/// [`nearest_from_int_dots_with`]. The u32 dot cannot overflow because each
/// of the ≤ attrs active dimensions contributes at most the cluster
/// size, bounded by the `rows·attrs ≤ u32::MAX` gate at pack time.
#[inline]
pub(crate) fn packed_hist_dist2<T: CodeWord>(
    row: &[T],
    m: &PackedMatrix,
    hist: &[u32],
    norm2: f64,
    inv: f64,
) -> f64 {
    let mut dot = 0u32;
    for (a, &code) in row.iter().enumerate() {
        if code != T::NULL {
            dot += hist[m.offset(a) + code.index()];
        }
    }
    let len = row.iter().filter(|&&c| c != T::NULL).count() as f64;
    (norm2 - 2.0 * f64::from(dot) * inv + len).max(0.0)
}

/// The one-hot histogram (cluster size 1) of a packed row — the packed
/// mirror of [`hist_onehot`].
pub(crate) fn packed_hist_onehot<T: CodeWord>(
    row: &[T],
    m: &PackedMatrix,
    dim: usize,
) -> Vec<u32> {
    let mut h = vec![0u32; dim];
    for (a, &code) in row.iter().enumerate() {
        if code != T::NULL {
            h[m.offset(a) + code.index()] = 1;
        }
    }
    h
}

/// The one-hot (dense) centroid of a packed row.
pub(crate) fn packed_onehot<T: CodeWord>(row: &[T], m: &PackedMatrix, dim: usize) -> Vec<f64> {
    let mut c = vec![0.0; dim];
    for (a, &code) in row.iter().enumerate() {
        if code != T::NULL {
            c[m.offset(a) + code.index()] = 1.0;
        }
    }
    c
}

/// The packed mirror of [`sparse_dist2`]: `|x| + |y| − 2|x∩y|` with the
/// intersection counted as matching non-NULL `(attribute, code)` cells.
/// Pure integer arithmetic, so the cast is exact either way.
#[inline]
pub(crate) fn packed_sparse_dist2<T: CodeWord>(a: &[T], b: &[T], la: usize, lb: usize) -> f64 {
    let mut common = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x != T::NULL && x == y {
            common += 1;
        }
    }
    (la + lb - 2 * common) as f64
}

/// The packed mirror of [`seed_plus_plus`] (identical RNG draw sequence).
///
/// For `u8` matrices on an x86_64 SIMD dispatch the per-round distance
/// refresh runs column-major: the codes are transposed once, then each
/// non-NULL seed attribute folds `col == code` matches into a per-row
/// byte counter 16/32 rows at a time ([`crate::simd::byte_eq_accumulate`])
/// and the exact integer distances `min`-fold into `d2`
/// ([`crate::simd::seed_min_update`]). Both the distances and the
/// sampling scan are bit-identical to the row-wise loop — the scan and
/// every RNG draw go through the shared [`seed_sample`], so the chosen
/// seeds match the reference path exactly.
fn packed_seed_plus_plus<T: CodeWord>(
    codes: &[T],
    m: &PackedMatrix,
    k: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = m.rows();
    let attrs = m.attrs();
    let disp = dbex_stats::simd::dispatch();
    // The byte kernels need u8 codes, per-row match counts that fit a
    // byte (`common ≤ attrs`), and a vector unit that beats the
    // transpose overhead.
    if size_of::<T>() == 1
        && attrs > 0
        && attrs <= u8::MAX as usize
        && matches!(disp, SimdDispatch::Sse2 | SimdDispatch::Avx2)
    {
        // SAFETY: `size_of::<T>() == 1` means `T` is `u8` (`CodeWord` is
        // implemented for `u8` and `u16` only), so this is an identity
        // reinterpretation of the same initialized bytes.
        let bytes = unsafe { std::slice::from_raw_parts(codes.as_ptr().cast::<u8>(), codes.len()) };
        return packed_seed_plus_plus_u8(bytes, m, k, disp, rng);
    }
    let row = |i: usize| &codes[i * attrs..(i + 1) * attrs];
    let mut seeds = Vec::with_capacity(k);
    let mut last = rng.random_range(0..n);
    seeds.push(last);
    let mut d2 = vec![f64::INFINITY; n];
    for _ in 1..k {
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = packed_sparse_dist2(row(i), row(last), m.len_of(i), m.len_of(last));
            if d < *slot {
                *slot = d;
            }
        }
        let next = seed_sample(&d2, rng);
        seeds.push(next);
        last = next;
    }
    seeds
}

/// Column-major vectorized body of [`packed_seed_plus_plus`] (u8 codes).
fn packed_seed_plus_plus_u8(
    bytes: &[u8],
    m: &PackedMatrix,
    k: usize,
    disp: SimdDispatch,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = m.rows();
    let attrs = m.attrs();
    let lens = m.lens();
    // Transpose once so each attribute's cells are contiguous for the
    // byte-compare kernel; k−1 rounds then stream `attrs` columns each.
    let mut cols = vec![0u8; n * attrs];
    for (i, row) in bytes.chunks_exact(attrs).enumerate() {
        for (a, &c) in row.iter().enumerate() {
            cols[a * n + i] = c;
        }
    }
    let mut common = vec![0u8; n];
    let mut seeds = Vec::with_capacity(k);
    let mut last = rng.random_range(0..n);
    seeds.push(last);
    let mut d2 = vec![f64::INFINITY; n];
    for _ in 1..k {
        common.fill(0);
        let seed_row = &bytes[last * attrs..(last + 1) * attrs];
        for (a, &t) in seed_row.iter().enumerate() {
            // A NULL cell never matches a non-NULL code, and NULL seed
            // attributes contribute nothing — same intersection rule as
            // `packed_sparse_dist2`.
            if t != u8::MAX {
                crate::simd::byte_eq_accumulate(disp, &cols[a * n..(a + 1) * n], t, &mut common);
            }
        }
        crate::simd::seed_min_update(disp, &common, lens, lens[last], &mut d2);
        let next = seed_sample(&d2, rng);
        seeds.push(next);
        last = next;
    }
    seeds
}

/// One k-means++ sampling draw over the current distance vector — shared
/// by the row-wise and column-major seeding paths so their RNG sequences
/// are identical by construction.
fn seed_sample(d2: &[f64], rng: &mut StdRng) -> usize {
    let n = d2.len();
    let total: f64 = d2.iter().sum();
    if total <= 0.0 {
        rng.random_range(0..n)
    } else {
        let mut target = rng.random_range(0.0..total);
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        chosen
    }
}

/// Squared distance between two sparse binary points (sorted dim lists).
fn sparse_dist2(a: &[u32], b: &[u32]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (a.len() + b.len() - 2 * common) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious groups: points activating dims {0,2} vs dims {1,3}.
    fn two_groups(n_each: usize) -> Vec<Vec<u32>> {
        let mut pts = Vec::new();
        for _ in 0..n_each {
            pts.push(vec![0, 2]);
            pts.push(vec![1, 3]);
        }
        pts
    }

    #[test]
    fn separates_two_groups() {
        let pts = two_groups(20);
        let result = kmeans(
            &pts,
            4,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // All even-index points together, all odd-index points together.
        let c0 = result.assignments[0];
        let c1 = result.assignments[1];
        assert_ne!(c0, c1);
        for (i, &a) in result.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { c0 } else { c1 });
        }
        assert!(result.inertia < 1e-9);
        assert_eq!(result.sizes.iter().sum::<usize>(), 40);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_groups(10);
        let cfg = KMeansConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        };
        let a = kmeans(&pts, 4, &cfg)
        .unwrap();
        let b = kmeans(&pts, 4, &cfg)
        .unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn fewer_points_than_k() {
        let pts = vec![vec![0u32], vec![1u32]];
        let result = kmeans(
            &pts,
            2,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.centroids.len(), 5);
        assert_eq!(result.sizes.len(), 5);
        assert_eq!(result.sizes.iter().sum::<usize>(), 2);
        assert_ne!(result.assignments[0], result.assignments[1]);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], 3, &KMeansConfig::default())
        .unwrap();
        assert!(result.assignments.is_empty());
        assert_eq!(result.inertia, 0.0);
    }

    #[test]
    fn out_of_sample_assignment() {
        let pts = two_groups(20);
        let result = kmeans(
            &pts,
            4,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let a = result.assign(&[0, 2]);
        let b = result.assign(&[1, 3]);
        assert_eq!(a, result.assignments[0]);
        assert_eq!(b, result.assignments[1]);
        assert_eq!(result.assign_all(&pts), result.assignments);
    }

    #[test]
    fn plus_plus_no_worse_than_random_on_structured_data() {
        // Three groups; compare final inertia.
        let mut pts = Vec::new();
        for _ in 0..30 {
            pts.push(vec![0u32, 3]);
            pts.push(vec![1u32, 4]);
            pts.push(vec![2u32, 5]);
        }
        let pp = kmeans(
            &pts,
            6,
            &KMeansConfig {
                k: 3,
                plus_plus: true,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mut best_rand = f64::INFINITY;
        for seed in 0..5 {
            let r = kmeans(
                &pts,
                6,
                &KMeansConfig {
                    k: 3,
                    plus_plus: false,
                    seed,
                    ..Default::default()
                },
            )
        .unwrap();
            best_rand = best_rand.min(r.inertia);
        }
        assert!(pp.inertia <= best_rand + 1e-9);
    }

    #[test]
    fn sparse_dist2_matches_definition() {
        assert_eq!(sparse_dist2(&[0, 2], &[0, 2]), 0.0);
        assert_eq!(sparse_dist2(&[0, 2], &[1, 3]), 4.0);
        assert_eq!(sparse_dist2(&[0, 2], &[0, 3]), 2.0);
        assert_eq!(sparse_dist2(&[], &[1]), 1.0);
    }

    #[test]
    fn all_identical_points_single_effective_cluster() {
        let pts = vec![vec![1u32, 5]; 12];
        let result = kmeans(
            &pts,
            8,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.inertia < 1e-9);
        // Every point in the same cluster.
        assert!(result.assignments.iter().all(|&a| a == result.assignments[0]));
    }
}
