//! Explicit SIMD variants of the packed k-means strip-add kernel.
//!
//! [`accumulate_int_dots_with`] is the innermost loop of the packed assignment
//! step: for every active one-hot dimension of a row it adds a contiguous
//! `dot_stride(k)`-wide strip of the transposed centroid-count LUT into
//! the per-centroid dot accumulators. The accumulation is pure u32
//! integer arithmetic — associative, so lane order is free — which lets
//! each vector variant produce **bit-identical** dots to the scalar
//! reference (kept always-compiled below, and still pinned against the
//! one-hot oracle by the kmeans tests).
//!
//! Dispatch comes from [`dbex_stats::simd::dispatch`] (runtime feature
//! detection + the `DBEX_SIMD` override); the `*_with` variant takes an
//! explicit [`SimdDispatch`] so A/B tests can exercise every path in one
//! process.
//!
//! The other half of the fused assign+update loop — the centroid
//! histogram scatter `sums[best][d] += 1` — indexes arbitrary dimensions
//! per row and stays scalar: x86 gains gather/scatter for this shape only
//! at AVX-512, which the fleet baseline does not assume. Instead the
//! scatter is *incremental* ([`assign_scatter_rows_with`]): only rows
//! whose assignment changed emit wrapping deltas against the previous
//! pass, so the scatter cost decays with Lloyd convergence while the LUT
//! strip adds keep the vector width.

use dbex_stats::simd::SimdDispatch;

/// Lane width of the integer dot strips: the LUT stride is padded to a
/// multiple of this so the strip adds can walk fixed-size chunks with no
/// scalar remainder loop. Eight u32 lanes is one 256-bit vector (or two
/// 128-bit ones), and the fig8 shape (k = 15 → stride 16) fits in two.
pub(crate) const DOT_STRIP: usize = 8;

/// Rounds a centroid count up to the padded LUT stride.
#[inline]
pub(crate) fn dot_stride(k: usize) -> usize {
    k.div_ceil(DOT_STRIP).max(1) * DOT_STRIP
}

/// `dot[c] = Σ_{d∈dims} lut[d·ks + c]` over a row's pre-flattened active
/// one-hot dimensions, where `ks = dot.len()` is the padded LUT stride
/// (`dot_stride(k)`; padding lanes accumulate zeros). Strides that are
/// not a multiple of [`DOT_STRIP`] fall back to scalar.
///
/// The dispatch is an explicit argument so row loops resolve it once per
/// chunk — per-row resolution costs an atomic load and a call that LLVM
/// cannot unswitch out of the hot loop.
#[inline]
pub(crate) fn accumulate_int_dots_with(
    d: SimdDispatch,
    dims: &[u32],
    lut: &[u32],
    dot: &mut [u32],
) {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 if dot.len().is_multiple_of(DOT_STRIP) => {
            // SAFETY: Avx2 is only selected when the CPU reports the avx2
            // feature (dbex_stats::simd::detected clamps DBEX_SIMD).
            unsafe { accumulate_int_dots_avx2(dims, lut, dot) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 if dot.len().is_multiple_of(DOT_STRIP) => {
            // SAFETY: SSE2 is the x86_64 baseline — always available.
            unsafe { accumulate_int_dots_sse2(dims, lut, dot) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdDispatch::Neon if dot.len().is_multiple_of(DOT_STRIP) => {
            accumulate_int_dots_neon(dims, lut, dot)
        }
        _ => accumulate_int_dots_scalar(dims, lut, dot),
    }
}

/// The scalar reference: zero the accumulators, then per active dimension
/// add the k-wide LUT strip chunk by chunk. Exactly the integers every
/// vector variant computes.
#[inline]
pub(crate) fn accumulate_int_dots_scalar(dims: &[u32], lut: &[u32], dot: &mut [u32]) {
    let ks = dot.len();
    for v in dot.iter_mut() {
        *v = 0;
    }
    for &d in dims {
        let base = d as usize * ks;
        let strip = &lut[base..base + ks];
        for (acc, s) in dot
            .chunks_exact_mut(DOT_STRIP)
            .zip(strip.chunks_exact(DOT_STRIP))
        {
            for i in 0..DOT_STRIP {
                acc[i] += s[i];
            }
        }
    }
}

/// AVX2: accumulators live in 256-bit registers across the whole `dims`
/// walk — 16 lanes (two registers) per pass, so the common CAD shape
/// (k ≤ 16 → stride 16) runs in a single pass with zero accumulator
/// memory traffic. Strips are taken through bounds-checked slices, so an
/// out-of-range dimension panics exactly like the scalar path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_int_dots_avx2(dims: &[u32], lut: &[u32], dot: &mut [u32]) {
    use std::arch::x86_64::*;
    let ks = dot.len();
    let mut c = 0usize;
    while c + 2 * DOT_STRIP <= ks {
        // SAFETY: each load reads 8 u32 from inside the bounds-checked
        // 16-lane `strip` slice; the stores write inside `dot`
        // (c + 16 <= ks = dot.len()). loadu/storeu are unaligned-safe.
        unsafe {
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            for &d in dims {
                let base = d as usize * ks + c;
                let strip = &lut[base..base + 2 * DOT_STRIP];
                let p = strip.as_ptr();
                acc0 = _mm256_add_epi32(acc0, _mm256_loadu_si256(p as *const __m256i));
                acc1 = _mm256_add_epi32(acc1, _mm256_loadu_si256(p.add(8) as *const __m256i));
            }
            _mm256_storeu_si256(dot.as_mut_ptr().add(c) as *mut __m256i, acc0);
            _mm256_storeu_si256(dot.as_mut_ptr().add(c + 8) as *mut __m256i, acc1);
        }
        c += 2 * DOT_STRIP;
    }
    if c < ks {
        // The stride is a multiple of 8, so what remains is one 8-lane chunk.
        // SAFETY: as above with an 8-lane strip slice; c + 8 <= ks.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            for &d in dims {
                let base = d as usize * ks + c;
                let strip = &lut[base..base + DOT_STRIP];
                acc = _mm256_add_epi32(acc, _mm256_loadu_si256(strip.as_ptr() as *const __m256i));
            }
            _mm256_storeu_si256(dot.as_mut_ptr().add(c) as *mut __m256i, acc);
        }
    }
}

/// SSE2: same register-resident structure at 128-bit width — 8 lanes (two
/// registers) per pass over `dims`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn accumulate_int_dots_sse2(dims: &[u32], lut: &[u32], dot: &mut [u32]) {
    use std::arch::x86_64::*;
    let ks = dot.len();
    let mut c = 0usize;
    while c < ks {
        // SAFETY: each load reads 4 u32 from inside the bounds-checked
        // 8-lane `strip` slice; stores write inside `dot` (c + 8 <= ks,
        // since ks is a multiple of 8). Unaligned ops throughout.
        unsafe {
            let mut acc0 = _mm_setzero_si128();
            let mut acc1 = _mm_setzero_si128();
            for &d in dims {
                let base = d as usize * ks + c;
                let strip = &lut[base..base + DOT_STRIP];
                let p = strip.as_ptr();
                acc0 = _mm_add_epi32(acc0, _mm_loadu_si128(p as *const __m128i));
                acc1 = _mm_add_epi32(acc1, _mm_loadu_si128(p.add(4) as *const __m128i));
            }
            _mm_storeu_si128(dot.as_mut_ptr().add(c) as *mut __m128i, acc0);
            _mm_storeu_si128(dot.as_mut_ptr().add(c + 4) as *mut __m128i, acc1);
        }
        c += DOT_STRIP;
    }
}

/// NEON: 8 lanes (two 128-bit registers) per pass, mirroring the SSE2
/// shape. NEON is baseline on aarch64, so no runtime gate is needed.
#[cfg(target_arch = "aarch64")]
fn accumulate_int_dots_neon(dims: &[u32], lut: &[u32], dot: &mut [u32]) {
    use std::arch::aarch64::*;
    let ks = dot.len();
    let mut c = 0usize;
    while c < ks {
        // SAFETY: each vld1q_u32 reads 4 u32 from inside the
        // bounds-checked 8-lane `strip` slice; vst1q_u32 writes inside
        // `dot` (c + 8 <= ks, ks a multiple of 8).
        unsafe {
            let mut acc0 = vdupq_n_u32(0);
            let mut acc1 = vdupq_n_u32(0);
            for &d in dims {
                let base = d as usize * ks + c;
                let strip = &lut[base..base + DOT_STRIP];
                let p = strip.as_ptr();
                acc0 = vaddq_u32(acc0, vld1q_u32(p));
                acc1 = vaddq_u32(acc1, vld1q_u32(p.add(4)));
            }
            vst1q_u32(dot.as_mut_ptr().add(c), acc0);
            vst1q_u32(dot.as_mut_ptr().add(c + 4), acc1);
        }
        c += DOT_STRIP;
    }
}

/// First-minimum of the canonical clamped histogram distance over all
/// candidates: `argmin_c (norms[c] − 2·dot[c]·invs[c] + len).max(0)`,
/// strict-less first-min ties — the assignment step's other hot loop.
///
/// The distances are f64, but each candidate's value is an *independent
/// per-lane expression*: the vector variants evaluate exactly the scalar
/// operation sequence (`(norms − (2·dotf)·invs) + len`, then clamp) in
/// each lane, and the u32→f64 conversions are exact, so every lane bit
/// equals its scalar counterpart. Only the argmin is a cross-lane
/// reduction, and it stays a scalar first-min scan over the lane values,
/// preserving the tie-break. (The clamp cannot produce `-0.0`: `norms`
/// are sums of squares and `len ≥ 0`, so `max` is unambiguous.)
///
/// Like [`accumulate_int_dots_with`], takes the dispatch explicitly so
/// callers hoist the resolution out of their row loops.
#[inline]
pub(crate) fn nearest_from_int_dots_with(
    d: SimdDispatch,
    norms: &[f64],
    invs: &[f64],
    dot: &[u32],
    len: f64,
) -> (usize, f64) {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 if invs.len() >= norms.len() && dot.len() >= norms.len() => {
            // SAFETY: Avx2 is only selected when the CPU reports the avx2
            // feature (dbex_stats::simd::detected clamps DBEX_SIMD).
            unsafe { nearest_int_avx2(norms, invs, dot, len) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 if invs.len() >= norms.len() && dot.len() >= norms.len() => {
            // SAFETY: SSE2 is the x86_64 baseline — always available.
            unsafe { nearest_int_sse2(norms, invs, dot, len) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdDispatch::Neon if invs.len() >= norms.len() && dot.len() >= norms.len() => {
            nearest_int_neon(norms, invs, dot, len)
        }
        _ => nearest_int_scalar(norms, invs, dot, len, 0, 0, f64::INFINITY),
    }
}

/// The scalar reference (and the vector variants' tail loop): first-min
/// scan from `start` carrying the running best state.
#[inline]
fn nearest_int_scalar(
    norms: &[f64],
    invs: &[f64],
    dot: &[u32],
    len: f64,
    start: usize,
    mut best: usize,
    mut best_d: f64,
) -> (usize, f64) {
    for (c, ((&n2, &iv), &dt)) in norms.iter().zip(invs).zip(dot).enumerate().skip(start) {
        let d = (n2 - 2.0 * f64::from(dt) * iv + len).max(0.0);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// AVX2: four candidate distances per 256-bit op. The exact u32→f64
/// conversion flips the sign bit (`u xor 2³¹` reinterpreted as i32 is
/// `u − 2³¹`), converts, and adds `2³¹` back — both steps exact in f64,
/// so every lane bit-equals `f64::from(u)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn nearest_int_avx2(norms: &[f64], invs: &[f64], dot: &[u32], len: f64) -> (usize, f64) {
    use std::arch::x86_64::*;
    let k = norms.len();
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    let mut c = 0usize;
    // SAFETY: every load reads 4 elements from inside the bounds-checked
    // slices below (c + 4 <= k and invs/dot are at least k long, checked
    // by the dispatcher). loadu/storeu are unaligned-safe.
    unsafe {
        let two = _mm256_set1_pd(2.0);
        let lenv = _mm256_set1_pd(len);
        let zero = _mm256_setzero_pd();
        let sign = _mm_set1_epi32(i32::MIN);
        let two31 = _mm256_set1_pd(2_147_483_648.0);
        while c + 4 <= k {
            let du = _mm_loadu_si128(dot[c..c + 4].as_ptr() as *const __m128i);
            let dotf = _mm256_add_pd(_mm256_cvtepi32_pd(_mm_xor_si128(du, sign)), two31);
            let t = _mm256_mul_pd(
                _mm256_mul_pd(two, dotf),
                _mm256_loadu_pd(invs[c..c + 4].as_ptr()),
            );
            let dv = _mm256_max_pd(
                _mm256_add_pd(_mm256_sub_pd(_mm256_loadu_pd(norms[c..c + 4].as_ptr()), t), lenv),
                zero,
            );
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), dv);
            for (j, &dj) in lanes.iter().enumerate() {
                if dj < best_d {
                    best_d = dj;
                    best = c + j;
                }
            }
            c += 4;
        }
    }
    nearest_int_scalar(norms, invs, dot, len, c, best, best_d)
}

/// SSE2: two candidate distances per 128-bit op, same exact-conversion
/// trick as the AVX2 path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn nearest_int_sse2(norms: &[f64], invs: &[f64], dot: &[u32], len: f64) -> (usize, f64) {
    use std::arch::x86_64::*;
    let k = norms.len();
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    let mut c = 0usize;
    // SAFETY: every load reads 2 elements from inside the bounds-checked
    // slices below (c + 2 <= k; invs/dot at least k long, checked by the
    // dispatcher). _mm_loadl_epi64 reads exactly 8 bytes (two u32).
    unsafe {
        let two = _mm_set1_pd(2.0);
        let lenv = _mm_set1_pd(len);
        let zero = _mm_setzero_pd();
        let sign = _mm_set1_epi32(i32::MIN);
        let two31 = _mm_set1_pd(2_147_483_648.0);
        while c + 2 <= k {
            let du = _mm_loadl_epi64(dot[c..c + 2].as_ptr() as *const __m128i);
            let dotf = _mm_add_pd(_mm_cvtepi32_pd(_mm_xor_si128(du, sign)), two31);
            let t = _mm_mul_pd(_mm_mul_pd(two, dotf), _mm_loadu_pd(invs[c..c + 2].as_ptr()));
            let dv = _mm_max_pd(
                _mm_add_pd(_mm_sub_pd(_mm_loadu_pd(norms[c..c + 2].as_ptr()), t), lenv),
                zero,
            );
            let mut lanes = [0.0f64; 2];
            _mm_storeu_pd(lanes.as_mut_ptr(), dv);
            for (j, &dj) in lanes.iter().enumerate() {
                if dj < best_d {
                    best_d = dj;
                    best = c + j;
                }
            }
            c += 2;
        }
    }
    nearest_int_scalar(norms, invs, dot, len, c, best, best_d)
}

/// NEON: two candidate distances per 128-bit op. `vcvtq_f64_u64` over the
/// widened u32s is the exact unsigned conversion directly.
#[cfg(target_arch = "aarch64")]
fn nearest_int_neon(norms: &[f64], invs: &[f64], dot: &[u32], len: f64) -> (usize, f64) {
    use std::arch::aarch64::*;
    let k = norms.len();
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    let mut c = 0usize;
    // SAFETY: every vld1 reads 2 elements from inside the bounds-checked
    // slices below (c + 2 <= k; invs/dot at least k long, checked by the
    // dispatcher). NEON is baseline on aarch64.
    unsafe {
        let two = vdupq_n_f64(2.0);
        let lenv = vdupq_n_f64(len);
        let zero = vdupq_n_f64(0.0);
        while c + 2 <= k {
            let du = vld1_u32(dot[c..c + 2].as_ptr());
            let dotf = vcvtq_f64_u64(vmovl_u32(du));
            let t = vmulq_f64(vmulq_f64(two, dotf), vld1q_f64(invs[c..c + 2].as_ptr()));
            let dv = vmaxq_f64(
                vaddq_f64(vsubq_f64(vld1q_f64(norms[c..c + 2].as_ptr()), t), lenv),
                zero,
            );
            let mut lanes = [0.0f64; 2];
            vst1q_f64(lanes.as_mut_ptr(), dv);
            for (j, &dj) in lanes.iter().enumerate() {
                if dj < best_d {
                    best_d = dj;
                    best = c + j;
                }
            }
            c += 2;
        }
    }
    nearest_int_scalar(norms, invs, dot, len, c, best, best_d)
}

/// Batched fused assignment: for every row in `rows`, accumulate the
/// integer dots against `lut` and push `(nearest centroid, clamped
/// distance)` — the per-row composition of [`accumulate_int_dots_with`]
/// and [`nearest_from_int_dots_with`], but on the wide x86 paths the dot
/// buffer never touches memory: the strip accumulators stay in vector
/// registers through conversion, distance, and a vector argmin, and the
/// centroid constants load once per call instead of once per row.
///
/// Contract: `norms` and `invs` are padded to the LUT stride
/// (`dot_stride(k)`) with `(f64::INFINITY, 0.0)`. A padding lane then
/// evaluates to `(∞ − dot·0) + len = ∞`, which can never win either the
/// strict-less scalar scan or the vector min, so the padded scan returns
/// exactly the k-lane result.
///
/// Bit-identity of the fused paths:
/// * the integer dots are the same associative u32 sums;
/// * `inv2 = 2·inv` is exact (power-of-two scale), so `dotf·(2·inv)`
///   rounds the same real product as the scalar `(2·dotf)·inv`;
/// * every lane evaluates the canonical expression in the scalar order;
/// * the vector argmin takes the lane-wise min (same value as the scalar
///   scan's minimum) and then picks the **first** lane equal to it —
///   exactly the index the strict-less first-min scan returns. Distances
///   are never NaN (all inputs finite, padding is +∞), so min/cmp
///   ordering quirks don't apply.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assign_rows_with(
    d: SimdDispatch,
    row_dims: &[u32],
    row_ends: &[u32],
    rows: std::ops::Range<usize>,
    lut: &[u32],
    norms: &[f64],
    invs: &[f64],
    out: &mut Vec<(usize, f64)>,
) {
    assign_rows_sink(d, row_dims, row_ends, rows, lut, norms, invs, |_, _, best, best_d| {
        out.push((best, best_d))
    });
}

/// [`assign_rows_with`] fused with an **incremental** Lloyd update
/// scatter: per row, the nearest centroid goes into `part_assign`, and —
/// only when it differs from `prev[row]` — the row moves between
/// clusters in the flattened `k × dim` wrapping-delta histogram
/// `part_sums`/`part_counts` (add to the new cluster, subtract from the
/// old; `prev[row] == usize::MAX` marks "not yet assigned", first
/// iteration, which only adds). Applying the merged deltas to the
/// caller's running sums reproduces the from-scratch scatter exactly:
/// `u32` wrapping add/sub is a commutative group, so
/// `old_sums + (adds − subs)` equals the direct regrouped sum bit for
/// bit, in any chunk order — while rows that kept their cluster (the
/// vast majority once Lloyd starts converging) cost no scatter work at
/// all.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assign_scatter_rows_with(
    d: SimdDispatch,
    row_dims: &[u32],
    row_ends: &[u32],
    rows: std::ops::Range<usize>,
    lut: &[u32],
    norms: &[f64],
    invs: &[f64],
    dim: usize,
    prev: &[usize],
    part_assign: &mut Vec<usize>,
    part_counts: &mut [u32],
    part_sums: &mut [u32],
) {
    // One bounds pass over the range's dims hoists the per-increment
    // checks out of the histogram scatter (same shape as the dispatcher's
    // `lut_ok` scan): with every dim < `dim` and a full `k × dim` delta
    // matrix, `c·dim + dd` stays in bounds for every `c` the checked
    // `part_counts[c]` index admits.
    let scatter_ok = part_sums.len() >= part_counts.len().saturating_mul(dim)
        && dims_range(row_ends, &rows)
            .and_then(|(lo, hi)| row_dims.get(lo..hi))
            .is_some_and(|dims| dims.iter().all(|&dd| (dd as usize) < dim));
    if scatter_ok {
        assign_rows_sink(d, row_dims, row_ends, rows, lut, norms, invs, |i, dims, best, _| {
            part_assign.push(best);
            let old = prev[i];
            if old != best {
                part_counts[best] = part_counts[best].wrapping_add(1);
                let nb = best * dim;
                // SAFETY (both loops): `scatter_ok` verified `dd < dim` for
                // every dim in the range and `part_sums.len() ≥
                // part_counts.len()·dim`; the checked `part_counts[c]`
                // indexes above bound `best` and `old`, so
                // `c·dim + dd < (c + 1)·dim ≤ part_sums.len()`.
                if old == usize::MAX {
                    for &dd in dims {
                        let s = unsafe { part_sums.get_unchecked_mut(nb + dd as usize) };
                        *s = s.wrapping_add(1);
                    }
                } else {
                    part_counts[old] = part_counts[old].wrapping_sub(1);
                    let ob = old * dim;
                    for &dd in dims {
                        let s = unsafe { part_sums.get_unchecked_mut(nb + dd as usize) };
                        *s = s.wrapping_add(1);
                        let s = unsafe { part_sums.get_unchecked_mut(ob + dd as usize) };
                        *s = s.wrapping_sub(1);
                    }
                }
            }
        });
    } else {
        assign_rows_sink(d, row_dims, row_ends, rows, lut, norms, invs, |i, dims, best, _| {
            part_assign.push(best);
            let old = prev[i];
            if old != best {
                part_counts[best] = part_counts[best].wrapping_add(1);
                let sum = &mut part_sums[best * dim..(best + 1) * dim];
                for &dd in dims {
                    sum[dd as usize] = sum[dd as usize].wrapping_add(1);
                }
                if old != usize::MAX {
                    part_counts[old] = part_counts[old].wrapping_sub(1);
                    let sum = &mut part_sums[old * dim..(old + 1) * dim];
                    for &dd in dims {
                        sum[dd as usize] = sum[dd as usize].wrapping_sub(1);
                    }
                }
            }
        });
    }
}

/// Shared dispatch for the batched kernels. The sink — called as
/// `sink(row, dims, best, best_d)` in row order — is a generic parameter
/// so it inlines into the vector row loops.
#[allow(clippy::too_many_arguments)]
fn assign_rows_sink<F: FnMut(usize, &[u32], usize, f64)>(
    d: SimdDispatch,
    row_dims: &[u32],
    row_ends: &[u32],
    rows: std::ops::Range<usize>,
    lut: &[u32],
    norms: &[f64],
    invs: &[f64],
    sink: F,
) {
    let stride = norms.len();
    // One bounds pass over the range's dims hoists every per-strip check
    // out of the vector kernels: when the largest dim's LUT strip fits,
    // the kernels may load strips unchecked (their safety contract).
    let lut_ok = dims_range(row_ends, &rows)
        .and_then(|(lo, hi)| row_dims.get(lo..hi))
        .is_some_and(|dims| {
            let max = dims.iter().copied().max();
            max.is_none_or(|m| (m as usize + 1) * stride <= lut.len())
        });
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 if stride == 8 && invs.len() == stride && lut_ok => {
            // SAFETY: Avx2 is only selected when the CPU reports the avx2
            // feature (dbex_stats::simd::detected clamps DBEX_SIMD), and
            // `lut_ok` establishes the kernel's strip-bounds contract.
            unsafe { assign_rows_avx2::<1, F>(row_dims, row_ends, rows, lut, norms, invs, sink) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 if stride == 16 && invs.len() == stride && lut_ok => {
            // SAFETY: as above.
            unsafe { assign_rows_avx2::<2, F>(row_dims, row_ends, rows, lut, norms, invs, sink) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 if stride == 8 && invs.len() == stride && lut_ok => {
            // SAFETY: SSE2 is the x86_64 baseline — always available;
            // `lut_ok` establishes the kernel's strip-bounds contract.
            unsafe { assign_rows_sse2::<1, F>(row_dims, row_ends, rows, lut, norms, invs, sink) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 if stride == 16 && invs.len() == stride && lut_ok => {
            // SAFETY: as above.
            unsafe { assign_rows_sse2::<2, F>(row_dims, row_ends, rows, lut, norms, invs, sink) }
        }
        // Scalar, NEON, and uncommon strides: the two-step kernels per row
        // (identical results — the padded lanes lose every comparison).
        _ => {
            let mut sink = sink;
            let mut dot = vec![0u32; stride];
            for i in rows {
                let start = if i == 0 { 0 } else { row_ends[i - 1] as usize };
                let dims = &row_dims[start..row_ends[i] as usize];
                accumulate_int_dots_with(d, dims, lut, &mut dot);
                let (best, best_d) =
                    nearest_from_int_dots_with(d, norms, invs, &dot, dims.len() as f64);
                sink(i, dims, best, best_d);
            }
        }
    }
}

/// CSR dim-slice bounds `[lo, hi)` covered by `rows`, or `None` when the
/// range is empty or `row_ends` doesn't reach it.
fn dims_range(row_ends: &[u32], rows: &std::ops::Range<usize>) -> Option<(usize, usize)> {
    if rows.is_empty() {
        return None;
    }
    let lo = if rows.start == 0 {
        0
    } else {
        *row_ends.get(rows.start - 1)? as usize
    };
    let hi = *row_ends.get(rows.end - 1)? as usize;
    Some((lo, hi))
}

/// AVX2 fused row assignment for stride `8·N` (`N` = number of 256-bit
/// integer accumulators, 1 or 2 — every CAD shape, since k ≤ 16).
///
/// # Safety
///
/// Requires avx2, and every dim `d` in the range's CSR slice must satisfy
/// `(d + 1) · 8N ≤ lut.len()` — the dispatcher's `lut_ok` scan — so the
/// strip loads can skip per-dim bounds checks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn assign_rows_avx2<const N: usize, F: FnMut(usize, &[u32], usize, f64)>(
    row_dims: &[u32],
    row_ends: &[u32],
    rows: std::ops::Range<usize>,
    lut: &[u32],
    norms: &[f64],
    invs: &[f64],
    mut sink: F,
) {
    use std::arch::x86_64::*;
    let ks = N * 8;
    // SAFETY: intrinsics require avx2 and the strip loads rely on the
    // caller's `(d + 1)·ks ≤ lut.len()` contract (see # Safety); all other
    // loads read from inside bounds-checked slices; loadu is
    // unaligned-safe.
    unsafe {
        let sign = _mm_set1_epi32(i32::MIN);
        let two31 = _mm256_set1_pd(2_147_483_648.0);
        let zero = _mm256_setzero_pd();
        let two = _mm256_set1_pd(2.0);
        // Centroid constants: 2N quads of norms and pre-doubled inverses.
        let mut normv = [zero; 4];
        let mut inv2v = [zero; 4];
        for q in 0..2 * N {
            normv[q] = _mm256_loadu_pd(norms[4 * q..4 * q + 4].as_ptr());
            inv2v[q] = _mm256_mul_pd(two, _mm256_loadu_pd(invs[4 * q..4 * q + 4].as_ptr()));
        }
        for i in rows {
            let start = if i == 0 { 0 } else { row_ends[i - 1] as usize };
            let dims = &row_dims[start..row_ends[i] as usize];
            let mut acc = [_mm256_setzero_si256(); N];
            for &d in dims {
                let strip = lut.as_ptr().add(d as usize * ks);
                for (t, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_add_epi32(
                        *a,
                        _mm256_loadu_si256(strip.add(8 * t) as *const __m256i),
                    );
                }
            }
            let lenv = _mm256_set1_pd(dims.len() as f64);
            let mut dv = [zero; 4];
            for q in 0..2 * N {
                let du = if q % 2 == 0 {
                    _mm256_castsi256_si128(acc[q / 2])
                } else {
                    _mm256_extracti128_si256::<1>(acc[q / 2])
                };
                let dotf = _mm256_add_pd(_mm256_cvtepi32_pd(_mm_xor_si128(du, sign)), two31);
                let t = _mm256_mul_pd(dotf, inv2v[q]);
                dv[q] = _mm256_max_pd(_mm256_add_pd(_mm256_sub_pd(normv[q], t), lenv), zero);
            }
            let mut m = dv[0];
            for &d4 in dv.iter().take(2 * N).skip(1) {
                m = _mm256_min_pd(m, d4);
            }
            let m2 = _mm_min_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd::<1>(m));
            let best_d = _mm_cvtsd_f64(_mm_min_sd(m2, _mm_unpackhi_pd(m2, m2)));
            // Branchless first-index-of-min: one equality mask per quad,
            // packed into a 16-bit word whose lowest set bit is the first
            // lane equal to the global minimum.
            let mb = _mm256_set1_pd(best_d);
            let mut mask16 = 0u32;
            for (q, &d4) in dv.iter().take(2 * N).enumerate() {
                let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(d4, mb)) as u32;
                mask16 |= mask << (4 * q);
            }
            let best = mask16.trailing_zeros() as usize;
            sink(i, dims, best, best_d);
        }
    }
}

/// SSE2 fused row assignment for stride `8·N` — the 128-bit mirror of
/// [`assign_rows_avx2`]: 2N integer accumulators, 4N f64 pairs.
///
/// # Safety
///
/// Same contract as [`assign_rows_avx2`] (SSE2 baseline instead of avx2):
/// every dim `d` in the range's CSR slice must satisfy
/// `(d + 1) · 8N ≤ lut.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn assign_rows_sse2<const N: usize, F: FnMut(usize, &[u32], usize, f64)>(
    row_dims: &[u32],
    row_ends: &[u32],
    rows: std::ops::Range<usize>,
    lut: &[u32],
    norms: &[f64],
    invs: &[f64],
    mut sink: F,
) {
    use std::arch::x86_64::*;
    let ks = N * 8;
    // SAFETY: SSE2 is the x86_64 baseline; the strip loads rely on the
    // caller's `(d + 1)·ks ≤ lut.len()` contract (see # Safety); all other
    // loads read from inside bounds-checked slices; loadu is
    // unaligned-safe.
    unsafe {
        let sign = _mm_set1_epi32(i32::MIN);
        let two31 = _mm_set1_pd(2_147_483_648.0);
        let zero = _mm_setzero_pd();
        let two = _mm_set1_pd(2.0);
        let mut normv = [zero; 8];
        let mut inv2v = [zero; 8];
        for q in 0..4 * N {
            normv[q] = _mm_loadu_pd(norms[2 * q..2 * q + 2].as_ptr());
            inv2v[q] = _mm_mul_pd(two, _mm_loadu_pd(invs[2 * q..2 * q + 2].as_ptr()));
        }
        for i in rows {
            let start = if i == 0 { 0 } else { row_ends[i - 1] as usize };
            let dims = &row_dims[start..row_ends[i] as usize];
            let mut acc = [_mm_setzero_si128(); 4];
            for &d in dims {
                let strip = lut.as_ptr().add(d as usize * ks);
                for (t, a) in acc.iter_mut().enumerate().take(2 * N) {
                    *a = _mm_add_epi32(
                        *a,
                        _mm_loadu_si128(strip.add(4 * t) as *const __m128i),
                    );
                }
            }
            let lenv = _mm_set1_pd(dims.len() as f64);
            let mut dv = [zero; 8];
            for q in 0..4 * N {
                let pair = if q % 2 == 0 {
                    acc[q / 2]
                } else {
                    // Move the high two u32s into the low half for cvt.
                    _mm_shuffle_epi32::<0b_11_10>(acc[q / 2])
                };
                let dotf = _mm_add_pd(_mm_cvtepi32_pd(_mm_xor_si128(pair, sign)), two31);
                dv[q] = _mm_max_pd(
                    _mm_add_pd(_mm_sub_pd(normv[q], _mm_mul_pd(dotf, inv2v[q])), lenv),
                    zero,
                );
            }
            let mut m = dv[0];
            for &d2 in dv.iter().take(4 * N).skip(1) {
                m = _mm_min_pd(m, d2);
            }
            let best_d = _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
            // Branchless first-index-of-min, as in the AVX2 path.
            let mb = _mm_set1_pd(best_d);
            let mut mask16 = 0u32;
            for (q, &d2) in dv.iter().take(4 * N).enumerate() {
                let mask = _mm_movemask_pd(_mm_cmpeq_pd(d2, mb)) as u32;
                mask16 |= mask << (2 * q);
            }
            let best = mask16.trailing_zeros() as usize;
            sink(i, dims, best, best_d);
        }
    }
}

/// k-means++ seeding helper: `acc[i] += (col[i] == t)` over one
/// column-major attribute slice. The caller skips NULL seed codes, and a
/// NULL cell can never equal a non-NULL `t`, so the accumulated byte is
/// exactly the matching-non-NULL-cell count `packed_sparse_dist2` walks
/// row-wise (attrs ≤ 255 keeps it from wrapping).
pub(crate) fn byte_eq_accumulate(d: SimdDispatch, col: &[u8], t: u8, acc: &mut [u8]) {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: Avx2 is only selected when the CPU reports the avx2
            // feature (dbex_stats::simd::detected clamps DBEX_SIMD).
            unsafe { byte_eq_accumulate_avx2(col, t, acc) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 => {
            // SAFETY: SSE2 is the x86_64 baseline — always available.
            unsafe { byte_eq_accumulate_sse2(col, t, acc) }
        }
        _ => byte_eq_accumulate_scalar(col, t, acc),
    }
}

/// The scalar reference (and every path's tail loop).
#[inline]
pub(crate) fn byte_eq_accumulate_scalar(col: &[u8], t: u8, acc: &mut [u8]) {
    for (a, &c) in acc.iter_mut().zip(col) {
        *a += u8::from(c == t);
    }
}

/// AVX2: 32 cells per op — `cmpeq` yields 0xFF (= −1) on match, so
/// subtracting the mask adds one to every matching accumulator.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn byte_eq_accumulate_avx2(col: &[u8], t: u8, acc: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = acc.len().min(col.len());
    let mut i = 0usize;
    // SAFETY: each load/store covers 32 bytes inside the bounds-checked
    // slices below; loadu/storeu are unaligned-safe.
    unsafe {
        let tv = _mm256_set1_epi8(t as i8);
        while i + 32 <= n {
            let c = _mm256_loadu_si256(col[i..i + 32].as_ptr() as *const __m256i);
            let a = _mm256_loadu_si256(acc[i..i + 32].as_ptr() as *const __m256i);
            let m = _mm256_cmpeq_epi8(c, tv);
            _mm256_storeu_si256(
                acc[i..i + 32].as_mut_ptr() as *mut __m256i,
                _mm256_sub_epi8(a, m),
            );
            i += 32;
        }
    }
    byte_eq_accumulate_scalar(&col[i..n], t, &mut acc[i..n]);
}

/// SSE2: 16 cells per op, same mask-subtract trick.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn byte_eq_accumulate_sse2(col: &[u8], t: u8, acc: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = acc.len().min(col.len());
    let mut i = 0usize;
    // SAFETY: each load/store covers 16 bytes inside the bounds-checked
    // slices below; loadu/storeu are unaligned-safe.
    unsafe {
        let tv = _mm_set1_epi8(t as i8);
        while i + 16 <= n {
            let c = _mm_loadu_si128(col[i..i + 16].as_ptr() as *const __m128i);
            let a = _mm_loadu_si128(acc[i..i + 16].as_ptr() as *const __m128i);
            let m = _mm_cmpeq_epi8(c, tv);
            _mm_storeu_si128(acc[i..i + 16].as_mut_ptr() as *mut __m128i, _mm_sub_epi8(a, m));
            i += 16;
        }
    }
    byte_eq_accumulate_scalar(&col[i..n], t, &mut acc[i..n]);
}

/// k-means++ seeding helper: fold this round's distances into the
/// running per-row minimum — `d2[i] = min(d2[i], lens[i] + len_last −
/// 2·common[i])`. Every distance is a small non-negative integer
/// (`common ≤ min(lens[i], len_last)`), so the f64 conversion is exact
/// and the vector `min` matches the scalar strict-less update bit for
/// bit (ties keep an identical value either way).
pub(crate) fn seed_min_update(
    d: SimdDispatch,
    common: &[u8],
    lens: &[u32],
    len_last: u32,
    d2: &mut [f64],
) {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: Avx2 is only selected when the CPU reports the avx2
            // feature (dbex_stats::simd::detected clamps DBEX_SIMD).
            unsafe { seed_min_update_avx2(common, lens, len_last, d2) }
        }
        _ => seed_min_update_scalar(common, lens, len_last, d2),
    }
}

/// The scalar reference (and the vector path's tail loop) — the same
/// update `packed_seed_plus_plus` performs row-wise.
#[inline]
pub(crate) fn seed_min_update_scalar(common: &[u8], lens: &[u32], len_last: u32, d2: &mut [f64]) {
    for ((&c, &l), slot) in common.iter().zip(lens).zip(d2.iter_mut()) {
        let d = f64::from(l + len_last - 2 * u32::from(c));
        if d < *slot {
            *slot = d;
        }
    }
}

/// AVX2: eight rows per pass — widen the byte counts, do the distance in
/// i32 (exact, values ≤ 510), convert, and `min` into the running d2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn seed_min_update_avx2(common: &[u8], lens: &[u32], len_last: u32, d2: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = d2.len().min(common.len()).min(lens.len());
    let mut i = 0usize;
    // SAFETY: every load/store covers 8 (or 4 for the f64 halves) lanes
    // inside the bounds-checked slices below; loadu/storeu are
    // unaligned-safe. _mm_loadl_epi64 reads exactly 8 bytes.
    unsafe {
        let lb = _mm256_set1_epi32(len_last as i32);
        while i + 8 <= n {
            let c8 = _mm_loadl_epi64(common[i..i + 8].as_ptr() as *const __m128i);
            let c32 = _mm256_cvtepu8_epi32(c8);
            let l32 = _mm256_loadu_si256(lens[i..i + 8].as_ptr() as *const __m256i);
            let di = _mm256_sub_epi32(_mm256_add_epi32(l32, lb), _mm256_slli_epi32::<1>(c32));
            let lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(di));
            let hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256::<1>(di));
            let d2lo = _mm256_loadu_pd(d2[i..i + 4].as_ptr());
            let d2hi = _mm256_loadu_pd(d2[i + 4..i + 8].as_ptr());
            _mm256_storeu_pd(d2[i..i + 4].as_mut_ptr(), _mm256_min_pd(lo, d2lo));
            _mm256_storeu_pd(d2[i + 4..i + 8].as_mut_ptr(), _mm256_min_pd(hi, d2hi));
            i += 8;
        }
    }
    seed_min_update_scalar(&common[i..n], &lens[i..n], len_last, &mut d2[i..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random LUT/dims without an RNG dependency.
    fn fixture(k: usize, dim: usize) -> (Vec<u32>, Vec<u32>, usize) {
        let ks = dot_stride(k);
        let mut lut = vec![0u32; dim * ks];
        for (i, v) in lut.iter_mut().enumerate() {
            // Zero the padding lanes like build_int_lut does.
            if i % ks < k {
                *v = ((i * 2654435761) % 1000) as u32;
            }
        }
        let dims: Vec<u32> = (0..dim).filter(|d| d % 3 != 1).map(|d| d as u32).collect();
        (lut, dims, ks)
    }

    #[test]
    fn every_dispatch_matches_scalar() {
        for k in [1usize, 2, 7, 8, 9, 15, 16, 17, 24, 31, 40] {
            let (lut, dims, ks) = fixture(k, 57);
            let mut want = vec![0u32; ks];
            accumulate_int_dots_scalar(&dims, &lut, &mut want);
            for d in [
                SimdDispatch::Scalar,
                SimdDispatch::Sse2,
                SimdDispatch::Avx2,
                SimdDispatch::Neon,
            ] {
                let mut dot = vec![u32::MAX; ks]; // must be fully overwritten
                accumulate_int_dots_with(d, &dims, &lut, &mut dot);
                assert_eq!(dot, want, "k={k} dispatch={d:?}");
            }
        }
    }

    #[test]
    fn nearest_matches_scalar_bits_and_tiebreaks() {
        for k in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 40] {
            // Deterministic candidates with realistic magnitudes, plus
            // dot values above i32::MAX to exercise the exact unsigned
            // conversion in the vector paths.
            let mut norms: Vec<f64> = (0..k)
                .map(|c| ((c * 2654435761) % 997) as f64 / 7.0)
                .collect();
            let mut invs: Vec<f64> = (0..k).map(|c| 1.0 / ((c % 13) + 1) as f64).collect();
            let mut dot: Vec<u32> = (0..k)
                .map(|c| ((c as u64 * 0x9E37_79B9) % u64::from(u32::MAX)) as u32)
                .collect();
            if k >= 4 {
                // A forced exact tie: the scan must keep the first index.
                norms[3] = norms[1];
                invs[3] = invs[1];
                dot[3] = dot[1];
            }
            for len in [0.0f64, 5.0, 10.0] {
                let want = nearest_int_scalar(&norms, &invs, &dot, len, 0, 0, f64::INFINITY);
                for d in [
                    SimdDispatch::Scalar,
                    SimdDispatch::Sse2,
                    SimdDispatch::Avx2,
                    SimdDispatch::Neon,
                ] {
                    let got = nearest_from_int_dots_with(d, &norms, &invs, &dot, len);
                    assert_eq!(got.0, want.0, "k={k} len={len} dispatch={d:?}: index");
                    assert_eq!(
                        got.1.to_bits(),
                        want.1.to_bits(),
                        "k={k} len={len} dispatch={d:?}: distance bits {} vs {}",
                        got.1,
                        want.1
                    );
                }
            }
        }
    }

    #[test]
    fn empty_dims_zero_the_accumulators() {
        let (lut, _, ks) = fixture(15, 8);
        for d in [
            SimdDispatch::Scalar,
            SimdDispatch::Sse2,
            SimdDispatch::Avx2,
            SimdDispatch::Neon,
        ] {
            let mut dot = vec![7u32; ks];
            accumulate_int_dots_with(d, &[], &lut, &mut dot);
            assert_eq!(dot, vec![0u32; ks], "{d:?}");
        }
    }

    const ALL_DISPATCHES: [SimdDispatch; 4] = [
        SimdDispatch::Scalar,
        SimdDispatch::Sse2,
        SimdDispatch::Avx2,
        SimdDispatch::Neon,
    ];

    #[test]
    fn seeding_kernels_match_scalar_across_dispatches() {
        // Lengths straddle the 16/32-lane vector chunks to hit the tails.
        for n in [0usize, 1, 7, 16, 31, 32, 33, 100] {
            let col: Vec<u8> = (0..n).map(|i| ((i * 7) % 5) as u8).collect();
            let lens: Vec<u32> = (0..n).map(|i| 1 + (i % 9) as u32).collect();
            let common0: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
            let mut want_acc = common0.clone();
            byte_eq_accumulate_scalar(&col, 3, &mut want_acc);
            // A partially-minimized d2 (some +inf, some finite, one exact
            // tie with the incoming distance) checks min/tie behavior.
            let d2_init: Vec<f64> = (0..n)
                .map(|i| match i % 3 {
                    0 => f64::INFINITY,
                    1 => 2.0,
                    _ => f64::from(lens[i] + 4 - 2 * u32::from(common0[i])),
                })
                .collect();
            let mut want_d2 = d2_init.clone();
            seed_min_update_scalar(&common0, &lens, 4, &mut want_d2);
            for d in ALL_DISPATCHES {
                let mut acc = common0.clone();
                byte_eq_accumulate(d, &col, 3, &mut acc);
                assert_eq!(acc, want_acc, "n={n} dispatch={d:?}: byte counts");
                let mut d2 = d2_init.clone();
                seed_min_update(d, &common0, &lens, 4, &mut d2);
                let want_bits: Vec<u64> = want_d2.iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "n={n} dispatch={d:?}: d2 bits");
            }
        }
    }

    /// Applying the wrapping deltas of two successive passes (centroids
    /// change in between) reproduces the from-scratch histogram of the
    /// final assignment, on every dispatch.
    #[test]
    fn scatter_deltas_reproduce_from_scratch_histogram() {
        let k = 3usize;
        let dim = 8usize;
        let ks = dot_stride(k); // 8 → the stride-8 vector kernels run
        let rows: Vec<Vec<u32>> = (0..12)
            .map(|i| (0..dim as u32).filter(|d| (i + d) % 3 != 1).collect())
            .collect();
        let mut row_dims = Vec::new();
        let mut row_ends = Vec::new();
        for r in &rows {
            row_dims.extend_from_slice(r);
            row_ends.push(row_dims.len() as u32);
        }
        let lut_for = |salt: u32| {
            let mut lut = vec![0u32; dim * ks];
            for (i, v) in lut.iter_mut().enumerate() {
                if i % ks < k {
                    *v = ((i as u32).wrapping_mul(2654435761).wrapping_add(salt)) % 50;
                }
            }
            lut
        };
        let consts_for = |lut: &[u32]| {
            // Arbitrary-but-valid padded centroid constants.
            let mut norms: Vec<f64> = (0..k).map(|c| f64::from(lut[c] % 7) + 0.5).collect();
            let mut invs: Vec<f64> = (0..k).map(|c| 1.0 / f64::from(1 + (c as u32))).collect();
            norms.resize(ks, f64::INFINITY);
            invs.resize(ks, 0.0);
            (norms, invs)
        };
        for d in ALL_DISPATCHES {
            let mut running = vec![0u32; k * dim];
            let mut counts = vec![0u32; k];
            let mut prev = vec![usize::MAX; rows.len()];
            for pass in 0..2 {
                let lut = lut_for(pass * 31 + 7);
                let (norms, invs) = consts_for(&lut);
                let mut part_assign = Vec::new();
                let mut part_counts = vec![0u32; k];
                let mut part_sums = vec![0u32; k * dim];
                assign_scatter_rows_with(
                    d,
                    &row_dims,
                    &row_ends,
                    0..rows.len(),
                    &lut,
                    &norms,
                    &invs,
                    dim,
                    &prev,
                    &mut part_assign,
                    &mut part_counts,
                    &mut part_sums,
                );
                for (c, pc) in counts.iter_mut().zip(&part_counts) {
                    *c = c.wrapping_add(*pc);
                }
                for (s, ds) in running.iter_mut().zip(&part_sums) {
                    *s = s.wrapping_add(*ds);
                }
                // Brute-force regroup of the new assignment.
                let mut want_sums = vec![0u32; k * dim];
                let mut want_counts = vec![0u32; k];
                for (r, &c) in rows.iter().zip(&part_assign) {
                    want_counts[c] += 1;
                    for &dd in r {
                        want_sums[c * dim + dd as usize] += 1;
                    }
                }
                assert_eq!(counts, want_counts, "pass={pass} dispatch={d:?}: counts");
                assert_eq!(running, want_sums, "pass={pass} dispatch={d:?}: sums");
                prev = part_assign;
            }
        }
    }
}
