//! # dbex-cluster
//!
//! Clustering substrate for IUnit generation (paper Problem 1.2,
//! Section 3.1.2).
//!
//! The paper clusters the tuples of each Pivot Attribute value "using only
//! the above-chosen Compare Attributes" with Weka's `SimpleKMeans`, under an
//! interactive latency budget. This crate provides:
//!
//! * [`onehot`] — one-hot encoding of discretized tuples. Mixed
//!   categorical/numeric data is first discretized (`dbex-stats`), then each
//!   tuple becomes a sparse binary vector with one active dimension per
//!   Compare Attribute.
//! * [`mod@kmeans`] — Lloyd's algorithm with k-means++ seeding, empty-cluster
//!   reseeding, and out-of-sample assignment (the paper's sampling
//!   optimization clusters a sample and assigns the remainder).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod fault;
pub mod kmeans;
pub mod minibatch;
pub mod onehot;
pub mod packed;
pub mod quality;
pub(crate) mod simd;

pub use error::ClusterError;
pub use kmeans::{assign_all_packed, kmeans, kmeans_packed, kmeans_packed_warm, KMeansConfig, KMeansResult};
pub use minibatch::{mini_batch_kmeans, mini_batch_kmeans_packed, MiniBatchConfig};
pub use onehot::OneHotSpace;
pub use packed::PackedMatrix;
pub use quality::silhouette;
