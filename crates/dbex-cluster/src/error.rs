//! Typed errors for the clustering layer.

use dbex_stats::StatsError;
use std::fmt;

/// An error from k-means / mini-batch clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `k == 0` clusters requested.
    ZeroClusters,
    /// A mini-batch of zero points requested.
    ZeroBatchSize,
    /// A sparse point activates a dimension outside the feature space.
    DimensionOutOfRange {
        /// Index of the offending point.
        point: usize,
        /// The out-of-range dimension.
        dim: u32,
        /// Dimensionality of the space.
        space: usize,
    },
    /// Discretization failed while preparing clustering inputs.
    Stats(StatsError),
    /// A deliberately injected fault (testing only; see [`crate::fault`]).
    FaultInjected {
        /// The site that was armed.
        site: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ZeroClusters => write!(f, "k must be at least 1"),
            ClusterError::ZeroBatchSize => write!(f, "mini-batch size must be at least 1"),
            ClusterError::DimensionOutOfRange { point, dim, space } => write!(
                f,
                "point {point} activates dimension {dim} outside the {space}-dimensional space"
            ),
            ClusterError::Stats(_) => write!(f, "discretization failed"),
            ClusterError::FaultInjected { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for ClusterError {
    fn from(e: StatsError) -> Self {
        ClusterError::Stats(e)
    }
}
