//! Packed dictionary-code point storage for the clustering hot path.
//!
//! The one-hot representation ([`crate::onehot`]) materializes one heap
//! `Vec<u32>` per tuple. For the CAD hot path — tens of thousands of rows
//! per pivot partition, re-encoded on every build — those allocations and
//! the pointer chase per distance dominate the profile. A [`PackedMatrix`]
//! stores the same information as one contiguous row-major code matrix:
//! one `u8` (or `u16`, see below) per `(tuple, attribute)` cell holding the
//! attribute's discrete code, with the all-ones sentinel marking NULL.
//!
//! # Width promotion
//!
//! Codes are stored as `u8` when every attribute cardinality is ≤ 255 (the
//! sentinel `u8::MAX` must not collide with a live code), promoted to
//! `u16` up to cardinality 65 535, and refused beyond that —
//! [`PackedMatrix::from_columns`] returns `None` and the caller falls back
//! to the sparse one-hot reference path.
//!
//! # Equivalence with the one-hot space
//!
//! A packed row is exactly the sparse one-hot point of the same tuple:
//! active dimension `offsets[a] + code` for every non-NULL attribute `a`.
//! Because the one-hot dimensions of a tuple are sorted and attribute
//! offsets ascend, iterating packed cells in attribute order visits the
//! active dimensions in the same order the sparse kernels do — which is
//! what lets the packed kernels ([`crate::kmeans::kmeans_packed`],
//! [`crate::minibatch::mini_batch_kmeans_packed`]) reproduce the reference
//! results *bit for bit*, not just approximately.

use crate::onehot::OneHotSpace;
use dbex_stats::discretize::CodedColumn;
use dbex_table::dict::NULL_CODE;

/// A fixed-width storage cell of a [`PackedMatrix`].
///
/// Implemented for `u8` and `u16`; the all-ones value is the NULL
/// sentinel, so the maximum representable live code is `MAX - 1`.
pub trait CodeWord: Copy + Eq {
    /// The NULL sentinel (`MAX` of the carrier type).
    const NULL: Self;
    /// Widens a live code to a dimension index.
    fn index(self) -> usize;
}

impl CodeWord for u8 {
    const NULL: Self = u8::MAX;
    fn index(self) -> usize {
        self as usize
    }
}

impl CodeWord for u16 {
    const NULL: Self = u16::MAX;
    fn index(self) -> usize {
        self as usize
    }
}

/// The width-dispatched code storage of a [`PackedMatrix`].
#[derive(Debug, Clone)]
enum PackedCodes {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// Row-major packed code matrix over a set of discretized attributes.
///
/// Construction gathers the member tuples' codes once; the clustering
/// kernels then stream the matrix with zero further allocation per row.
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    space: OneHotSpace,
    /// Attribute block offsets, mirrored out of `space` for direct access
    /// in the kernels' inner loops.
    offsets: Vec<usize>,
    rows: usize,
    attrs: usize,
    /// Non-NULL attribute count per row (`|x|` in the distance formula).
    lens: Vec<u32>,
    codes: PackedCodes,
}

impl PackedMatrix {
    /// Packs the tuples at `positions` of the given coded columns.
    ///
    /// Returns `None` when any attribute cardinality exceeds the `u16`
    /// carrier (sentinel collision), a stored code is out of its codec's
    /// range, or `rows·attrs` exceeds `u32::MAX` (the packed kernel's
    /// integer dot accumulator bound) — the caller must use the one-hot
    /// reference path.
    pub fn from_columns(columns: &[&CodedColumn], positions: &[usize]) -> Option<PackedMatrix> {
        let cards: Vec<usize> = columns.iter().map(|c| c.codec.cardinality()).collect();
        let space = OneHotSpace::from_cardinalities(&cards);
        let offsets: Vec<usize> = (0..columns.len()).map(|a| space.dim_of(a, 0)).collect();
        let max_card = cards.iter().copied().max().unwrap_or(0);
        let rows = positions.len();
        let attrs = columns.len();
        if rows.saturating_mul(attrs) > u32::MAX as usize {
            return None;
        }
        let mut lens = vec![0u32; rows];
        let codes = if max_card <= u8::MAX as usize {
            PackedCodes::U8(pack::<u8>(columns, positions, &cards, &mut lens)?)
        } else if max_card <= u16::MAX as usize {
            PackedCodes::U16(pack::<u16>(columns, positions, &cards, &mut lens)?)
        } else {
            return None;
        };
        Some(PackedMatrix {
            space,
            offsets,
            rows,
            attrs,
            lens,
            codes,
        })
    }

    /// Number of packed rows (tuples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of packed attributes (columns).
    pub fn attrs(&self) -> usize {
        self.attrs
    }

    /// The induced one-hot space (offsets and total dimensionality).
    pub fn space(&self) -> &OneHotSpace {
        &self.space
    }

    /// Total one-hot dimensionality.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// True when codes are stored as `u8` (every cardinality ≤ 255).
    pub fn is_u8(&self) -> bool {
        matches!(self.codes, PackedCodes::U8(_))
    }

    /// Attribute block offset `a` (same as `space().dim_of(a, 0)`).
    #[inline]
    pub fn offset(&self, a: usize) -> usize {
        self.offsets[a]
    }

    /// Non-NULL attribute count of row `r`.
    #[inline]
    pub fn len_of(&self, r: usize) -> usize {
        self.lens[r] as usize
    }

    /// All per-row non-NULL counts (the vectorized seeding kernel loads
    /// them four at a time).
    pub(crate) fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Runs `f` over the width-monomorphized code slice.
    pub(crate) fn dispatch<R>(&self, f: impl FnOnce(PackedView<'_>) -> R) -> R {
        match &self.codes {
            PackedCodes::U8(codes) => f(PackedView::U8(codes)),
            PackedCodes::U16(codes) => f(PackedView::U16(codes)),
        }
    }

    /// The sparse one-hot point of row `r` — the reference representation
    /// the packed kernels are checked against.
    pub fn onehot_row(&self, r: usize) -> Vec<u32> {
        let mut active = Vec::with_capacity(self.attrs);
        match &self.codes {
            PackedCodes::U8(codes) => {
                for a in 0..self.attrs {
                    let code = codes[r * self.attrs + a];
                    if code != u8::NULL {
                        active.push((self.offsets[a] + code.index()) as u32);
                    }
                }
            }
            PackedCodes::U16(codes) => {
                for a in 0..self.attrs {
                    let code = codes[r * self.attrs + a];
                    if code != u16::NULL {
                        active.push((self.offsets[a] + code.index()) as u32);
                    }
                }
            }
        }
        active
    }

    /// Every row as a sparse one-hot point (oracle/testing path).
    pub fn onehot_rows(&self) -> Vec<Vec<u32>> {
        (0..self.rows).map(|r| self.onehot_row(r)).collect()
    }
}

/// Width-monomorphized borrow of the code matrix.
pub(crate) enum PackedView<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
}

/// Gathers and narrows the codes at `positions`; `None` on any code
/// outside its codec's cardinality (broken invariant — let the one-hot
/// path surface the typed error).
///
/// Extraction runs column-at-a-time through [`dbex_table::batch::gather_into`]
/// — one sequential pass over each column's code slice — before narrowing
/// into the row-major matrix, instead of striding all columns per row.
fn pack<T: CodeWord + TryFrom<u32>>(
    columns: &[&CodedColumn],
    positions: &[usize],
    cards: &[usize],
    lens: &mut [u32],
) -> Option<Vec<T>> {
    let attrs = columns.len();
    let mut out = vec![T::NULL; positions.len() * attrs];
    let mut gathered: Vec<u32> = Vec::new();
    for (a, col) in columns.iter().enumerate() {
        if !dbex_table::batch::gather_into(&col.codes, positions, &mut gathered) {
            return None;
        }
        for (r, &code) in gathered.iter().enumerate() {
            if code == NULL_CODE {
                continue; // cell already holds the NULL sentinel
            }
            if code as usize >= cards[a] {
                return None;
            }
            out[r * attrs + a] = T::try_from(code).ok()?;
            lens[r] += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_stats::discretize::AttributeCodec;

    fn coded(attr_index: usize, labels: &[&str], codes: Vec<u32>) -> CodedColumn {
        CodedColumn {
            attr_index,
            codec: AttributeCodec::Categorical {
                labels: labels.iter().map(|s| s.to_string()).collect(),
            },
            codes,
        }
    }

    #[test]
    fn packs_u8_and_matches_onehot_encoding() {
        let c0 = coded(0, &["a", "b", "c"], vec![0, 2, NULL_CODE, 1]);
        let c1 = coded(1, &["x", "y"], vec![1, NULL_CODE, 0, 1]);
        let cols = [&c0, &c1];
        let m = PackedMatrix::from_columns(&cols, &[0, 1, 2, 3]).unwrap();
        assert!(m.is_u8());
        assert_eq!(m.rows(), 4);
        assert_eq!(m.attrs(), 2);
        assert_eq!(m.dim(), 5);
        let space = OneHotSpace::from_columns(&cols);
        let expected = space.encode_positions(&cols, &[0, 1, 2, 3]);
        assert_eq!(m.onehot_rows(), expected);
        assert_eq!(m.len_of(0), 2);
        assert_eq!(m.len_of(1), 1);
        assert_eq!(m.len_of(2), 1);
    }

    #[test]
    fn subset_of_positions() {
        let c0 = coded(0, &["a", "b"], vec![0, 1, 0, 1]);
        let cols = [&c0];
        let m = PackedMatrix::from_columns(&cols, &[3, 1]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.onehot_row(0), vec![1]);
        assert_eq!(m.onehot_row(1), vec![1]);
    }

    #[test]
    fn promotes_to_u16_above_255() {
        let labels: Vec<String> = (0..300).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let c0 = coded(0, &label_refs, vec![0, 255, 299, NULL_CODE]);
        let cols = [&c0];
        let m = PackedMatrix::from_columns(&cols, &[0, 1, 2, 3]).unwrap();
        assert!(!m.is_u8());
        assert_eq!(m.onehot_rows(), vec![vec![0], vec![255], vec![299], vec![]]);
    }

    #[test]
    fn u8_sentinel_never_collides_with_live_code() {
        // Cardinality 256 must promote: code 255 would alias the sentinel.
        let labels: Vec<String> = (0..256).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let c0 = coded(0, &label_refs, vec![255]);
        let cols = [&c0];
        let m = PackedMatrix::from_columns(&cols, &[0]).unwrap();
        assert!(!m.is_u8());
        assert_eq!(m.len_of(0), 1);
        assert_eq!(m.onehot_row(0), vec![255]);
    }

    #[test]
    fn refuses_out_of_range_codes_and_oversized_cardinalities() {
        let c0 = coded(0, &["a", "b"], vec![5]); // code ≥ cardinality
        assert!(PackedMatrix::from_columns(&[&c0], &[0]).is_none());
        let labels: Vec<String> = (0..70_000).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let big = coded(0, &label_refs, vec![0]);
        assert!(PackedMatrix::from_columns(&[&big], &[0]).is_none());
    }
}
