//! Minimal fork-join parallelism over `std::thread::scope`.
//!
//! The container has no registry access, so instead of `rayon` the workspace
//! carries this small first-party executor. It provides exactly what the CAD
//! pipeline needs: an order-preserving [`par_map`] plus thread-count
//! resolution honoring the `DBEX_THREADS` environment variable.
//!
//! # Determinism
//!
//! [`par_map`] always returns results in item order, regardless of which
//! worker computed them or in what order they finished. Callers that are
//! deterministic per item therefore produce byte-identical output at any
//! thread count.
//!
//! # Thread-local state
//!
//! Work items run on short-lived pool workers (or on the caller's thread when
//! `threads <= 1` or there is at most one item). Thread-local state armed on
//! the caller — notably the `dbex_stats::fault` / `dbex_cluster::fault`
//! injection hooks — is *not* visible to pool workers. Code that relies on
//! those hooks must run with `threads == 1`.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of hardware threads, falling back to 1 when unknown.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread count pinned via the `DBEX_THREADS` environment variable, if set
/// to a positive integer. Used by CI to make bench runs reproducible.
pub fn env_threads() -> Option<usize> {
    let raw = std::env::var("DBEX_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Resolves a requested thread count to an effective one.
///
/// `0` means "auto": the `DBEX_THREADS` environment variable if set,
/// otherwise the hardware thread count. Any other value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        env_threads().unwrap_or_else(hardware_threads).max(1)
    } else {
        requested
    }
}

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results in item order.
///
/// With `threads <= 1` or fewer than two items the map runs entirely on the
/// caller's thread — no threads are spawned, so thread-local state (fault
/// hooks, etc.) behaves exactly as in sequential code. Otherwise
/// `min(threads, items.len())` scoped workers pull items off a shared atomic
/// cursor; the caller's thread only collects results.
///
/// A panic in `f` propagates to the caller when the scope joins.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &items[i]);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        rx.iter().collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Deterministic chunk layout for [`par_map_chunks`]: at most `threads`
/// ranges covering `0..len`, each at least `min_chunk` long (except when
/// `len < min_chunk`, which yields a single short range). Sizes differ by
/// at most one, larger chunks first, so the layout is a pure function of
/// `(len, threads, min_chunk)` — never of scheduling.
pub fn chunk_ranges(len: usize, threads: usize, min_chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let max_chunks = (len / min_chunk.max(1)).max(1);
    let chunks = threads.clamp(1, max_chunks);
    let base = len / chunks;
    let rem = len % chunks;
    (0..chunks)
        .map(|i| {
            let start = i * base + i.min(rem);
            let end = start + base + usize::from(i < rem);
            start..end
        })
        .collect()
}

/// Splits `0..len` into [`chunk_ranges`] and applies `f` to every range
/// across up to `threads` workers, returning results in chunk order.
///
/// This is the intra-partition counterpart of [`par_map`]: one large work
/// item (e.g. a k-means assignment pass over all rows) is cut into row
/// ranges instead of fanning out whole items. Callers whose per-chunk
/// results merge order-invariantly (integer histogram adds, disjoint
/// per-row writes) therefore produce byte-identical output at any thread
/// count *and* any chunk layout.
///
/// With one chunk (or `threads <= 1`) `f` runs on the caller's thread, so
/// thread-local state (fault hooks) behaves exactly as in sequential code.
pub fn par_map_chunks<R, F>(threads: usize, len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, threads, min_chunk);
    par_map(threads, &ranges, |_, r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map(1, &items, |i, v| (i as u64) * 31 + v);
        for threads in [2, 4, 8] {
            let par = par_map(threads, &items, |i, v| (i as u64) * 31 + v);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, v| *v).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, v| v * 2), vec![14]);
    }

    #[test]
    fn par_map_actually_uses_multiple_threads() {
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        par_map(4, &items, |_, _| {
            // Slow each item slightly so all workers get a slice of the work.
            std::thread::sleep(std::time::Duration::from_millis(1));
            if let Ok(mut guard) = seen.lock() {
                guard.insert(std::thread::current().id());
            }
        });
        let count = seen.lock().map(|s| s.len()).unwrap_or(0);
        assert!(count > 1, "expected multiple worker threads, saw {count}");
    }

    #[test]
    fn sequential_path_runs_on_caller_thread() {
        thread_local! {
            static MARKER: Cell<u32> = const { Cell::new(0) };
        }
        MARKER.with(|m| m.set(41));
        let out = par_map(1, &[(); 4], |i, ()| {
            MARKER.with(|m| m.get()) as usize + i
        });
        assert_eq!(out, vec![41, 42, 43, 44]);
    }

    #[test]
    fn pool_workers_do_not_see_caller_thread_locals() {
        thread_local! {
            static MARKER: Cell<u32> = const { Cell::new(0) };
        }
        MARKER.with(|m| m.set(99));
        let out = par_map(4, &[(); 16], |_, ()| MARKER.with(|m| m.get()));
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 7, 100, 1001] {
            for threads in [1usize, 2, 3, 8] {
                for min_chunk in [1usize, 16, 64] {
                    let ranges = chunk_ranges(len, threads, min_chunk);
                    let mut next = 0usize;
                    for r in &ranges {
                        assert_eq!(r.start, next, "len={len} threads={threads}");
                        assert!(r.end > r.start);
                        next = r.end;
                    }
                    assert_eq!(next, len);
                    assert!(ranges.len() <= threads.max(1));
                    if len > 0 && len >= min_chunk {
                        assert!(ranges.iter().all(|r| r.len() >= min_chunk));
                    }
                }
            }
        }
    }

    #[test]
    fn par_map_chunks_matches_sequential() {
        let data: Vec<u64> = (0..1000).map(|i| i * 37 % 101).collect();
        let sum_range = |r: std::ops::Range<usize>| data[r].iter().sum::<u64>();
        let total: u64 = data.iter().sum();
        for threads in [1usize, 2, 3, 8] {
            for min_chunk in [1usize, 100, 5000] {
                let parts = par_map_chunks(threads, data.len(), min_chunk, sum_range);
                assert_eq!(parts.iter().sum::<u64>(), total);
            }
        }
    }

    #[test]
    fn par_map_chunks_single_chunk_runs_on_caller_thread() {
        thread_local! {
            static MARKER: Cell<u32> = const { Cell::new(0) };
        }
        MARKER.with(|m| m.set(23));
        let out = par_map_chunks(1, 10, 1, |r| (r.len(), MARKER.with(|m| m.get())));
        assert_eq!(out, vec![(10, 23)]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        par_map(4, &items, |_, v| {
            if *v == 3 {
                panic!("worker boom");
            }
            *v
        });
    }
}
