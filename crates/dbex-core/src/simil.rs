//! Similarity search within a CAD View (paper Section 4).
//!
//! * [`iunit_similarity`] — **Algorithm 1**: the similarity of two IUnits is
//!   the sum over Compare Attributes of the cosine similarity of their
//!   value-frequency vectors. Range `[0, |I|]`.
//! * [`attribute_value_distance`] — **Algorithm 2**: the distance between
//!   two pivot values' ranked top-k IUnit lists, accounting for both
//!   content (which IUnits are similar) and rank (where they sit).

use crate::iunit::IUnit;
use dbex_stats::simil::cosine_similarity;

/// Algorithm 1: IUnit pair similarity.
///
/// Sums per-dimension cosine similarity of the frequency vectors. Both
/// IUnits must come from the same CAD View (same Compare Attributes and
/// codecs), which guarantees equal dimensionality.
pub fn iunit_similarity(a: &IUnit, b: &IUnit) -> f64 {
    debug_assert_eq!(a.freqs.len(), b.freqs.len(), "IUnit dimension mismatch");
    a.freqs
        .iter()
        .zip(&b.freqs)
        .map(|(fa, fb)| cosine_similarity(fa, fb))
        .sum()
}

/// Algorithm 2: attribute-value pair similarity (as a distance; smaller is
/// more similar).
///
/// For each IUnit in `tx` (rank `i`), find the similar IUnit in `ty`
/// (`sim ≥ tau`) whose rank is closest to `i`; if none exists, use rank
/// `|ty|` (one past the end, 0-based — the paper's `|T^y|+1` in 1-based
/// ranks). Accumulate `|i − index|`, then repeat symmetrically from `ty`.
pub fn attribute_value_distance(tx: &[IUnit], ty: &[IUnit], tau: f64) -> f64 {
    one_sided(tx, ty, tau) + one_sided(ty, tx, tau)
}

/// Continuous content similarity between two ranked IUnit lists: the mean,
/// over both directions, of each IUnit's best Algorithm-1 match in the
/// other list.
///
/// Algorithm 2's rank-displacement distance is integer-valued and ties
/// easily when `k` is small; this smooth companion score breaks those ties
/// (used by [`crate::CadView::reorder_rows`]).
pub fn list_content_similarity(tx: &[IUnit], ty: &[IUnit]) -> f64 {
    if tx.is_empty() || ty.is_empty() {
        return 0.0;
    }
    let best_sum = |from: &[IUnit], to: &[IUnit]| -> f64 {
        from.iter()
            .map(|u| {
                to.iter()
                    .map(|v| iunit_similarity(u, v))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (best_sum(tx, ty) + best_sum(ty, tx)) / 2.0
}

fn one_sided(from: &[IUnit], to: &[IUnit], tau: f64) -> f64 {
    let mut d = 0.0;
    for (i, unit) in from.iter().enumerate() {
        let mut index = to.len(); // sentinel: "best non-selected rank"
        let mut best_gap = usize::MAX;
        for (j, other) in to.iter().enumerate() {
            if iunit_similarity(unit, other) >= tau {
                let gap = i.abs_diff(j);
                if gap < best_gap {
                    best_gap = gap;
                    index = j;
                }
            }
        }
        d += i.abs_diff(index) as f64;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// IUnit with explicit frequency vectors (labels don't matter here).
    fn unit(freqs: Vec<Vec<f64>>) -> IUnit {
        IUnit {
            size: 1,
            score: 1.0,
            labels: freqs.iter().map(|_| Vec::new()).collect(),
            freqs,
            members: Vec::new(),
        }
    }

    #[test]
    fn identical_iunits_reach_max_similarity() {
        let a = unit(vec![vec![2.0, 0.0], vec![0.0, 3.0]]);
        let s = iunit_similarity(&a, &a);
        assert!((s - 2.0).abs() < 1e-12, "max = |I| = 2, got {s}");
    }

    #[test]
    fn orthogonal_iunits_similarity_zero() {
        let a = unit(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
        let b = unit(vec![vec![0.0, 1.0], vec![0.0, 1.0]]);
        assert_eq!(iunit_similarity(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = unit(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
        let b = unit(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let s = iunit_similarity(&a, &b);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_lists_distance_zero() {
        let tx = vec![
            unit(vec![vec![1.0, 0.0]]),
            unit(vec![vec![0.0, 1.0]]),
        ];
        let d = attribute_value_distance(&tx, &tx, 0.9);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn disjoint_lists_distance_maximal() {
        let tx = vec![unit(vec![vec![1.0, 0.0, 0.0]]), unit(vec![vec![0.0, 1.0, 0.0]])];
        let ty = vec![unit(vec![vec![0.0, 0.0, 1.0]]), unit(vec![vec![0.0, 0.0, 1.0]])];
        // Every IUnit maps to sentinel rank 2: |0-2| + |1-2| on both sides.
        let d = attribute_value_distance(&tx, &ty, 0.9);
        assert_eq!(d, 6.0);
    }

    #[test]
    fn rank_displacement_counts() {
        // Same content, swapped order: each unit finds its match one rank
        // away → 1+1 per side = 4.
        let a = unit(vec![vec![1.0, 0.0]]);
        let b = unit(vec![vec![0.0, 1.0]]);
        let tx = vec![a.clone(), b.clone()];
        let ty = vec![b, a];
        let d = attribute_value_distance(&tx, &ty, 0.9);
        assert_eq!(d, 4.0);
    }

    #[test]
    fn closest_rank_match_preferred() {
        // ty has two IUnits similar to tx[1]; the rank-closest (index 1)
        // must be used, giving zero displacement.
        let probe = unit(vec![vec![1.0, 0.0]]);
        let other = unit(vec![vec![0.0, 1.0]]);
        let tx = vec![other.clone(), probe.clone()];
        let ty = vec![probe.clone(), probe.clone()];
        let d = one_sided(&tx, &ty, 0.9);
        // tx[0] (other) has no match → |0-2| = 2; tx[1] matches at rank 1 → 0.
        assert_eq!(d, 2.0);
    }

    #[test]
    fn content_similarity_edges() {
        use super::list_content_similarity;
        let a = unit(vec![vec![1.0, 0.0]]);
        let a_list = [a.clone()];
        assert_eq!(list_content_similarity(&[], &[]), 0.0);
        assert_eq!(list_content_similarity(&a_list, &[]), 0.0);
        // Self-similarity of a single-unit list is the max per-attr sum.
        let s = list_content_similarity(&a_list, &a_list);
        assert!((s - 1.0).abs() < 1e-12);
        // Symmetric.
        let b_list = [unit(vec![vec![0.5, 0.5]])];
        assert_eq!(
            list_content_similarity(&a_list, &b_list),
            list_content_similarity(&b_list, &a_list)
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let tx = vec![unit(vec![vec![1.0, 0.0]]), unit(vec![vec![0.5, 0.5]])];
        let ty = vec![unit(vec![vec![0.0, 1.0]]), unit(vec![vec![1.0, 0.0]])];
        assert_eq!(
            attribute_value_distance(&tx, &ty, 0.8),
            attribute_value_distance(&ty, &tx, 0.8)
        );
    }
}
