//! CAD View construction pipeline (paper Section 3).
//!
//! `build_cad_view` realizes the sequence Problem 1.1 → 1.2 → 2:
//!
//! 1. **Compare Attributes** — chi-square feature selection against the
//!    pivot classes (optionally on a sample: Optimization 1).
//! 2. **Candidate IUnits** — per pivot value, k-means with `l ≈ 1.5k`
//!    centers over one-hot encoded Compare Attributes (optionally sampled
//!    clustering with out-of-sample assignment; optionally fewer candidates
//!    on huge results: Optimization 2), then cluster labeling.
//! 3. **Diversified top-k** — div-astar over the candidate IUnits with the
//!    Algorithm-1 similarity graph at threshold `τ = tau_fraction · |I|`.
//!
//! Per-stage wall-clock timings are recorded in [`CadTimings`] using the
//! same three buckets as the paper's Figure 8 (Compare Attribute time,
//! IUnit generation time, "others").

use crate::budget::{BudgetGauge, Degradation, DegradationKind, ExecBudget};
use crate::cad::{CadRow, CadView};
use crate::error::CadError;
use crate::iunit::{IUnit, LabelConfig};
use crate::simil::iunit_similarity;
use dbex_cluster::{
    assign_all_packed, kmeans, kmeans_packed_warm, mini_batch_kmeans, mini_batch_kmeans_packed,
    KMeansConfig, KMeansResult, MiniBatchConfig, OneHotSpace, PackedMatrix,
};
use dbex_stats::cache::{ClusterKey, ClusterSolution};
use dbex_stats::discretize::{AttributeCodec, CodedColumn, CodedMatrix};
use dbex_stats::feature::{
    select_compare_attributes_ctx, FeatureScorer, FeatureSelectionConfig, ScoringCtx,
};
use dbex_obs::Tracer;
use dbex_stats::histogram::BinningStrategy;
use dbex_stats::{CacheStats, StatsCache};
use dbex_table::dict::NULL_CODE;
use dbex_table::{DataType, View};
use dbex_topk::{div_astar, greedy, ConflictGraph};
use std::time::{Duration, Instant};

/// How IUnits are scored for the top-k ranking (Problem 2's preference
/// function `P`).
#[derive(Debug, Clone, PartialEq)]
pub enum Preference {
    /// Larger clusters first (the paper's system default).
    ClusterSize,
    /// Ascending mean of a numeric attribute (e.g. cheapest price first —
    /// the paper's car-shopper example).
    AttributeAsc(String),
    /// Descending mean of a numeric attribute (e.g. highest mileage first —
    /// the paper's taxi-fleet example).
    AttributeDesc(String),
}

/// Tuning knobs for the construction pipeline.
#[derive(Debug, Clone)]
pub struct CadConfig {
    /// Candidate IUnits per pivot value: `l = ceil(candidate_factor · k)`
    /// (the paper suggests `l = 1.5k`).
    pub candidate_factor: f64,
    /// Bins for numeric Compare Attributes.
    pub bins: usize,
    /// Binning strategy for numeric Compare Attributes.
    pub strategy: BinningStrategy,
    /// Chi-square significance level for Compare Attribute selection.
    pub alpha: f64,
    /// Relevance measure ranking candidate Compare Attributes.
    pub scorer: FeatureScorer,
    /// Similarity threshold as a fraction of `|I|`: `τ = tau_fraction·|I|`.
    pub tau_fraction: f64,
    /// IUnit labeling thresholds.
    pub label: LabelConfig,
    /// Optimization 1a: feature-select on at most this many rows.
    pub fs_sample: Option<usize>,
    /// Optimization 1b: cluster at most this many rows per pivot value and
    /// assign the remainder to the nearest centroid.
    pub cluster_sample: Option<usize>,
    /// Optimization 2: on partitions larger than
    /// [`CadConfig::ADAPTIVE_THRESHOLD`], generate only `k` candidates.
    pub adaptive_iunits: bool,
    /// Maximum k-means iterations.
    pub kmeans_iters: usize,
    /// k-means++ seeding (`false` = random seeding, ablation only).
    pub plus_plus: bool,
    /// PRNG seed for clustering.
    pub seed: u64,
    /// Cluster directly on packed `u8`/`u16` dictionary-code rows instead
    /// of materialized sparse one-hot points (the default). The packed
    /// kernels are bit-identical to the one-hot reference — this switch
    /// exists for A/B verification and as an escape hatch; attribute sets
    /// the packed layout cannot represent (cardinality > 65 535) fall back
    /// to the reference path automatically.
    pub packed_kernel: bool,
    /// Seed k-means from the previous build's centroids for the same pivot
    /// value when the partition's membership *changed* (a shrunken or grown
    /// facet refinement). Warm seeding converges in fewer Lloyd iterations
    /// but produces a (deterministically) different clustering than a cold
    /// build, so it is opt-in and disables exact cluster reuse; the default
    /// preserves the byte-identical cold-vs-incremental contract.
    pub warm_start: bool,
    /// Worker threads for the per-attribute and per-pivot-value stages.
    /// `1` (the default) runs the whole pipeline sequentially on the
    /// caller's thread — required by the fault-injection hooks, whose
    /// thread-locals only fire on the arming thread. `0` resolves to
    /// `DBEX_THREADS` or the machine's available parallelism. Output is
    /// byte-identical for any thread count at a fixed seed.
    pub threads: usize,
}

impl CadConfig {
    /// Partition size above which `adaptive_iunits` clamps `l` to `k`.
    pub const ADAPTIVE_THRESHOLD: usize = 10_000;

    /// The paper's combined optimizations (Section 6.3): sampled feature
    /// selection + sampled clustering + adaptive candidate counts, which
    /// together bring a 40K-row CAD View under ~500 ms.
    pub fn optimized() -> CadConfig {
        CadConfig {
            fs_sample: Some(5_000),
            cluster_sample: Some(2_000),
            adaptive_iunits: true,
            ..CadConfig::default()
        }
    }
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            candidate_factor: 1.5,
            bins: 6,
            strategy: BinningStrategy::EquiDepth,
            alpha: 0.05,
            scorer: FeatureScorer::ChiSquare,
            tau_fraction: 0.7,
            label: LabelConfig::default(),
            fs_sample: None,
            cluster_sample: None,
            adaptive_iunits: false,
            kmeans_iters: 20,
            plus_plus: true,
            seed: 0xCAD,
            packed_kernel: true,
            warm_start: false,
            threads: 1,
        }
    }
}

/// A CAD View request — the programmatic equivalent of the paper's
/// `CREATE CADVIEW` statement (Section 2.1.2).
#[derive(Debug, Clone)]
pub struct CadRequest {
    /// Pivot Attribute name (`SET pivot = ...`).
    pub pivot: String,
    /// Explicit pivot values to show; `None` shows every distinct value,
    /// ordered by decreasing tuple count.
    pub pivot_values: Option<Vec<String>>,
    /// User-forced Compare Attributes (the `SELECT` list).
    pub compare_attrs: Vec<String>,
    /// Total Compare Attribute budget `M` (`LIMIT COLUMNS M`).
    pub max_compare_attrs: usize,
    /// IUnits per pivot value `k` (`IUNITS k`).
    pub iunits: usize,
    /// IUnit preference function.
    pub preference: Preference,
    /// Pipeline tuning.
    pub config: CadConfig,
    /// Resource limits; exhaustion degrades the build instead of failing
    /// it (see [`crate::budget`]).
    pub budget: ExecBudget,
}

impl CadRequest {
    /// A request with defaults matching the paper's running example
    /// (5 Compare Attributes, 3 IUnits, cluster-size preference).
    pub fn new(pivot: impl Into<String>) -> CadRequest {
        CadRequest {
            pivot: pivot.into(),
            pivot_values: None,
            compare_attrs: Vec::new(),
            max_compare_attrs: 5,
            iunits: 3,
            preference: Preference::ClusterSize,
            config: CadConfig::default(),
            budget: ExecBudget::unlimited(),
        }
    }

    /// Restricts the view to these pivot values, in this order.
    pub fn with_pivot_values<S: Into<String>>(mut self, values: Vec<S>) -> Self {
        self.pivot_values = Some(values.into_iter().map(Into::into).collect());
        self
    }

    /// Forces these attributes into the Compare Attribute set.
    pub fn with_compare<S: Into<String>>(mut self, attrs: Vec<S>) -> Self {
        self.compare_attrs = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets `k`, the IUnits shown per pivot value.
    pub fn with_iunits(mut self, k: usize) -> Self {
        self.iunits = k;
        self
    }

    /// Sets `M`, the Compare Attribute budget.
    pub fn with_max_compare_attrs(mut self, m: usize) -> Self {
        self.max_compare_attrs = m;
        self
    }

    /// Sets the IUnit preference function.
    pub fn with_preference(mut self, p: Preference) -> Self {
        self.preference = p;
        self
    }

    /// Replaces the pipeline configuration.
    pub fn with_config(mut self, config: CadConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the execution budget.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Wall-clock cost of each pipeline stage — the decomposition plotted in
/// the paper's Figure 8.
#[derive(Debug, Clone, Copy, Default)]
pub struct CadTimings {
    /// Compare Attribute selection (chi-square feature selection).
    pub compare_attrs: Duration,
    /// Candidate IUnit generation (encoding, clustering, labeling).
    pub iunit_generation: Duration,
    /// Everything else: similarity graph, diversified top-k, assembly.
    pub others: Duration,
}

impl CadTimings {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.compare_attrs + self.iunit_generation + self.others
    }
}

/// Builds a CAD View over result set `result`.
///
/// Errors if the pivot attribute is unknown or not categorical, if an
/// explicit pivot value does not occur in the result set, or if a forced
/// Compare Attribute is unknown.
///
/// ```
/// use dbex_table::{TableBuilder, Field, DataType};
/// use dbex_core::{build_cad_view, CadRequest};
///
/// let mut b = TableBuilder::new(vec![
///     Field::new("Make", DataType::Categorical),
///     Field::new("Engine", DataType::Categorical),
/// ]).unwrap();
/// for i in 0..20 {
///     let (m, e) = if i % 2 == 0 { ("Ford", "V6") } else { ("Jeep", "V8") };
///     b.push_row(vec![m.into(), e.into()]).unwrap();
/// }
/// let table = b.finish();
///
/// let cad = build_cad_view(&table.full_view(), &CadRequest::new("Make")).unwrap();
/// assert_eq!(cad.rows.len(), 2);
/// assert!(cad.render().contains("IUnit 1"));
/// ```
pub fn build_cad_view(result: &View<'_>, request: &CadRequest) -> Result<CadView, CadError> {
    build_cad_view_cached(result, request, None)
}

/// [`build_cad_view`] with an optional statistics cache.
///
/// The cache memoizes attribute codecs (histograms + bin labels) and
/// chi-square contingency tables across builds, keyed on the view's
/// fingerprint — repeated `CREATE CADVIEW` statements and TPFacet
/// refinements over the same result set stop recomputing them. Pass
/// `None` for the uncached behavior of [`build_cad_view`]; cached and
/// uncached builds produce identical views.
pub fn build_cad_view_cached(
    result: &View<'_>,
    request: &CadRequest,
    cache: Option<&StatsCache>,
) -> Result<CadView, CadError> {
    build_cad_view_traced(result, request, cache, &Tracer::disabled())
}

/// Reads the cache counters, treating "no cache" as all-zero.
fn cache_stats(cache: Option<&StatsCache>) -> CacheStats {
    cache.map(|c| c.stats()).unwrap_or_default()
}

/// [`build_cad_view_cached`] with span tracing.
///
/// With an enabled `tracer` the build records the span taxonomy below
/// and attaches the assembled tree as [`CadView::trace`] (the tracer is
/// drained — use one tracer per build). With `Tracer::disabled()` the
/// instrumentation cost is an `Option` check per stage.
///
/// ```text
/// cad_build                rows_input, degradations, degradation_level
/// ├ pivot_encode           rows_scanned, pivot_values
/// ├ compare_attrs          rows_scanned, attrs_scored, attrs_selected,
/// │                        cache_hits, cache_misses
/// ├ iunit_generation
/// │ ├ encode_matrix        rows_scanned, attrs_encoded, cache_hits/misses
/// │ └ cluster_partition    rows_clustered, candidates, degradations
/// └ topk
///   └ solve_partition      candidates, selected, greedy_solves
/// ```
///
/// `cluster_partition` / `solve_partition` run once per pivot value —
/// possibly on pool workers — and merge into a single node, so the tree
/// and every counter are byte-identical at any thread count; only the
/// recorded durations differ.
pub fn build_cad_view_traced(
    result: &View<'_>,
    request: &CadRequest,
    cache: Option<&StatsCache>,
    tracer: &Tracer,
) -> Result<CadView, CadError> {
    let build_start = Instant::now();
    dbex_obs::counter!("cad.builds").incr(1);
    let threads = dbex_par::resolve_threads(request.config.threads);
    // Record which SIMD kernel family this process dispatches to, so
    // `metrics`/EXPLAIN ANALYZE can attribute build timings to the
    // hardware path actually taken (codes from `SimdDispatch::code`).
    dbex_obs::gauge!("cluster.kernel_dispatch").set(dbex_stats::simd::dispatch().code());
    let gauge = request.budget.start();
    let mut degradation: Vec<Degradation> = Vec::new();
    let schema = result.table().schema();
    let pivot_col = schema.index_of(&request.pivot)?;
    if request.iunits == 0 {
        return Err(CadError::ZeroIUnits);
    }
    let root = tracer.root("cad_build");
    root.add("rows_input", result.len() as u64);
    let pivot_span = root.child("pivot_encode");
    let pivot_column = result.table().column(pivot_col);
    // Categorical pivots use their dictionary codes; numeric pivots are
    // discretized, and the bins act as pivot values (an extension beyond
    // the paper, which assumes a categorical pivot).
    let pivot_codec = AttributeCodec::build(
        result,
        pivot_col,
        request.config.bins,
        request.config.strategy,
    )
    .map_err(|e| CadError::PivotNotDiscretizable {
        pivot: request.pivot.clone(),
        source: e,
    })?;

    // Partition the result set by pivot code (positions, not row ids).
    let mut partitions: Vec<(u32, Vec<usize>)> = Vec::new();
    {
        let mut index_of_code: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for (pos, &row) in result.row_ids().iter().enumerate() {
            let Some(code) = pivot_codec.encode(pivot_column, row as usize) else {
                continue;
            };
            if code == NULL_CODE {
                continue;
            }
            let slot = *index_of_code.entry(code).or_insert_with(|| {
                partitions.push((code, Vec::new()));
                partitions.len() - 1
            });
            partitions[slot].1.push(pos);
        }
    }

    // Resolve the pivot value list V.
    let selected_partitions: Vec<(u32, String, Vec<usize>)> = match &request.pivot_values {
        Some(labels) => {
            let mut out = Vec::with_capacity(labels.len());
            for label in labels {
                let code = pivot_codec.code_of_label(label).ok_or_else(|| {
                    CadError::UnknownPivotValue {
                        value: label.clone(),
                        pivot: request.pivot.clone(),
                    }
                })?;
                let members = partitions
                    .iter()
                    .find(|(c, _)| *c == code)
                    .map(|(_, m)| m.clone())
                    .unwrap_or_default();
                out.push((code, label.clone(), members));
            }
            out
        }
        None => {
            let mut parts = partitions.clone();
            match schema.field(pivot_col).data_type {
                // Categorical pivots: biggest partitions first.
                DataType::Categorical => {
                    parts.sort_by_key(|p| std::cmp::Reverse(p.1.len()));
                }
                // Binned numeric pivots: natural bin order.
                _ => parts.sort_by_key(|p| p.0),
            }
            parts
                .into_iter()
                .map(|(code, members)| {
                    let label = pivot_codec.label(code).to_owned();
                    (code, label, members)
                })
                .collect()
        }
    };
    let pivot_codes: Vec<u32> = selected_partitions.iter().map(|(c, _, _)| *c).collect();
    if pivot_codes.is_empty() {
        return Err(CadError::NoPivotValues);
    }
    pivot_span.add("rows_scanned", result.len() as u64);
    pivot_span.add("pivot_values", selected_partitions.len() as u64);
    drop(pivot_span);

    // --- Stage 1: Compare Attributes (Problem 1.1) ---
    let t0 = Instant::now();
    let fs_span = root.child("compare_attrs");
    let fs_cache_before = cache_stats(cache);
    let forced: Vec<usize> = request
        .compare_attrs
        .iter()
        .map(|name| schema.index_of(name))
        .collect::<dbex_table::Result<_>>()?;
    let candidates: Vec<usize> = (0..schema.len()).filter(|&i| i != pivot_col).collect();
    let candidates_scored = candidates.len();
    // Deadline already blown before stage 1 (e.g. a tiny budget): clamp
    // feature selection to a small sample instead of scanning everything.
    let mut fs_sample = request.config.fs_sample;
    if gauge.time_exhausted() {
        const FS_DEGRADED_CAP: usize = 1_000;
        if fs_sample.is_none_or(|s| s > FS_DEGRADED_CAP) {
            fs_sample = Some(FS_DEGRADED_CAP);
            degradation.push(Degradation {
                kind: DegradationKind::SampledFeatureSelection,
                pivot_value: None,
                reason: format!(
                    "time budget exhausted after {:?}; scoring attributes on a {FS_DEGRADED_CAP}-row sample",
                    gauge.elapsed()
                ),
            });
        }
    }
    let fs_config = FeatureSelectionConfig {
        max_attrs: request.max_compare_attrs,
        alpha: request.config.alpha,
        bins: request.config.bins,
        strategy: request.config.strategy,
        sample: fs_sample,
        scorer: request.config.scorer,
    };
    let class_of = |row: usize| -> Option<usize> {
        let code = pivot_codec.encode(pivot_column, row)?;
        pivot_codes.iter().position(|&c| c == code)
    };
    // Contingency tables are cached per class-label assignment; hash the
    // pivot column and the selected codes so two pivots over the same view
    // can never collide.
    let class_ctx = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(pivot_col as u64);
        for &code in &pivot_codes {
            mix(code as u64 + 1);
        }
        h
    };
    let (mut compare_attrs, scores) = select_compare_attributes_ctx(
        result,
        pivot_codes.len(),
        &class_of,
        pivot_col,
        &forced,
        &candidates,
        &fs_config,
        ScoringCtx {
            threads,
            cache,
            class_ctx,
        },
    );
    // Degenerate fallback: if nothing passes the significance filter, take
    // the best-scoring candidates anyway — an empty CAD View helps nobody.
    if compare_attrs.is_empty() {
        compare_attrs = scores
            .iter()
            .take(request.max_compare_attrs)
            .map(|s| s.attr_index)
            .collect();
    }
    if compare_attrs.is_empty() {
        compare_attrs = candidates
            .into_iter()
            .take(request.max_compare_attrs)
            .collect();
    }
    // The scoring view is the (possibly sampled) result set crossed with
    // every candidate attribute.
    let scoring_rows = fs_sample.map_or(result.len(), |s| result.len().min(s));
    fs_span.add("rows_scanned", (scoring_rows * candidates_scored) as u64);
    fs_span.add("attrs_scored", candidates_scored as u64);
    fs_span.add("attrs_selected", compare_attrs.len() as u64);
    let fs_cache_after = cache_stats(cache);
    fs_span.add("cache_hits", fs_cache_after.hits - fs_cache_before.hits);
    fs_span.add("cache_misses", fs_cache_after.misses - fs_cache_before.misses);
    drop(fs_span);
    let timing_compare = t0.elapsed();

    // --- Stage 2: Candidate IUnits (Problem 1.2) ---
    let t1 = Instant::now();
    let gen_span = root.child("iunit_generation");
    let enc_span = gen_span.child("encode_matrix");
    let enc_cache_before = cache_stats(cache);
    let matrix = CodedMatrix::encode_ctx(
        result,
        &compare_attrs,
        request.config.bins,
        request.config.strategy,
        threads,
        cache,
    );
    let coded: Vec<&CodedColumn> = matrix.columns.iter().collect();
    // Attributes that survived encoding, in selection order.
    let live_attrs: Vec<usize> = coded.iter().map(|c| c.attr_index).collect();
    if coded.is_empty() {
        return Err(CadError::NoCompareAttributes);
    }
    enc_span.add("rows_scanned", (result.len() * coded.len()) as u64);
    enc_span.add("attrs_encoded", coded.len() as u64);
    let enc_cache_after = cache_stats(cache);
    enc_span.add("cache_hits", enc_cache_after.hits - enc_cache_before.hits);
    enc_span.add(
        "cache_misses",
        enc_cache_after.misses - enc_cache_before.misses,
    );
    drop(enc_span);
    let space = OneHotSpace::from_columns(&coded);
    let k = request.iunits;

    // Iteration-cap clamping is recorded once, not per partition.
    let kmeans_iters = gauge.clamp_iters(request.config.kmeans_iters);
    if kmeans_iters < request.config.kmeans_iters {
        degradation.push(Degradation {
            kind: DegradationKind::ClampedKMeansIters,
            pivot_value: None,
            reason: format!(
                "k-means capped at {kmeans_iters} of {} configured iterations",
                request.config.kmeans_iters
            ),
        });
    }

    // Fan the per-pivot-value work (clustering + labeling) across the
    // pool. Each partition is independent and seeded identically to the
    // sequential path, and `par_map` returns results in partition order,
    // so the output — including the degradation log — is byte-identical
    // at any thread count.
    let mut candidate_sets: Vec<Vec<IUnit>> = Vec::with_capacity(selected_partitions.len());
    let mut partitions_reused = 0usize;
    let mut warm_starts = 0usize;
    // When there are fewer partitions than workers (few pivot values, the
    // common shape on real datasets), the leftover parallelism moves
    // *inside* each partition: the packed kernel splits its row walk into
    // deterministically-merged chunks. Dividing keeps the worst-case
    // thread count near `threads` (outer workers × inner chunks).
    let inner_threads = if threads > 1 {
        threads.div_ceil(selected_partitions.len().max(1)).max(1)
    } else {
        1
    };
    for (units, degraded, reused, warm) in dbex_par::par_map(
        threads,
        &selected_partitions,
        |_, (_, label, members)| {
            let span = gen_span.child("cluster_partition");
            gauge.charge_rows(members.len());
            let (units, degraded, reused, warm) = generate_candidates(
                members,
                &coded,
                &space,
                k,
                &request.config,
                kmeans_iters,
                inner_threads,
                &gauge,
                label,
                cache,
                result,
            );
            span.add("rows_clustered", members.len() as u64);
            span.add("candidates", units.len() as u64);
            span.add("degradations", degraded.len() as u64);
            span.add("partitions_reused", reused as u64);
            span.add("warm_starts", warm as u64);
            (units, degraded, reused, warm)
        },
    ) {
        candidate_sets.push(units);
        degradation.extend(degraded);
        partitions_reused += reused as usize;
        warm_starts += warm as usize;
    }
    drop(gen_span);
    let timing_iunits = t1.elapsed();

    // --- Stage 3: preference scores + diversified top-k (Problem 2) ---
    let t2 = Instant::now();
    let tau = request.config.tau_fraction * coded.len() as f64;
    // Resolve the preference once so the per-partition work is infallible
    // (a pool worker has no way to surface a typed error mid-map).
    let pref = resolve_preference(result, &request.preference)?;
    let staged: Vec<(u32, String, Vec<IUnit>)> = selected_partitions
        .into_iter()
        .zip(candidate_sets)
        .map(|((code, label, _members), units)| (code, label, units))
        .collect();
    // Per partition: preference scores, similarity graph, top-k solve.
    // Past the deadline, div-astar's exact search gives way to the greedy
    // heuristic (recorded once, after the fan-out). The clock is monotone,
    // so the sequential path degrades every partition after the first
    // exhausted one, exactly as before.
    let topk_span = root.child("topk");
    let solved: Vec<(Vec<usize>, Vec<f64>, bool)> =
        dbex_par::par_map(threads, &staged, |_, (_, _, units)| {
            let span = topk_span.child("solve_partition");
            let scores = preference_scores(units, result, &pref);
            let graph = ConflictGraph::from_similarity(
                units.len(),
                |a, b| iunit_similarity(&units[a], &units[b]),
                tau,
            );
            let used_greedy = gauge.time_exhausted();
            let solution = if used_greedy {
                greedy(&scores, &graph, k)
            } else {
                div_astar(&scores, &graph, k)
            };
            let mut chosen: Vec<usize> = solution.items;
            chosen.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            span.add("candidates", units.len() as u64);
            span.add("selected", chosen.len() as u64);
            span.add("greedy_solves", used_greedy as u64);
            (chosen, scores, used_greedy)
        });
    let mut greedy_partitions = 0usize;
    let mut rows = Vec::with_capacity(staged.len());
    for ((code, label, units), (chosen, scores, used_greedy)) in
        staged.into_iter().zip(solved)
    {
        if used_greedy {
            greedy_partitions += 1;
        }
        let iunits: Vec<IUnit> = {
            // Drain by index without cloning the rest. Indices from the
            // top-k solvers are distinct and in range; out-of-contract
            // values are skipped rather than trusted with a panic.
            let mut taken: Vec<Option<IUnit>> = units
                .into_iter()
                .zip(scores)
                .map(|(mut u, s)| {
                    u.score = s;
                    Some(u)
                })
                .collect();
            chosen
                .into_iter()
                .filter_map(|i| taken.get_mut(i).and_then(Option::take))
                .collect()
        };
        rows.push(CadRow {
            pivot_code: code,
            pivot_label: label,
            iunits,
        });
    }
    if greedy_partitions > 0 {
        degradation.push(Degradation {
            kind: DegradationKind::GreedyTopK,
            pivot_value: None,
            reason: format!(
                "time budget exhausted after {:?}; ranked IUnits greedily for \
                 {greedy_partitions} partition(s)",
                gauge.elapsed()
            ),
        });
    }
    drop(topk_span);
    let timing_others = t2.elapsed();

    root.add("degradations", degradation.len() as u64);
    root.add(
        "degradation_level",
        degradation.iter().map(|d| d.kind.severity()).max().unwrap_or(0),
    );
    drop(root);
    let trace = tracer.finish();
    dbex_obs::counter!("cad.degradations").incr(degradation.len() as u64);
    build_ms_histogram().observe_ms(build_start.elapsed());

    Ok(CadView {
        pivot_attr: pivot_col,
        pivot_name: request.pivot.clone(),
        compare_attrs: live_attrs.clone(),
        compare_names: live_attrs
            .iter()
            .map(|&i| schema.field(i).name.clone())
            .collect(),
        k,
        tau,
        rows,
        feature_scores: scores,
        timings: CadTimings {
            compare_attrs: timing_compare,
            iunit_generation: timing_iunits,
            others: timing_others,
        },
        threads_used: threads,
        degradation,
        partitions_reused,
        warm_starts,
        trace,
    })
}

/// The global build-latency histogram (fixed bounds: interactive-latency
/// decades from 1 ms to 2.5 s).
fn build_ms_histogram() -> std::sync::Arc<dbex_obs::Histogram> {
    static SLOT: std::sync::OnceLock<std::sync::Arc<dbex_obs::Histogram>> =
        std::sync::OnceLock::new();
    std::sync::Arc::clone(SLOT.get_or_init(|| {
        dbex_obs::global().histogram("cad.build_ms", &[1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0])
    }))
}

/// Sample cap used by the last clustering rung under an exhausted budget.
const DEGRADED_SAMPLE_CAP: usize = 256;

/// Rungs of the degradation ladder, in order of decreasing fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterRung {
    /// Full Lloyd iterations (possibly over `cluster_sample` rows).
    Full,
    /// Mini-batch k-means: constant work per point.
    MiniBatch,
    /// Full k-means over a tiny stride sample, remainder assigned.
    Sampled,
}

impl ClusterRung {
    fn next(self) -> Option<ClusterRung> {
        match self {
            ClusterRung::Full => Some(ClusterRung::MiniBatch),
            ClusterRung::MiniBatch => Some(ClusterRung::Sampled),
            ClusterRung::Sampled => None,
        }
    }

    fn kind(self) -> DegradationKind {
        match self {
            // `Full` never appears in a degradation record; mapped for
            // completeness only.
            ClusterRung::Full | ClusterRung::MiniBatch => DegradationKind::MiniBatchClustering,
            ClusterRung::Sampled => DegradationKind::SampledClustering,
        }
    }
}

/// Hash of the partition's *content* for the cluster-reuse cache key:
/// the member row ids (via [`View::fingerprint_positions`]) crossed with
/// every compare attribute's identity, cardinality, and dictionary codes
/// at those members. A numeric attribute re-binned after a refinement
/// changes its codes and so misses; categorical codes are stable across
/// refinements, which is what makes untouched partitions hit.
fn partition_fingerprint(
    result: &View<'_>,
    members: &[usize],
    coded: &[&CodedColumn],
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = result.fingerprint_positions(members);
    let mut mix = |word: u64| {
        hash = (hash ^ word).wrapping_mul(PRIME);
    };
    for col in coded {
        mix(col.attr_index as u64);
        mix(col.codec.cardinality() as u64);
        for &p in members {
            mix(u64::from(col.codes.get(p).copied().unwrap_or(NULL_CODE)) + 1);
        }
    }
    hash
}

/// Identity under which a pivot value's centroids are kept for warm
/// seeding: table, pivot value, live attribute set, and the parameters
/// that shape the centroid space. Deliberately *excludes* the partition
/// membership — warm starts exist precisely for when membership changed.
fn warm_start_key(
    result: &View<'_>,
    pivot_label: &str,
    coded: &[&CodedColumn],
    l: usize,
    config: &CadConfig,
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |word: u64| {
        hash = (hash ^ word).wrapping_mul(PRIME);
    };
    mix(result.table().id());
    for byte in pivot_label.as_bytes() {
        mix(u64::from(*byte) + 1);
    }
    for col in coded {
        mix(col.attr_index as u64);
        mix(col.codec.cardinality() as u64);
    }
    mix(l as u64);
    mix(config.seed);
    mix(config.plus_plus as u64);
    hash
}

/// Clusters one pivot partition into `l` candidate IUnits.
///
/// Budget exhaustion and clustering failures never propagate: the ladder
/// walks full k-means → mini-batch → sampled build → a single catch-all
/// IUnit, recording a [`Degradation`] for every rung it descends. The
/// degradations are *returned* rather than pushed into shared state so the
/// caller can run partitions on pool workers and still merge the log in
/// deterministic partition order.
///
/// With a [`StatsCache`], full-fidelity solutions are memoized per
/// partition fingerprint, so a facet refinement that leaves this pivot
/// value's rows untouched skips re-clustering entirely (the returned
/// `reused` flag). Reuse is bypassed whenever it could diverge from a cold
/// build: on any degraded rung, in warm-start mode, or while a cluster
/// fault is armed on this thread (a cold build would descend the ladder).
/// Returns `(units, degradations, reused, warm_started)`.
#[allow(clippy::too_many_arguments)]
fn generate_candidates(
    members: &[usize],
    coded: &[&CodedColumn],
    space: &OneHotSpace,
    k: usize,
    config: &CadConfig,
    kmeans_iters: usize,
    inner_threads: usize,
    gauge: &BudgetGauge<'_>,
    pivot_label: &str,
    cache: Option<&dbex_stats::StatsCache>,
    result: &View<'_>,
) -> (Vec<IUnit>, Vec<Degradation>, bool, bool) {
    let mut degradation = Vec::new();
    if members.is_empty() {
        return (Vec::new(), degradation, false, false);
    }
    let adaptive_clamp =
        config.adaptive_iunits && members.len() > CadConfig::ADAPTIVE_THRESHOLD;
    let l = if adaptive_clamp {
        k
    } else {
        ((config.candidate_factor * k as f64).ceil() as usize).max(k)
    };

    // Pick the starting rung from the budget state.
    let mut rung = if gauge.time_exhausted() {
        degradation.push(Degradation {
            kind: DegradationKind::SampledClustering,
            pivot_value: Some(pivot_label.to_owned()),
            reason: format!(
                "time budget exhausted after {:?}; clustering a {}-row sample",
                gauge.elapsed(),
                DEGRADED_SAMPLE_CAP.min(members.len())
            ),
        });
        ClusterRung::Sampled
    } else if gauge.rows_exhausted(members.len()) {
        degradation.push(Degradation {
            kind: DegradationKind::MiniBatchClustering,
            pivot_value: Some(pivot_label.to_owned()),
            reason: format!(
                "partition has {} rows over the {}-row budget",
                members.len(),
                gauge.budget().max_rows.unwrap_or(0)
            ),
        });
        ClusterRung::MiniBatch
    } else {
        ClusterRung::Full
    };

    // Exact cluster reuse: only at full fidelity (degraded rungs are shaped
    // by transient budget state), only outside warm-start mode (warm
    // results are history-dependent), and only with no armed cluster fault
    // (a cold build would degrade, so a cache hit would diverge from it).
    let faults_clear = dbex_cluster::fault::check("cluster::kmeans").is_ok()
        && dbex_cluster::fault::check("cluster::minibatch").is_ok();
    let mut reuse_key = None;
    if rung == ClusterRung::Full && !config.warm_start && faults_clear {
        if let Some(cache) = cache {
            let key = ClusterKey {
                partition_fp: partition_fingerprint(result, members, coded),
                l,
                iters: kmeans_iters,
                seed: config.seed,
                plus_plus: config.plus_plus,
                sample: config.cluster_sample.unwrap_or(usize::MAX),
            };
            if let Some(solution) = cache.cluster_lookup(&key) {
                dbex_obs::counter!("cluster.partitions_reused").incr(1);
                let units = solution
                    .clusters
                    .iter()
                    .map(|cluster| {
                        let mems: Vec<usize> = cluster
                            .iter()
                            .filter_map(|&i| members.get(i as usize).copied())
                            .collect();
                        IUnit::from_members(mems, coded, &config.label)
                    })
                    .collect();
                return (units, degradation, true, false);
            }
            reuse_key = Some(key);
        }
    }

    // Warm seeding is keyed on the pivot value's identity, not its
    // membership, so a refined (shrunken/grown) partition can still seed
    // from the previous build's centroids.
    let warm = (config.warm_start && rung != ClusterRung::MiniBatch)
        .then(|| cache.map(|c| (c, warm_start_key(result, pivot_label, coded, l, config))))
        .flatten();

    loop {
        match cluster_partition(
            members,
            coded,
            space,
            l,
            config,
            kmeans_iters,
            inner_threads,
            rung,
            warm,
        ) {
            Ok((clusters, warm_started)) => {
                if rung == ClusterRung::Full {
                    if let (Some(key), Some(cache)) = (reuse_key, cache) {
                        cache.cluster_insert(
                            key,
                            ClusterSolution {
                                clusters: clusters.clone(),
                            },
                        );
                    }
                }
                if warm_started {
                    dbex_obs::counter!("cluster.warm_starts").incr(1);
                }
                let units = clusters
                    .iter()
                    .map(|cluster| {
                        let mems: Vec<usize> = cluster
                            .iter()
                            .filter_map(|&i| members.get(i as usize).copied())
                            .collect();
                        IUnit::from_members(mems, coded, &config.label)
                    })
                    .collect();
                return (units, degradation, false, warm_started);
            }
            Err(e) => match rung.next() {
                Some(next) => {
                    degradation.push(Degradation {
                        kind: next.kind(),
                        pivot_value: Some(pivot_label.to_owned()),
                        reason: format!("{rung:?} clustering failed ({e}); degrading"),
                    });
                    rung = next;
                }
                None => {
                    // Every clustering rung failed: one catch-all IUnit
                    // still gives the pivot row a well-formed summary.
                    degradation.push(Degradation {
                        kind: DegradationKind::SingleUnitFallback,
                        pivot_value: Some(pivot_label.to_owned()),
                        reason: format!("all clustering fallbacks failed ({e})"),
                    });
                    let unit = IUnit::from_members(members.to_vec(), coded, &config.label);
                    return (vec![unit], degradation, false, false);
                }
            },
        }
    }
}

/// One attempt at clustering a partition on a specific ladder rung.
///
/// Returns the non-empty clusters as **indices into `members`** (the
/// representation the reuse cache stores, position-independent) plus
/// whether the k-means was warm-seeded. The default path clusters on a
/// [`PackedMatrix`] of `u8`/`u16` dictionary codes — no per-tuple one-hot
/// vectors are materialized — and is bit-identical to the sparse one-hot
/// reference, which remains both the oracle and the automatic fallback
/// when the attribute set cannot pack.
#[allow(clippy::too_many_arguments)]
fn cluster_partition(
    members: &[usize],
    coded: &[&CodedColumn],
    space: &OneHotSpace,
    l: usize,
    config: &CadConfig,
    kmeans_iters: usize,
    inner_threads: usize,
    rung: ClusterRung,
    warm: Option<(&dbex_stats::StatsCache, u64)>,
) -> Result<(Vec<Vec<u32>>, bool), dbex_cluster::ClusterError> {
    // Cluster a sample and assign the rest (Optimization 1). The sampled
    // rung forces a tiny cap regardless of configuration.
    let cap = match rung {
        ClusterRung::Sampled => Some(
            config
                .cluster_sample
                .unwrap_or(DEGRADED_SAMPLE_CAP)
                .min(DEGRADED_SAMPLE_CAP),
        ),
        _ => config.cluster_sample,
    };
    // Train/holdout split as member-list indices; positions are looked up
    // only where the encoders need them.
    let (train_idx, holdout_idx): (Vec<usize>, Vec<usize>) = match cap {
        Some(cap) if members.len() > cap => {
            // Deterministic stride sample over the member positions.
            let step = members.len() as f64 / cap as f64;
            let mut train = Vec::with_capacity(cap);
            let mut is_train = vec![false; members.len()];
            let mut pos = 0.0;
            while train.len() < cap {
                let idx = pos as usize;
                if idx >= members.len() {
                    break;
                }
                if !is_train[idx] {
                    is_train[idx] = true;
                    train.push(idx);
                }
                pos += step;
            }
            let holdout = (0..members.len()).filter(|&i| !is_train[i]).collect();
            (train, holdout)
        }
        _ => ((0..members.len()).collect(), Vec::new()),
    };
    let train_members: Vec<usize> = train_idx.iter().map(|&i| members[i]).collect();

    let packed = if config.packed_kernel {
        PackedMatrix::from_columns(coded, &train_members)
    } else {
        None
    };
    if packed.is_some() {
        dbex_obs::counter!("cluster.packed_path").incr(1);
    } else {
        dbex_obs::counter!("cluster.onehot_path").incr(1);
    }

    let mut warm_started = false;
    let km: KMeansResult = match (&packed, rung) {
        (Some(matrix), ClusterRung::MiniBatch) => mini_batch_kmeans_packed(
            matrix,
            &MiniBatchConfig {
                k: l,
                batch_size: 256,
                batches: kmeans_iters.max(1) * 3,
                seed: config.seed,
            },
        )?,
        (Some(matrix), _) => {
            let initial = warm.and_then(|(cache, key)| cache.warm_centroids(key));
            warm_started = initial.is_some();
            kmeans_packed_warm(
                matrix,
                &KMeansConfig {
                    k: l,
                    max_iters: kmeans_iters,
                    seed: config.seed,
                    plus_plus: config.plus_plus,
                    threads: inner_threads,
                },
                initial.as_ref().map(|c| c.as_slice()),
            )?
        }
        (None, ClusterRung::MiniBatch) => mini_batch_kmeans(
            &space.encode_positions(coded, &train_members),
            space.dim(),
            &MiniBatchConfig {
                k: l,
                batch_size: 256,
                batches: kmeans_iters.max(1) * 3,
                seed: config.seed,
            },
        )?,
        (None, _) => kmeans(
            &space.encode_positions(coded, &train_members),
            space.dim(),
            &KMeansConfig {
                k: l,
                max_iters: kmeans_iters,
                seed: config.seed,
                plus_plus: config.plus_plus,
                threads: 1, // the one-hot reference path is sequential
            },
        )?,
    };
    if let Some((cache, key)) = warm {
        // Publish this build's centroid histograms so the *next* build of
        // the same pivot value (possibly over refined membership) can
        // warm-seed. Mini-batch runs leave `histograms` empty (their
        // centroids are learning-rate blends, not count ratios) and keep
        // whatever a previous Lloyd run stored.
        if !km.histograms.is_empty() {
            cache.set_warm_centroids(key, km.histograms.clone());
        }
    }

    // Bucket every member (train + holdout) into its cluster.
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); km.centroids.len()];
    for (i, &mi) in train_idx.iter().enumerate() {
        if let Some(slot) = clusters.get_mut(km.assignments[i]) {
            slot.push(mi as u32);
        }
    }
    if !holdout_idx.is_empty() {
        let holdout_members: Vec<usize> = holdout_idx.iter().map(|&i| members[i]).collect();
        let holdout_packed = packed
            .is_some()
            .then(|| PackedMatrix::from_columns(coded, &holdout_members))
            .flatten();
        let assignments = match &holdout_packed {
            Some(matrix) => assign_all_packed(&km, matrix),
            None => km.assign_all(&space.encode_positions(coded, &holdout_members)),
        };
        for (assignment, &mi) in assignments.iter().zip(&holdout_idx) {
            if let Some(slot) = clusters.get_mut(*assignment) {
                slot.push(mi as u32);
            }
        }
    }

    Ok((
        clusters.into_iter().filter(|c| !c.is_empty()).collect(),
        warm_started,
    ))
}

/// A [`Preference`] resolved against the result schema, so applying it to
/// any partition is infallible (and thus safe to run on pool workers).
#[derive(Debug, Clone, Copy)]
enum PrefSpec {
    /// Keep the size-based scores IUnits are born with.
    ClusterSize,
    /// Score by the mean of a (validated numeric) column.
    Attribute { col: usize, ascending: bool },
}

/// Validates the preference function once, before the per-partition loop.
fn resolve_preference(
    result: &View<'_>,
    preference: &Preference,
) -> Result<PrefSpec, CadError> {
    match preference {
        Preference::ClusterSize => Ok(PrefSpec::ClusterSize),
        Preference::AttributeAsc(name) | Preference::AttributeDesc(name) => {
            let col = result.table().schema().index_of(name)?;
            if result.table().column(col).data_type() == DataType::Categorical {
                return Err(CadError::NonNumericPreference { attr: name.clone() });
            }
            Ok(PrefSpec::Attribute {
                col,
                ascending: matches!(preference, Preference::AttributeAsc(_)),
            })
        }
    }
}

/// Preference score per candidate IUnit, parallel to `units`.
fn preference_scores(units: &[IUnit], result: &View<'_>, pref: &PrefSpec) -> Vec<f64> {
    match *pref {
        PrefSpec::ClusterSize => units.iter().map(|u| u.score).collect(),
        PrefSpec::Attribute { col, ascending } => {
            let column = result.table().column(col);
            let means: Vec<f64> = units
                .iter()
                .map(|u| {
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for &pos in &u.members {
                        let row = result.row_ids()[pos] as usize;
                        if let Some(v) = column.get_f64(row) {
                            sum += v;
                            n += 1;
                        }
                    }
                    if n == 0 {
                        0.0
                    } else {
                        sum / n as f64
                    }
                })
                .collect();
            let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            means
                .into_iter()
                .map(|mean| {
                    if ascending {
                        hi - mean + 1.0
                    } else {
                        mean - lo + 1.0
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{Field, TableBuilder};

    /// A small car-like table with clear Make → (Engine, Price) structure.
    fn table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Color", DataType::Categorical),
        ])
        .unwrap();
        // Ford: V6 around 25K and V4 around 15K; Jeep: V8 around 35K.
        for i in 0..60 {
            let color = ["Red", "Blue", "Black"][i % 3];
            if i % 2 == 0 {
                b.push_row(vec!["Ford".into(), "V6".into(), (25_000 + (i as i64 % 7) * 100).into(), color.into()]).unwrap();
            } else {
                b.push_row(vec!["Ford".into(), "V4".into(), (15_000 + (i as i64 % 7) * 100).into(), color.into()]).unwrap();
            }
            b.push_row(vec!["Jeep".into(), "V8".into(), (35_000 + (i as i64 % 5) * 100).into(), color.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn builds_rows_per_pivot_value() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(&view, &CadRequest::new("Make").with_iunits(2)).unwrap();
        assert_eq!(cad.rows.len(), 2);
        // Rows ordered by partition size desc: Jeep (60) then Ford (60)?
        // Equal sizes — both present regardless of order.
        let labels: Vec<&str> = cad.rows.iter().map(|r| r.pivot_label.as_str()).collect();
        assert!(labels.contains(&"Ford"));
        assert!(labels.contains(&"Jeep"));
        for row in &cad.rows {
            assert!(!row.iunits.is_empty());
            assert!(row.iunits.len() <= 2);
        }
    }

    #[test]
    fn engine_selected_as_compare_attribute() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(&view, &CadRequest::new("Make")).unwrap();
        assert!(
            cad.compare_names.iter().any(|n| n == "Engine"),
            "Engine strongly contrasts Makes: {:?}",
            cad.compare_names
        );
        // Color is independent of Make and should not be selected.
        assert!(
            !cad.compare_names.iter().any(|n| n == "Color"),
            "{:?}",
            cad.compare_names
        );
    }

    #[test]
    fn explicit_pivot_values_and_order() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(
            &view,
            &CadRequest::new("Make").with_pivot_values(vec!["Jeep", "Ford"]),
        )
        .unwrap();
        assert_eq!(cad.rows[0].pivot_label, "Jeep");
        assert_eq!(cad.rows[1].pivot_label, "Ford");
    }

    #[test]
    fn unknown_pivot_value_rejected() {
        let t = table();
        let view = t.full_view();
        let err = build_cad_view(
            &view,
            &CadRequest::new("Make").with_pivot_values(vec!["Tesla"]),
        );
        assert!(err.is_err());
    }

    #[test]
    fn numeric_pivot_binned_into_ranges() {
        // Numeric pivots are supported by discretization: bins become the
        // pivot values, in natural numeric order.
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(&view, &CadRequest::new("Price").with_iunits(2)).unwrap();
        assert!(cad.rows.len() >= 2);
        for row in &cad.rows {
            assert!(row.pivot_label.contains('-'), "bin label: {}", row.pivot_label);
        }
        // Engine contrasts price ranges strongly (V4 cheap, V8 expensive).
        assert!(cad.compare_names.iter().any(|n| n == "Engine"));
        // Unknown attributes still error.
        assert!(build_cad_view(&view, &CadRequest::new("Nope")).is_err());
    }

    #[test]
    fn forced_compare_attribute_included() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(
            &view,
            &CadRequest::new("Make").with_compare(vec!["Color"]),
        )
        .unwrap();
        assert_eq!(cad.compare_names[0], "Color");
    }

    #[test]
    fn ford_iunits_separate_v4_and_v6() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(&view, &CadRequest::new("Make").with_iunits(2)).unwrap();
        let ford = cad.row("Ford").unwrap();
        let engine_pos = cad
            .compare_names
            .iter()
            .position(|n| n == "Engine")
            .unwrap();
        let labels: Vec<String> = ford
            .iunits
            .iter()
            .map(|u| u.labels[engine_pos].join(","))
            .collect();
        assert!(
            labels.iter().any(|l| l.contains("V6")) && labels.iter().any(|l| l.contains("V4")),
            "expected V4 and V6 IUnits, got {labels:?}"
        );
    }

    #[test]
    fn preference_by_price_ascending() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(
            &view,
            &CadRequest::new("Make")
                .with_iunits(2)
                .with_pivot_values(vec!["Ford"])
                .with_preference(Preference::AttributeAsc("Price".into())),
        )
        .unwrap();
        let ford = &cad.rows[0];
        // First IUnit should be the cheap (V4 ≈ 15K) cluster.
        let price_pos = cad.compare_names.iter().position(|n| n == "Price");
        let engine_pos = cad.compare_names.iter().position(|n| n == "Engine").unwrap();
        assert!(price_pos.is_some() || engine_pos < usize::MAX);
        assert!(
            ford.iunits[0].labels[engine_pos].contains(&"V4".to_string()),
            "cheapest cluster first: {:?}",
            ford.iunits[0].labels
        );
    }

    #[test]
    fn categorical_preference_attribute_rejected() {
        let t = table();
        let view = t.full_view();
        let err = build_cad_view(
            &view,
            &CadRequest::new("Make")
                .with_preference(Preference::AttributeAsc("Color".into())),
        );
        assert!(err.is_err());
    }

    #[test]
    fn timings_populated() {
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(&view, &CadRequest::new("Make")).unwrap();
        assert!(cad.timings.total() > Duration::ZERO);
    }

    #[test]
    fn optimized_config_gives_same_shape() {
        let t = table();
        let view = t.full_view();
        let base = build_cad_view(&view, &CadRequest::new("Make").with_iunits(2)).unwrap();
        let opt = build_cad_view(
            &view,
            &CadRequest::new("Make")
                .with_iunits(2)
                .with_config(CadConfig::optimized()),
        )
        .unwrap();
        assert_eq!(base.rows.len(), opt.rows.len());
        assert_eq!(base.compare_names, opt.compare_names);
    }

    #[test]
    fn sampled_clustering_covers_every_member() {
        // With cluster_sample smaller than the partition, holdout rows are
        // assigned to learned centroids — IUnit sizes must still cover the
        // entire partition.
        let t = table();
        let view = t.full_view();
        let config = CadConfig {
            cluster_sample: Some(10),
            ..CadConfig::default()
        };
        let cad = build_cad_view(
            &view,
            &CadRequest::new("Make")
                .with_pivot_values(vec!["Ford"])
                .with_iunits(2)
                .with_config(config),
        )
        .unwrap();
        let covered: usize = cad.rows[0].iunits.iter().map(|u| u.size).sum();
        let ford_rows = t
            .filter(&dbex_table::Predicate::eq("Make", "Ford"))
            .unwrap()
            .len();
        // Diversified top-k may drop a candidate cluster, but with k=2 and
        // two real clusters everything should be covered here.
        assert_eq!(covered, ford_rows);
    }

    #[test]
    fn adaptive_candidates_clamp_l() {
        // Partition below the threshold: adaptive config behaves like the
        // default (this exercises the flag path; the threshold behavior at
        // >10K rows is covered by the fig9/opt benches).
        let t = table();
        let view = t.full_view();
        let adaptive = build_cad_view(
            &view,
            &CadRequest::new("Make").with_config(CadConfig {
                adaptive_iunits: true,
                ..CadConfig::default()
            }),
        )
        .unwrap();
        let normal = build_cad_view(&view, &CadRequest::new("Make")).unwrap();
        assert_eq!(adaptive.rows.len(), normal.rows.len());
    }

    /// Everything observable about a view, rendered to one comparable string.
    fn view_digest(cad: &CadView) -> String {
        let mut out = format!(
            "pivot={} compare={:?} k={} tau={}\n",
            cad.pivot_name, cad.compare_names, cad.k, cad.tau
        );
        for s in &cad.feature_scores {
            out.push_str(&format!(
                "score {} {} {}\n",
                s.attr_index,
                s.statistic.to_bits(),
                s.p_value.to_bits()
            ));
        }
        for row in &cad.rows {
            out.push_str(&format!("row {} {}\n", row.pivot_code, row.pivot_label));
            for u in &row.iunits {
                out.push_str(&format!(
                    "  iunit size={} score={} labels={:?} members={:?}\n",
                    u.size,
                    u.score.to_bits(),
                    u.labels,
                    u.members
                ));
            }
        }
        for d in &cad.degradation {
            out.push_str(&format!("degraded {d}\n"));
        }
        out
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        let t = table();
        let view = t.full_view();
        let request = |threads: usize| {
            CadRequest::new("Make").with_iunits(2).with_config(CadConfig {
                threads,
                ..CadConfig::default()
            })
        };
        let sequential = build_cad_view(&view, &request(1)).unwrap();
        assert_eq!(sequential.threads_used, 1);
        for threads in [2, 4, 8] {
            let parallel = build_cad_view(&view, &request(threads)).unwrap();
            assert_eq!(parallel.threads_used, threads);
            assert_eq!(
                view_digest(&parallel),
                view_digest(&sequential),
                "{threads}-thread build diverged from sequential"
            );
        }
    }

    #[test]
    fn cached_build_matches_uncached_exactly() {
        let t = table();
        let view = t.full_view();
        let request = CadRequest::new("Make").with_iunits(2);
        let uncached = build_cad_view(&view, &request).unwrap();
        let cache = dbex_stats::StatsCache::new();
        let first = build_cad_view_cached(&view, &request, Some(&cache)).unwrap();
        let second = build_cad_view_cached(&view, &request, Some(&cache)).unwrap();
        assert_eq!(view_digest(&first), view_digest(&uncached));
        assert_eq!(view_digest(&second), view_digest(&uncached));
        let stats = cache.stats();
        assert!(stats.hits > 0, "second build should hit the cache: {stats}");
    }

    #[test]
    fn parallel_build_still_degrades_under_budget() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        let t = table();
        let view = t.full_view();
        let clock = Arc::new(AtomicU64::new(500));
        let request = CadRequest::new("Make")
            .with_iunits(2)
            .with_config(CadConfig {
                threads: 4,
                ..CadConfig::default()
            })
            .with_budget(
                ExecBudget::unlimited()
                    .with_time_limit(Duration::ZERO)
                    .with_manual_clock(clock),
            );
        let cad = build_cad_view(&view, &request).unwrap();
        assert!(cad.is_degraded(), "zero deadline must degrade");
        assert!(
            cad.degradation
                .iter()
                .any(|d| d.kind == DegradationKind::SampledClustering),
            "{:?}",
            cad.degradation
        );
        assert!(
            cad.degradation
                .iter()
                .any(|d| d.kind == DegradationKind::GreedyTopK),
            "{:?}",
            cad.degradation
        );
    }

    #[test]
    fn rows_are_charged_against_the_gauge() {
        // charge_rows totals the partition sizes regardless of threading;
        // exercised indirectly here by just ensuring a build completes with
        // an auto thread count (0 resolves via DBEX_THREADS / hardware).
        let t = table();
        let view = t.full_view();
        let cad = build_cad_view(
            &view,
            &CadRequest::new("Make").with_config(CadConfig {
                threads: 0,
                ..CadConfig::default()
            }),
        )
        .unwrap();
        assert!(cad.threads_used >= 1);
    }

    #[test]
    fn empty_result_rejected() {
        let t = table();
        let empty = t
            .filter(&dbex_table::Predicate::eq("Make", "Tesla"))
            .unwrap();
        assert!(build_cad_view(&empty, &CadRequest::new("Make")).is_err());
    }
}
