//! The CAD View structure, its similarity operations, and rendering.

use crate::budget::Degradation;
use crate::iunit::IUnit;
use crate::simil::{attribute_value_distance, iunit_similarity};
use dbex_stats::feature::FeatureScore;

/// One row of the CAD View: a pivot value and its top-k IUnits, most
/// relevant first.
#[derive(Debug, Clone)]
pub struct CadRow {
    /// Dictionary code of the pivot value.
    pub pivot_code: u32,
    /// Display label of the pivot value.
    pub pivot_label: String,
    /// Top-k IUnits, in descending preference-score order.
    pub iunits: Vec<IUnit>,
}

/// A materialized Conditional Attribute Dependency View (paper Table 1).
#[derive(Debug, Clone)]
pub struct CadView {
    /// Schema index of the Pivot Attribute.
    pub pivot_attr: usize,
    /// Name of the Pivot Attribute.
    pub pivot_name: String,
    /// Schema indices of the Compare Attributes, in display order.
    pub compare_attrs: Vec<usize>,
    /// Names of the Compare Attributes, in display order.
    pub compare_names: Vec<String>,
    /// Requested IUnits per row (`k`).
    pub k: usize,
    /// Absolute similarity threshold `τ` used for the `≈` relation.
    pub tau: f64,
    /// One row per selected pivot value.
    pub rows: Vec<CadRow>,
    /// Chi-square scores of every candidate Compare Attribute
    /// (diagnostics; sorted by decreasing statistic).
    pub feature_scores: Vec<FeatureScore>,
    /// Per-stage build timings.
    pub timings: crate::builder::CadTimings,
    /// Worker threads the builder fanned out to (`1` = fully sequential,
    /// on the caller's thread). Surfaced by `EXPLAIN CADVIEW`.
    pub threads_used: usize,
    /// Shortcuts the builder took under budget pressure or after
    /// recoverable failures (empty for a full-fidelity build). Surfaced
    /// by `EXPLAIN CADVIEW` and the REPL.
    pub degradation: Vec<Degradation>,
    /// Pivot partitions whose clustering was served verbatim from the
    /// stats cache's cluster-reuse map (always 0 without a cache).
    /// Surfaced by `EXPLAIN CADVIEW`.
    pub partitions_reused: usize,
    /// Partitions whose k-means was warm-seeded from a previous build's
    /// centroids (only in opt-in [`crate::builder::CadConfig::warm_start`]
    /// mode). Surfaced by `EXPLAIN CADVIEW`.
    pub warm_starts: usize,
    /// Span tree recorded by [`crate::builder::build_cad_view_traced`]
    /// when built with an enabled tracer (`None` otherwise). Surfaced by
    /// `EXPLAIN ANALYZE CADVIEW` and the REPL's `.trace on` mode.
    pub trace: Option<dbex_obs::Trace>,
}

impl CadView {
    /// True when the builder degraded any stage (see [`Self::degradation`]).
    pub fn is_degraded(&self) -> bool {
        !self.degradation.is_empty()
    }

    /// The row for a pivot value label.
    pub fn row(&self, pivot_label: &str) -> Option<&CadRow> {
        self.rows.iter().find(|r| r.pivot_label == pivot_label)
    }

    /// The `idx`-th (0-based) IUnit of a pivot value.
    pub fn iunit(&self, pivot_label: &str, idx: usize) -> Option<&IUnit> {
        self.row(pivot_label).and_then(|r| r.iunits.get(idx))
    }

    /// `HIGHLIGHT SIMILAR IUNITS`: all IUnits across the view whose
    /// Algorithm-1 similarity to `(pivot_label, idx)` is at least `tau`
    /// (`None` uses the view's own threshold). The probe itself is
    /// excluded. Returns `(pivot_label, iunit_index, similarity)` triples
    /// sorted by decreasing similarity.
    pub fn highlight_similar(
        &self,
        pivot_label: &str,
        idx: usize,
        tau: Option<f64>,
    ) -> Vec<(String, usize, f64)> {
        let tau = tau.unwrap_or(self.tau);
        let Some(probe) = self.iunit(pivot_label, idx) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for row in &self.rows {
            for (j, unit) in row.iunits.iter().enumerate() {
                if row.pivot_label == pivot_label && j == idx {
                    continue;
                }
                let s = iunit_similarity(probe, unit);
                if s >= tau {
                    out.push((row.pivot_label.clone(), j, s));
                }
            }
        }
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// `REORDER ROWS ... ORDER BY SIMILARITY(value)`: pivot labels ordered
    /// by increasing Algorithm-2 distance to `pivot_label` (the preferred
    /// value first, distance 0). Ties in the integer-valued rank distance
    /// are broken by decreasing continuous content similarity
    /// ([`crate::simil::list_content_similarity`]). Returns
    /// `(pivot_label, distance)` pairs.
    pub fn reorder_rows(&self, pivot_label: &str) -> Vec<(String, f64)> {
        let Some(reference) = self.row(pivot_label) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64, f64)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.pivot_label.clone(),
                    attribute_value_distance(&reference.iunits, &r.iunits, self.tau),
                    crate::simil::list_content_similarity(&reference.iunits, &r.iunits),
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then_with(|| b.2.total_cmp(&a.2))
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(l, d, _)| (l, d)).collect()
    }

    /// Continuous content similarity between two pivot values' IUnit lists
    /// (the tie-breaker of [`Self::reorder_rows`], exposed for clients that
    /// want the smooth score directly).
    pub fn content_similarity(&self, a: &str, b: &str) -> Option<f64> {
        let ra = self.row(a)?;
        let rb = self.row(b)?;
        Some(crate::simil::list_content_similarity(
            &ra.iunits, &rb.iunits,
        ))
    }

    /// Applies a row ordering produced by [`Self::reorder_rows`] in place.
    pub fn apply_row_order(&mut self, order: &[(String, f64)]) {
        let mut reordered = Vec::with_capacity(self.rows.len());
        for (label, _) in order {
            if let Some(pos) = self.rows.iter().position(|r| &r.pivot_label == label) {
                reordered.push(self.rows.remove(pos));
            }
        }
        reordered.append(&mut self.rows);
        self.rows = reordered;
    }

    /// Renders the view with highlight marks: the IUnits listed in
    /// `highlights` (as `(pivot label, iunit index)` pairs — e.g. the
    /// output of [`Self::highlight_similar`]) get a leading summary line,
    /// mirroring the interface's "highlight similar IUnits" visual (paper
    /// Section 5, modification 2).
    pub fn render_with_highlights(&self, highlights: &[(String, usize)]) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let marks: Vec<usize> = highlights
                .iter()
                .filter(|(label, _)| *label == row.pivot_label)
                .map(|&(_, idx)| idx)
                .collect();
            if !marks.is_empty() {
                let ids: Vec<String> = marks.iter().map(|i| format!("IUnit {}", i + 1)).collect();
                out.push_str(&format!(
                    "* {}: {} highlighted\n",
                    row.pivot_label,
                    ids.join(", ")
                ));
            }
        }
        out.push_str(&self.render());
        out
    }

    /// Renders the view as an ASCII table shaped like the paper's Table 1:
    /// pivot value column, Compare Attributes column, then one column per
    /// IUnit rank, with each cell showing that attribute's bracketed label.
    pub fn render(&self) -> String {
        let max_units = self
            .rows
            .iter()
            .map(|r| r.iunits.len())
            .max()
            .unwrap_or(0)
            .max(1);
        let n_attrs = self.compare_names.len();

        // Logical grid: each CAD row expands to `n_attrs` text lines.
        let mut header: Vec<String> = vec![self.pivot_name.clone(), "Compare Attrs".into()];
        for i in 0..max_units {
            header.push(format!("IUnit {}", i + 1));
        }
        let mut grid: Vec<Vec<String>> = vec![header];
        for row in &self.rows {
            for (a, attr_name) in self.compare_names.iter().enumerate() {
                let mut line = Vec::with_capacity(2 + max_units);
                line.push(if a == 0 { row.pivot_label.clone() } else { String::new() });
                line.push(attr_name.clone());
                for u in 0..max_units {
                    line.push(match row.iunits.get(u) {
                        Some(unit) => unit.label_of(a),
                        None => String::new(),
                    });
                }
                grid.push(line);
            }
        }

        // Column widths.
        let cols = 2 + max_units;
        let mut widths = vec![0usize; cols];
        for line in &grid {
            for (c, cell) in line.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        let separator = |out: &mut String| {
            for &w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        separator(&mut out);
        for (i, line) in grid.iter().enumerate() {
            out.push('|');
            for (c, cell) in line.iter().enumerate() {
                let pad = widths[c] - cell.chars().count();
                out.push(' ');
                out.push_str(cell);
                out.push_str(&" ".repeat(pad + 1));
                out.push('|');
            }
            out.push('\n');
            // Separator after the header and after each pivot-value block.
            if i == 0 || (i > 0 && (i - 1) % n_attrs.max(1) == n_attrs.max(1) - 1) {
                separator(&mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_cad_view, CadRequest};
    use dbex_table::{DataType, Field, TableBuilder};

    fn cad() -> CadView {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        // Ford and Chevy share V6 ≈ 25K structure; Jeep is V8 ≈ 40K.
        for i in 0..40i64 {
            b.push_row(vec!["Ford".into(), "V6".into(), (25_000 + i * 10).into()]).unwrap();
            b.push_row(vec!["Chevrolet".into(), "V6".into(), (25_200 + i * 10).into()]).unwrap();
            b.push_row(vec!["Jeep".into(), "V8".into(), (40_000 + i * 10).into()]).unwrap();
            if i % 2 == 0 {
                b.push_row(vec!["Ford".into(), "V4".into(), (15_000 + i * 10).into()]).unwrap();
                b.push_row(vec!["Chevrolet".into(), "V4".into(), (15_100 + i * 10).into()]).unwrap();
            }
        }
        let t = b.finish();
        // CadView is fully self-contained (owns its labels and frequency
        // vectors), so it may outlive the table it was built from.
        let mut cad =
            build_cad_view(&t.full_view(), &CadRequest::new("Make").with_iunits(2)).unwrap();
        cad.rows.sort_by(|a, b| a.pivot_label.cmp(&b.pivot_label));
        cad
    }

    #[test]
    fn row_and_iunit_lookup() {
        let cad = cad();
        assert!(cad.row("Ford").is_some());
        assert!(cad.row("Tesla").is_none());
        assert!(cad.iunit("Ford", 0).is_some());
        assert!(cad.iunit("Ford", 99).is_none());
    }

    #[test]
    fn highlight_finds_cross_row_twins() {
        let cad = cad();
        // Ford's top IUnit (V6 cluster) should match a Chevrolet IUnit.
        let hits = cad.highlight_similar("Ford", 0, None);
        assert!(
            hits.iter().any(|(label, _, _)| label == "Chevrolet"),
            "expected a similar Chevrolet IUnit, got {hits:?}"
        );
        // And the probe itself is never in the result.
        assert!(hits.iter().all(|(label, j, _)| !(label == "Ford" && *j == 0)));
        // Similarities sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn reorder_ranks_similar_make_first() {
        let cad = cad();
        let order = cad.reorder_rows("Ford");
        assert_eq!(order[0].0, "Ford");
        assert_eq!(order[0].1, 0.0);
        assert_eq!(order[1].0, "Chevrolet", "order: {order:?}");
        assert_eq!(order[2].0, "Jeep");
        assert!(order[1].1 < order[2].1);
    }

    #[test]
    fn apply_row_order_rearranges() {
        let mut cad = cad();
        let order = cad.reorder_rows("Jeep");
        cad.apply_row_order(&order);
        assert_eq!(cad.rows[0].pivot_label, "Jeep");
        assert_eq!(cad.rows.len(), 3);
    }

    #[test]
    fn highlight_with_loose_threshold_returns_more() {
        let cad = cad();
        let strict = cad.highlight_similar("Ford", 0, Some(cad.tau)).len();
        let loose = cad.highlight_similar("Ford", 0, Some(0.0)).len();
        assert!(loose >= strict);
        // With τ=0 every other IUnit qualifies.
        let total: usize = cad.rows.iter().map(|r| r.iunits.len()).sum();
        assert_eq!(loose, total - 1);
    }

    #[test]
    fn render_contains_structure() {
        let cad = cad();
        let text = cad.render();
        assert!(text.contains("Make"));
        assert!(text.contains("Compare Attrs"));
        assert!(text.contains("IUnit 1"));
        assert!(text.contains("Ford"));
        assert!(text.contains("[V6]") || text.contains("V6"));
        // Every line of the table has the same width.
        let widths: std::collections::HashSet<usize> =
            text.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "ragged render:\n{text}");
    }

    #[test]
    fn apply_row_order_with_unknown_labels_keeps_rows() {
        let mut cad = cad();
        let n = cad.rows.len();
        cad.apply_row_order(&[("Ghost".into(), 0.0), ("Jeep".into(), 1.0)]);
        assert_eq!(cad.rows.len(), n, "no rows may be lost");
        assert_eq!(cad.rows[0].pivot_label, "Jeep");
    }

    #[test]
    fn content_similarity_lookup() {
        let cad = cad();
        assert!(cad.content_similarity("Ford", "Chevrolet").is_some());
        assert!(cad.content_similarity("Ford", "Ghost").is_none());
        let self_sim = cad.content_similarity("Ford", "Ford").unwrap();
        let cross = cad.content_similarity("Ford", "Jeep").unwrap();
        assert!(self_sim >= cross);
    }

    #[test]
    fn render_with_highlights_marks_rows() {
        let cad = cad();
        let hits: Vec<(String, usize)> = cad
            .highlight_similar("Ford", 0, Some(0.5))
            .into_iter()
            .map(|(l, i, _)| (l, i))
            .collect();
        assert!(!hits.is_empty());
        let text = cad.render_with_highlights(&hits);
        assert!(text.contains("highlighted"));
        assert!(text.contains("IUnit 1")); // table body still present
        // No highlights → plain render.
        assert_eq!(cad.render_with_highlights(&[]), cad.render());
    }

    #[test]
    fn highlight_unknown_probe_is_empty() {
        let cad = cad();
        assert!(cad.highlight_similar("Tesla", 0, None).is_empty());
        assert!(cad.reorder_rows("Tesla").is_empty());
    }
}
