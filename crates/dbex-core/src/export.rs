//! Exporting CAD Views to interchange formats.
//!
//! The paper imagines the CAD View embedded in arbitrary front ends ("can
//! be integrated with any structured data presentation system", Section 1).
//! Besides the ASCII renderer, views export to Markdown (for notebooks /
//! issue trackers) and to a flat CSV of `(pivot value, iunit, attribute,
//! labels, size, score)` rows for downstream tooling.

use crate::cad::CadView;

/// Renders the view as a GitHub-flavored Markdown table (same layout as
/// the paper's Table 1).
pub fn to_markdown(view: &CadView) -> String {
    let max_units = view.rows.iter().map(|r| r.iunits.len()).max().unwrap_or(0).max(1);
    let mut out = String::new();
    // Header.
    out.push_str(&format!("| {} | Compare Attrs |", view.pivot_name));
    for i in 0..max_units {
        out.push_str(&format!(" IUnit {} |", i + 1));
    }
    out.push('\n');
    out.push_str("|---|---|");
    for _ in 0..max_units {
        out.push_str("---|");
    }
    out.push('\n');
    // Body: one Markdown row per (pivot value, compare attribute).
    for row in &view.rows {
        for (a, attr) in view.compare_names.iter().enumerate() {
            let pivot = if a == 0 { row.pivot_label.as_str() } else { "" };
            out.push_str(&format!("| {pivot} | {attr} |"));
            for u in 0..max_units {
                let cell = row
                    .iunits
                    .get(u)
                    .map(|unit| unit.label_of(a))
                    .unwrap_or_default();
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
    }
    out
}

/// Flattens the view to CSV: one line per `(pivot value, iunit, attribute)`
/// with the display labels, cluster size, and preference score.
pub fn to_csv(view: &CadView) -> String {
    let mut out = String::from("pivot_value,iunit,attribute,labels,size,score\n");
    for row in &view.rows {
        for (u, unit) in row.iunits.iter().enumerate() {
            for (a, attr) in view.compare_names.iter().enumerate() {
                let labels = unit.labels[a].join("; ");
                out.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    escape(&row.pivot_label),
                    u + 1,
                    escape(attr),
                    escape(&labels),
                    unit.size,
                    unit.score,
                ));
            }
        }
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_cad_view, CadRequest};
    use dbex_table::{DataType, Field, TableBuilder};

    fn view() -> CadView {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
        ])
        .unwrap();
        for i in 0..20 {
            let (m, e) = if i % 2 == 0 { ("Ford", "V6") } else { ("Jeep", "V8") };
            b.push_row(vec![m.into(), e.into()]).unwrap();
        }
        let t = b.finish();
        build_cad_view(&t.full_view(), &CadRequest::new("Make").with_iunits(2)).unwrap()
    }

    #[test]
    fn markdown_structure() {
        let md = to_markdown(&view());
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("| Make | Compare Attrs |"));
        assert!(lines[1].starts_with("|---|---|"));
        assert!(md.contains("| Ford |"));
        assert!(md.contains("[V6]"));
        // Every line has the same number of pipes.
        let pipes: std::collections::HashSet<usize> =
            lines.iter().map(|l| l.matches('|').count()).collect();
        assert_eq!(pipes.len(), 1, "ragged markdown:\n{md}");
    }

    #[test]
    fn csv_flat_rows() {
        let csv = to_csv(&view());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "pivot_value,iunit,attribute,labels,size,score"
        );
        let body: Vec<&str> = lines.collect();
        // 2 pivot values × 1 IUnit each (homogeneous rows) × |I| attrs.
        assert!(!body.is_empty());
        assert!(body.iter().all(|l| l.split(',').count() >= 6));
        assert!(body.iter().any(|l| l.starts_with("Ford,1,")));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
