//! Comparing CAD Views across contexts.
//!
//! The paper distinguishes *independent* comparisons (Chevrolet vs Jeep in
//! general) from *conditional* comparisons (given the user's current
//! selections), and notes that "the conditional comparisons change with
//! every change in the given query condition" (Section 1, Limitation 1).
//! [`ContextDiff`] makes that change explicit: given two CAD Views over
//! different result contexts (e.g. before/after adding `Mileage ≤ 30K`),
//! it matches IUnits across the views with Algorithm 1 and reports, per
//! pivot value, which IUnits persisted, appeared, or vanished.

use crate::cad::CadView;
use crate::simil::iunit_similarity;
use dbex_table::{Error, Result};

/// The fate of one IUnit across a context change.
#[derive(Debug, Clone, PartialEq)]
pub enum IUnitChange {
    /// Present in both contexts (similarity ≥ τ). Carries
    /// `(before_index, after_index, similarity)`.
    Persisted(usize, usize, f64),
    /// Only in the *before* view: the added condition removed this group.
    Vanished(usize),
    /// Only in the *after* view: the condition surfaced a new group.
    Appeared(usize),
}

/// Per-pivot-value changes.
#[derive(Debug, Clone)]
pub struct RowDiff {
    /// The pivot value.
    pub pivot_label: String,
    /// IUnit-level changes.
    pub changes: Vec<IUnitChange>,
}

/// A structural diff between two CAD Views over the same pivot attribute.
#[derive(Debug, Clone)]
pub struct ContextDiff {
    /// Per-row diffs, in the order of the *after* view (rows only in the
    /// before view come last).
    pub rows: Vec<RowDiff>,
    /// Pivot values present only in the before view.
    pub vanished_values: Vec<String>,
    /// Pivot values present only in the after view.
    pub appeared_values: Vec<String>,
    /// Similarity threshold used for matching.
    pub tau: f64,
}

impl ContextDiff {
    /// Computes the diff between `before` and `after`.
    ///
    /// Both views must share the pivot attribute and Compare Attribute set
    /// (matching IUnits across different attribute sets is not meaningful —
    /// Algorithm 1 compares per-attribute frequency vectors).
    pub fn compute(before: &CadView, after: &CadView) -> Result<ContextDiff> {
        if before.pivot_name != after.pivot_name {
            return Err(Error::Invalid(format!(
                "pivot mismatch: {} vs {}",
                before.pivot_name, after.pivot_name
            )));
        }
        if before.compare_names != after.compare_names {
            return Err(Error::Invalid(format!(
                "compare attribute mismatch: {:?} vs {:?}; rebuild with forced \
                 compare attributes to diff across contexts",
                before.compare_names, after.compare_names
            )));
        }
        let tau = before.tau.min(after.tau);

        let mut rows = Vec::new();
        let mut vanished_values = Vec::new();
        let appeared_values: Vec<String> = after
            .rows
            .iter()
            .filter(|r| before.row(&r.pivot_label).is_none())
            .map(|r| r.pivot_label.clone())
            .collect();

        for after_row in &after.rows {
            let Some(before_row) = before.row(&after_row.pivot_label) else {
                continue;
            };
            // Greedy best-first matching between the two IUnit lists.
            let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
            for (i, bu) in before_row.iunits.iter().enumerate() {
                for (j, au) in after_row.iunits.iter().enumerate() {
                    let s = iunit_similarity(bu, au);
                    if s >= tau {
                        pairs.push((i, j, s));
                    }
                }
            }
            pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
            let mut used_before = vec![false; before_row.iunits.len()];
            let mut used_after = vec![false; after_row.iunits.len()];
            let mut changes = Vec::new();
            for (i, j, s) in pairs {
                if !used_before[i] && !used_after[j] {
                    used_before[i] = true;
                    used_after[j] = true;
                    changes.push(IUnitChange::Persisted(i, j, s));
                }
            }
            for (i, used) in used_before.iter().enumerate() {
                if !used {
                    changes.push(IUnitChange::Vanished(i));
                }
            }
            for (j, used) in used_after.iter().enumerate() {
                if !used {
                    changes.push(IUnitChange::Appeared(j));
                }
            }
            rows.push(RowDiff {
                pivot_label: after_row.pivot_label.clone(),
                changes,
            });
        }
        for before_row in &before.rows {
            if after.row(&before_row.pivot_label).is_none() {
                vanished_values.push(before_row.pivot_label.clone());
            }
        }
        Ok(ContextDiff {
            rows,
            vanished_values,
            appeared_values,
            tau,
        })
    }

    /// Fraction of before-IUnits that persisted (1.0 = the condition did
    /// not change the structure at all).
    pub fn stability(&self) -> f64 {
        let mut persisted = 0usize;
        let mut before_total = 0usize;
        for row in &self.rows {
            for c in &row.changes {
                match c {
                    IUnitChange::Persisted(..) => {
                        persisted += 1;
                        before_total += 1;
                    }
                    IUnitChange::Vanished(_) => before_total += 1,
                    IUnitChange::Appeared(_) => {}
                }
            }
        }
        if before_total == 0 {
            1.0
        } else {
            persisted as f64 / before_total as f64
        }
    }

    /// Renders the diff as text.
    pub fn render(&self, before: &CadView, after: &CadView) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Context diff (tau = {:.2}, stability = {:.0}%)\n",
            self.tau,
            100.0 * self.stability()
        ));
        for row in &self.rows {
            out.push_str(&format!("{}\n", row.pivot_label));
            for change in &row.changes {
                match change {
                    IUnitChange::Persisted(i, j, s) => {
                        out.push_str(&format!(
                            "  = IUnit {} -> IUnit {} (similarity {s:.2})\n",
                            i + 1,
                            j + 1
                        ));
                    }
                    IUnitChange::Vanished(i) => {
                        let label = before
                            .row(&row.pivot_label)
                            .and_then(|r| r.iunits.get(*i))
                            .map(|u| u.label_of(0))
                            .unwrap_or_default();
                        out.push_str(&format!("  - IUnit {} vanished {label}\n", i + 1));
                    }
                    IUnitChange::Appeared(j) => {
                        let label = after
                            .row(&row.pivot_label)
                            .and_then(|r| r.iunits.get(*j))
                            .map(|u| u.label_of(0))
                            .unwrap_or_default();
                        out.push_str(&format!("  + IUnit {} appeared {label}\n", j + 1));
                    }
                }
            }
        }
        if !self.vanished_values.is_empty() {
            out.push_str(&format!(
                "pivot values gone from context: {:?}\n",
                self.vanished_values
            ));
        }
        if !self.appeared_values.is_empty() {
            out.push_str(&format!(
                "pivot values new in context: {:?}\n",
                self.appeared_values
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_cad_view, CadRequest};
    use dbex_table::{DataType, Field, Predicate, TableBuilder};

    fn table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for i in 0..60i64 {
            // Ford: cheap V4s and expensive V8s; Jeep: V6 mid-range.
            b.push_row(vec!["Ford".into(), "V4".into(), (12_000 + i * 10).into()]).unwrap();
            b.push_row(vec!["Ford".into(), "V8".into(), (40_000 + i * 10).into()]).unwrap();
            b.push_row(vec!["Jeep".into(), "V6".into(), (25_000 + i * 10).into()]).unwrap();
        }
        b.finish()
    }

    fn request() -> CadRequest {
        CadRequest::new("Make")
            .with_compare(vec!["Engine", "Price"])
            .with_max_compare_attrs(2)
            .with_iunits(2)
    }

    #[test]
    fn identical_contexts_fully_stable() {
        let t = table();
        let a = build_cad_view(&t.full_view(), &request()).unwrap();
        let b = build_cad_view(&t.full_view(), &request()).unwrap();
        let diff = ContextDiff::compute(&a, &b).unwrap();
        assert_eq!(diff.stability(), 1.0);
        assert!(diff.vanished_values.is_empty());
        assert!(diff.appeared_values.is_empty());
    }

    #[test]
    fn condition_removes_a_cluster() {
        let t = table();
        let before = build_cad_view(&t.full_view(), &request()).unwrap();
        // Condition away the expensive V8 Fords.
        let context = t
            .filter(&Predicate::cmp(
                "Price",
                dbex_table::predicate::CmpOp::Lt,
                30_000,
            ))
            .unwrap();
        let after = build_cad_view(&context, &request()).unwrap();
        let diff = ContextDiff::compute(&before, &after).unwrap();
        assert!(diff.stability() < 1.0);
        let ford = diff
            .rows
            .iter()
            .find(|r| r.pivot_label == "Ford")
            .expect("Ford present");
        assert!(
            ford.changes
                .iter()
                .any(|c| matches!(c, IUnitChange::Vanished(_))),
            "the V8 cluster should vanish: {:?}",
            ford.changes
        );
        let text = diff.render(&before, &after);
        assert!(text.contains("vanished"));
    }

    #[test]
    fn pivot_value_disappearing_reported() {
        let t = table();
        let before = build_cad_view(&t.full_view(), &request()).unwrap();
        let context = t.filter(&Predicate::eq("Make", "Ford")).unwrap();
        let after = build_cad_view(&context, &request()).unwrap();
        let diff = ContextDiff::compute(&before, &after).unwrap();
        assert_eq!(diff.vanished_values, vec!["Jeep".to_string()]);
    }

    #[test]
    fn mismatched_views_rejected() {
        let t = table();
        let a = build_cad_view(&t.full_view(), &request()).unwrap();
        let b = build_cad_view(
            &t.full_view(),
            &CadRequest::new("Engine").with_compare(vec!["Price"]),
        )
        .unwrap();
        assert!(ContextDiff::compute(&a, &b).is_err());
    }
}
