//! # dbex-core
//!
//! The Conditional Attribute Dependency (CAD) View — the paper's primary
//! contribution (Sections 2-5).
//!
//! A CAD View summarizes a result set *in context*: the user picks a
//! **Pivot Attribute**; the system picks contrasting **Compare Attributes**
//! (chi-square feature selection); each pivot value's tuples are clustered
//! over the Compare Attributes into labeled **IUnits**; a diversified top-k
//! pass picks the `k` IUnits shown per row. Similarity search over the view
//! (Algorithms 1 and 2) supports finding similar IUnits and similar pivot
//! values.
//!
//! Modules:
//!
//! * [`iunit`] — IUnits and the cluster-labeling step (Section 3.1.2).
//! * [`simil`] — Algorithm 1 (IUnit pair similarity) and Algorithm 2
//!   (attribute-value pair similarity over ranked IUnit lists).
//! * [`builder`] — the end-to-end construction pipeline with per-stage
//!   timings (the quantities plotted in the paper's Figures 8-10).
//! * [`cad`] — the [`CadView`] structure, highlight / reorder operations,
//!   and the ASCII renderer that reproduces Table 1's layout.
//! * [`tpfacet`] — the two-phase faceted interface integrating the CAD
//!   View with faceted navigation (Section 5).
//! * [`error`] / [`budget`] — typed [`CadError`]s with intact `source()`
//!   chains, execution budgets, and the graceful-degradation records
//!   surfaced by `EXPLAIN CADVIEW`.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod builder;
pub mod cad;
pub mod diff;
pub mod error;
pub mod export;
pub mod iunit;
pub mod simil;
pub mod tpfacet;

pub use budget::{BudgetGauge, ClockSource, Degradation, DegradationKind, ExecBudget};
pub use builder::{
    build_cad_view, build_cad_view_cached, build_cad_view_traced, CadConfig, CadRequest,
    CadTimings, Preference,
};
// Re-exported so clients can trace builds and inspect the resulting span
// trees without depending on dbex-obs directly.
pub use dbex_obs::{Trace, Tracer};
// Re-exported so clients one layer up (dbex-query) can hold a cache
// without depending on dbex-stats directly.
pub use dbex_stats::{CacheStats, StatsCache};
pub use cad::{CadRow, CadView};
pub use error::CadError;
pub use diff::{ContextDiff, IUnitChange, RowDiff};
pub use export::{to_csv as cad_to_csv, to_markdown as cad_to_markdown};
pub use iunit::{IUnit, LabelConfig};
pub use simil::{attribute_value_distance, iunit_similarity};
pub use tpfacet::{Panel, TpFacet};
