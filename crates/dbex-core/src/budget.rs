//! Execution budgets and graceful degradation (robustness layer).
//!
//! The paper's interactivity target (Section 6: CAD Views over 40K-row
//! result sets in well under a second) is reframed here as an explicit
//! [`ExecBudget`]: a row limit, a wall-clock deadline, and a k-means
//! iteration cap carried through `build_cad_view`, clustering, and the
//! diversified top-k stage. When a budget is exhausted the pipeline does
//! not fail — it *degrades*: full k-means falls back to mini-batch, then
//! to a sampled build, and every shortcut taken is recorded as a
//! [`Degradation`] on the finished `CadView` so `EXPLAIN CADVIEW` and the
//! REPL can surface exactly what was traded away.
//!
//! Deadlines are measured against an injectable [`ClockSource`] so tests
//! can exhaust the budget deterministically without sleeping.
//!
//! # Thread safety
//!
//! A [`BudgetGauge`] is shared by reference across `dbex_par::par_map`
//! workers when `CadConfig::threads > 1`. Every check reads immutable
//! state or atomics: `time_exhausted` reads the clock, `rows_exhausted`
//! compares its argument against a fixed limit, and the cumulative
//! row-accounting counter ([`BudgetGauge::charge_rows`] /
//! [`BudgetGauge::rows_spent`]) is an `AtomicU64`. Degradation *decisions*
//! deliberately depend only on per-partition quantities (a partition's own
//! size, the monotone clock) — never on the cumulative counter — so the
//! ladder fires identically regardless of the order in which workers
//! happen to run.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a [`BudgetGauge`] reads time from.
#[derive(Debug, Clone, Default)]
pub enum ClockSource {
    /// Real wall-clock time (`Instant::now`).
    #[default]
    System,
    /// A test-controlled clock: the atomic holds "now" in milliseconds.
    Manual(Arc<AtomicU64>),
}

/// Resource limits for one CAD View build.
///
/// All limits are optional; [`ExecBudget::unlimited`] (the default) never
/// triggers degradation.
#[derive(Debug, Clone, Default)]
pub struct ExecBudget {
    /// Partitions larger than this are clustered with mini-batch k-means
    /// instead of full Lloyd iterations.
    pub max_rows: Option<usize>,
    /// Wall-clock deadline for the whole build. Once past it, remaining
    /// work switches to sampled builds and greedy top-k.
    pub time_limit: Option<Duration>,
    /// Hard cap on k-means iterations, clamping `CadConfig::kmeans_iters`.
    pub max_kmeans_iters: Option<usize>,
    /// Clock the deadline is measured against.
    pub clock: ClockSource,
    /// Cooperative cancellation: once the flag flips `true` the gauge
    /// reports the deadline as exhausted at every check, collapsing the
    /// remaining work onto the cheapest degradation rungs so the build
    /// finishes (degraded, never failed) as fast as possible. `dbex-serve`
    /// arms one flag per connection and fires it when the client
    /// disconnects mid-request.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl ExecBudget {
    /// No limits: the pipeline never degrades.
    pub fn unlimited() -> ExecBudget {
        ExecBudget::default()
    }

    /// Sets the per-partition row limit.
    pub fn with_max_rows(mut self, rows: usize) -> Self {
        self.max_rows = Some(rows);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Caps k-means iterations.
    pub fn with_kmeans_iters(mut self, iters: usize) -> Self {
        self.max_kmeans_iters = Some(iters);
        self
    }

    /// Measures the deadline against a manually advanced clock
    /// (milliseconds in the atomic). Testing only.
    pub fn with_manual_clock(mut self, clock: Arc<AtomicU64>) -> Self {
        self.clock = ClockSource::Manual(clock);
        self
    }

    /// Arms a cooperative cancellation flag (see the field docs): flipping
    /// it to `true` makes every deadline check report exhaustion.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no limit is set. An armed (but unfired) cancellation flag
    /// does not make a budget limited — it constrains nothing until fired.
    pub fn is_unlimited(&self) -> bool {
        self.max_rows.is_none() && self.time_limit.is_none() && self.max_kmeans_iters.is_none()
    }

    /// Starts measuring: captures "now" on the configured clock.
    pub fn start(&self) -> BudgetGauge<'_> {
        let manual_start = match &self.clock {
            ClockSource::Manual(ms) => ms.load(Ordering::Relaxed),
            ClockSource::System => 0,
        };
        BudgetGauge {
            budget: self,
            started: Instant::now(),
            manual_start,
            rows_spent: AtomicU64::new(0),
        }
    }
}

/// A running measurement of one build against its [`ExecBudget`].
///
/// Safe to share by `&` across worker threads — see the module docs.
#[derive(Debug)]
pub struct BudgetGauge<'a> {
    budget: &'a ExecBudget,
    started: Instant,
    manual_start: u64,
    rows_spent: AtomicU64,
}

impl BudgetGauge<'_> {
    /// Time elapsed since [`ExecBudget::start`], on the configured clock.
    pub fn elapsed(&self) -> Duration {
        match &self.budget.clock {
            ClockSource::System => self.started.elapsed(),
            ClockSource::Manual(ms) => {
                Duration::from_millis(ms.load(Ordering::Relaxed).saturating_sub(self.manual_start))
            }
        }
    }

    /// True once the build has been cancelled (see
    /// [`ExecBudget::with_cancel_flag`]).
    pub fn cancelled(&self) -> bool {
        self.budget
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// True once the wall-clock deadline has passed — or the build was
    /// cancelled, which the ladder treats as an already-expired deadline.
    pub fn time_exhausted(&self) -> bool {
        self.cancelled()
            || self
                .budget
                .time_limit
                .is_some_and(|limit| self.elapsed() >= limit)
    }

    /// True when `rows` exceeds the row limit.
    pub fn rows_exhausted(&self, rows: usize) -> bool {
        self.budget.max_rows.is_some_and(|max| rows > max)
    }

    /// Records `rows` rows of work against the gauge. Atomic, so pool
    /// workers can charge concurrently; the final total is deterministic
    /// (a sum) even though the interleaving is not.
    pub fn charge_rows(&self, rows: usize) {
        self.rows_spent.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Total rows charged so far via [`Self::charge_rows`]. Diagnostic
    /// accounting only — degradation decisions never read this (see the
    /// module docs on thread safety).
    pub fn rows_spent(&self) -> u64 {
        self.rows_spent.load(Ordering::Relaxed)
    }

    /// Clamps a requested k-means iteration count to the budget cap.
    pub fn clamp_iters(&self, requested: usize) -> usize {
        match self.budget.max_kmeans_iters {
            Some(max) => requested.min(max.max(1)),
            None => requested,
        }
    }

    /// The budget being measured.
    pub fn budget(&self) -> &ExecBudget {
        self.budget
    }
}

/// What kind of shortcut the pipeline took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// Feature selection ran on a sample instead of the full result set.
    SampledFeatureSelection,
    /// A partition was clustered with mini-batch k-means.
    MiniBatchClustering,
    /// A partition was clustered on a small sample, remainder assigned to
    /// the learned centroids.
    SampledClustering,
    /// Clustering failed entirely; the partition became one catch-all IUnit.
    SingleUnitFallback,
    /// Diversified top-k used the greedy heuristic instead of div-astar.
    GreedyTopK,
    /// k-means iterations were clamped below the configured count.
    ClampedKMeansIters,
}

impl DegradationKind {
    /// Short stable label used in `EXPLAIN CADVIEW` output.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationKind::SampledFeatureSelection => "sampled-feature-selection",
            DegradationKind::MiniBatchClustering => "mini-batch-clustering",
            DegradationKind::SampledClustering => "sampled-clustering",
            DegradationKind::SingleUnitFallback => "single-unit-fallback",
            DegradationKind::GreedyTopK => "greedy-top-k",
            DegradationKind::ClampedKMeansIters => "clamped-kmeans-iters",
        }
    }

    /// Fidelity loss on a 1-4 scale (the observability layer reports the
    /// maximum over a build as its `degradation_level`; 0 = full
    /// fidelity). Higher means further down the ladder:
    ///
    /// 1. sampling/clamping that the paper's own optimizations also use,
    /// 2. mini-batch clustering,
    /// 3. emergency sampling / greedy top-k under an exhausted deadline,
    /// 4. the single-unit fallback (no clustering at all).
    pub fn severity(&self) -> u64 {
        match self {
            DegradationKind::SampledFeatureSelection
            | DegradationKind::ClampedKMeansIters => 1,
            DegradationKind::MiniBatchClustering => 2,
            DegradationKind::SampledClustering | DegradationKind::GreedyTopK => 3,
            DegradationKind::SingleUnitFallback => 4,
        }
    }
}

/// One recorded shortcut: what degraded, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The kind of shortcut.
    pub kind: DegradationKind,
    /// Pivot value it applied to, when partition-scoped.
    pub pivot_value: Option<String>,
    /// Human-readable cause ("time budget exhausted after 120ms", ...).
    pub reason: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.pivot_value {
            Some(v) => write!(f, "{} [pivot {v}]: {}", self.kind.label(), self.reason),
            None => write!(f, "{}: {}", self.kind.label(), self.reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = ExecBudget::unlimited();
        assert!(budget.is_unlimited());
        let gauge = budget.start();
        assert!(!gauge.time_exhausted());
        assert!(!gauge.rows_exhausted(usize::MAX));
        assert_eq!(gauge.clamp_iters(77), 77);
    }

    #[test]
    fn manual_clock_drives_deadline() {
        let clock = Arc::new(AtomicU64::new(1_000));
        let budget = ExecBudget::unlimited()
            .with_time_limit(Duration::from_millis(50))
            .with_manual_clock(clock.clone());
        let gauge = budget.start();
        assert!(!gauge.time_exhausted());
        clock.store(1_049, Ordering::Relaxed);
        assert!(!gauge.time_exhausted());
        clock.store(1_050, Ordering::Relaxed);
        assert!(gauge.time_exhausted());
        assert_eq!(gauge.elapsed(), Duration::from_millis(50));
    }

    #[test]
    fn cancellation_reads_as_an_expired_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = ExecBudget::unlimited().with_cancel_flag(flag.clone());
        // Arming alone limits nothing.
        assert!(budget.is_unlimited());
        let gauge = budget.start();
        assert!(!gauge.cancelled());
        assert!(!gauge.time_exhausted());
        flag.store(true, Ordering::Relaxed);
        assert!(gauge.cancelled());
        assert!(gauge.time_exhausted(), "cancel fires every deadline check");
        // Row and iteration limits are unaffected by cancellation.
        assert!(!gauge.rows_exhausted(usize::MAX));
        assert_eq!(gauge.clamp_iters(9), 9);
    }

    #[test]
    fn row_and_iteration_limits() {
        let budget = ExecBudget::unlimited().with_max_rows(100).with_kmeans_iters(5);
        let gauge = budget.start();
        assert!(!gauge.rows_exhausted(100));
        assert!(gauge.rows_exhausted(101));
        assert_eq!(gauge.clamp_iters(20), 5);
        assert_eq!(gauge.clamp_iters(3), 3);
    }

    #[test]
    fn rows_charged_concurrently_sum_exactly() {
        let budget = ExecBudget::unlimited();
        let gauge = budget.start();
        assert_eq!(gauge.rows_spent(), 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        gauge.charge_rows(3);
                    }
                });
            }
        });
        assert_eq!(gauge.rows_spent(), 12_000);
    }

    #[test]
    fn degradation_renders_with_pivot() {
        let d = Degradation {
            kind: DegradationKind::MiniBatchClustering,
            pivot_value: Some("Ford".into()),
            reason: "partition has 5000 rows over the 1000-row budget".into(),
        };
        let s = d.to_string();
        assert!(s.contains("mini-batch-clustering"));
        assert!(s.contains("Ford"));
        assert!(s.contains("5000 rows"));
    }
}
