//! TPFacet: the two-phased faceted interface (paper Section 5).
//!
//! TPFacet marries faceted navigation with the CAD View. At any moment the
//! interface shows either the **results panel** (classic faceted browsing)
//! or the **CAD View panel**; the user toggles between the *query revision*
//! phase (CAD View) and the *result set* phase (results). The three
//! interactive extensions of Section 5 are modeled directly:
//!
//! 1. every queriable attribute is selectable as Pivot Attribute,
//! 2. clicking an IUnit highlights all similar IUnits,
//! 3. clicking a pivot value reorders rows by similarity to it.

use crate::builder::{build_cad_view, CadRequest};
use crate::cad::CadView;
use dbex_facet::FacetedEngine;
use dbex_table::{Error, Result, Table};

/// Which panel the interface currently shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Classic faceted results panel.
    Results,
    /// The CAD View panel (query-revision phase).
    CadView,
}

/// The TPFacet interface over one table.
pub struct TpFacet<'a> {
    engine: FacetedEngine<'a>,
    panel: Panel,
    pivot: Option<String>,
    cad: Option<CadView>,
}

impl<'a> TpFacet<'a> {
    /// Opens the interface on `table` with `bins` buckets per numeric facet.
    pub fn new(table: &'a Table, bins: usize) -> TpFacet<'a> {
        TpFacet {
            engine: FacetedEngine::new(table, bins),
            panel: Panel::Results,
            pivot: None,
            cad: None,
        }
    }

    /// The underlying faceted engine (selection state, digests, results).
    pub fn engine(&self) -> &FacetedEngine<'a> {
        &self.engine
    }

    /// Mutable access to the faceted engine for selections.
    pub fn engine_mut(&mut self) -> &mut FacetedEngine<'a> {
        &mut self.engine
    }

    /// The currently shown panel.
    pub fn panel(&self) -> Panel {
        self.panel
    }

    /// Toggles between the results panel and the CAD View panel.
    pub fn toggle_panel(&mut self) {
        self.panel = match self.panel {
            Panel::Results => Panel::CadView,
            Panel::CadView => Panel::Results,
        };
    }

    /// Selects a facet value; any cached CAD View is invalidated because
    /// the result context changed.
    pub fn select(&mut self, attr: usize, label: &str) -> Result<()> {
        self.engine.select(attr, label)?;
        self.cad = None;
        Ok(())
    }

    /// Deselects a facet value (invalidates the CAD View cache).
    pub fn deselect(&mut self, attr: usize, label: &str) {
        self.engine.deselect(attr, label);
        self.cad = None;
    }

    /// Chooses the Pivot Attribute (modification 1 of Section 5). Any
    /// queriable attribute may be chosen.
    pub fn set_pivot(&mut self, attribute: &str) -> Result<()> {
        let schema = self.engine.table().schema();
        let idx = schema.index_of(attribute)?;
        if !schema.field(idx).queriable {
            return Err(Error::Invalid(format!(
                "{attribute} is not exposed in the query panel"
            )));
        }
        self.pivot = Some(attribute.to_owned());
        self.cad = None;
        Ok(())
    }

    /// The current pivot attribute, if set.
    pub fn pivot(&self) -> Option<&str> {
        self.pivot.as_deref()
    }

    /// Builds (or rebuilds) the CAD View for the current result context and
    /// switches to the CAD panel. `customize` may adjust the request (k,
    /// compare attributes, preference...).
    pub fn build_cad<F>(&mut self, customize: F) -> Result<&CadView>
    where
        F: FnOnce(CadRequest) -> CadRequest,
    {
        let pivot = self
            .pivot
            .clone()
            .ok_or_else(|| Error::Invalid("no pivot attribute selected".into()))?;
        let results = self.engine.results()?;
        let request = customize(CadRequest::new(pivot));
        // This facade keeps the storage-layer error type; the full typed
        // chain is flattened into the message (Session exposes it intact).
        let cad = build_cad_view(&results, &request).map_err(|e| {
            use std::error::Error as _;
            let mut msg = e.to_string();
            let mut src = e.source();
            while let Some(s) = src {
                msg.push_str(": ");
                msg.push_str(&s.to_string());
                src = s.source();
            }
            Error::Invalid(msg)
        })?;
        self.panel = Panel::CadView;
        Ok(self.cad.insert(cad))
    }

    /// The cached CAD View, if one is built and still valid.
    pub fn cad(&self) -> Option<&CadView> {
        self.cad.as_ref()
    }

    /// Modification 2 of Section 5: clicking an IUnit highlights similar
    /// IUnits across the view.
    pub fn click_iunit(&self, pivot_label: &str, idx: usize) -> Vec<(String, usize, f64)> {
        self.cad
            .as_ref()
            .map(|c| c.highlight_similar(pivot_label, idx, None))
            .unwrap_or_default()
    }

    /// Modification 3 of Section 5: clicking a pivot value reorders the
    /// rows by similarity to it.
    pub fn click_pivot_value(&mut self, pivot_label: &str) -> Vec<(String, f64)> {
        let Some(cad) = self.cad.as_mut() else {
            return Vec::new();
        };
        let order = cad.reorder_rows(pivot_label);
        cad.apply_row_order(&order);
        order
    }

    /// Drills from an IUnit into its member tuples: the "result set phase"
    /// hand-off where the user inspects the actual items behind a summary
    /// cell. Returns the member rows (all attributes, schema order).
    ///
    /// The IUnit's member positions index the result set the CAD View was
    /// built from; selections invalidate the view (see [`Self::select`]),
    /// so the positions always resolve against the current results.
    pub fn drill(&self, pivot_label: &str, idx: usize) -> Result<Vec<Vec<dbex_table::Value>>> {
        let Some(cad) = self.cad.as_ref() else {
            return Err(Error::Invalid("no CAD View built".into()));
        };
        let Some(unit) = cad.iunit(pivot_label, idx) else {
            return Err(Error::Invalid(format!(
                "no IUnit {idx} for pivot value {pivot_label}"
            )));
        };
        let results = self.engine.results()?;
        let table = self.engine.table();
        unit.members
            .iter()
            .map(|&pos| {
                let row = results.row_ids()[pos] as usize;
                table.row(row)
            })
            .collect()
    }

    /// Renders whichever panel is active.
    pub fn render(&self) -> Result<String> {
        match self.panel {
            Panel::Results => self.engine.render_query_panel(),
            Panel::CadView => Ok(self
                .cad
                .as_ref()
                .map(|c| c.render())
                .unwrap_or_else(|| "(no CAD View built)".to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Body", DataType::Categorical),
            Field::hidden("Engine", DataType::Categorical),
        ])
        .unwrap();
        for i in 0..30 {
            let (m, e) = if i % 2 == 0 { ("Ford", "V6") } else { ("Jeep", "V8") };
            let body = if i % 3 == 0 { "SUV" } else { "Sedan" };
            b.push_row(vec![m.into(), body.into(), e.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn starts_on_results_panel() {
        let t = table();
        let tp = TpFacet::new(&t, 4);
        assert_eq!(tp.panel(), Panel::Results);
        assert!(tp.render().unwrap().contains("results"));
    }

    #[test]
    fn pivot_must_be_queriable() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        assert!(tp.set_pivot("Engine").is_err()); // hidden
        assert!(tp.set_pivot("Make").is_ok());
        assert_eq!(tp.pivot(), Some("Make"));
    }

    #[test]
    fn build_requires_pivot() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        assert!(tp.build_cad(|r| r).is_err());
    }

    #[test]
    fn build_switches_to_cad_panel() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        tp.set_pivot("Make").unwrap();
        tp.build_cad(|r| r.with_iunits(2)).unwrap();
        assert_eq!(tp.panel(), Panel::CadView);
        let rendered = tp.render().unwrap();
        assert!(rendered.contains("IUnit 1"), "{rendered}");
        // Hidden Engine attribute surfaces in the CAD View (Limitation 2).
        assert!(tp.cad().unwrap().compare_names.iter().any(|n| n == "Engine"));
    }

    #[test]
    fn selection_invalidates_cad() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        tp.set_pivot("Make").unwrap();
        tp.build_cad(|r| r).unwrap();
        assert!(tp.cad().is_some());
        tp.select(1, "SUV").unwrap();
        assert!(tp.cad().is_none());
        tp.build_cad(|r| r).unwrap();
        tp.deselect(1, "SUV");
        assert!(tp.cad().is_none());
    }

    #[test]
    fn clicks_are_safe_without_cad() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        assert!(tp.click_iunit("Ford", 0).is_empty());
        assert!(tp.click_pivot_value("Ford").is_empty());
    }

    #[test]
    fn click_pivot_value_reorders() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        tp.set_pivot("Make").unwrap();
        tp.build_cad(|r| r.with_iunits(2)).unwrap();
        let order = tp.click_pivot_value("Jeep");
        assert_eq!(order[0].0, "Jeep");
        assert_eq!(tp.cad().unwrap().rows[0].pivot_label, "Jeep");
    }

    #[test]
    fn drill_returns_member_tuples() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        tp.set_pivot("Make").unwrap();
        tp.build_cad(|r| r.with_iunits(2)).unwrap();
        let label = tp.cad().unwrap().rows[0].pivot_label.clone();
        let unit_size = tp.cad().unwrap().rows[0].iunits[0].size;
        let rows = tp.drill(&label, 0).unwrap();
        assert_eq!(rows.len(), unit_size);
        // Every drilled tuple carries the pivot value of its row.
        for row in &rows {
            assert_eq!(row[0].to_string(), label);
        }
        // Errors for missing view / bad coordinates.
        assert!(tp.drill("Nope", 0).is_err());
        assert!(tp.drill(&label, 99).is_err());
        tp.select(1, "SUV").unwrap(); // invalidates the view
        assert!(tp.drill(&label, 0).is_err());
    }

    #[test]
    fn toggle_round_trips() {
        let t = table();
        let mut tp = TpFacet::new(&t, 4);
        tp.toggle_panel();
        assert_eq!(tp.panel(), Panel::CadView);
        tp.toggle_panel();
        assert_eq!(tp.panel(), Panel::Results);
    }
}
