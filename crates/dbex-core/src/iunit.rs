//! IUnits: labeled clusters of attribute-value interactions.
//!
//! "An IUnit (Interaction Unit) is an 'interesting' group of values for the
//! Compare Attributes" (Section 2.1.1). Each IUnit summarizes one cluster of
//! tuples: per Compare Attribute it stores the full value-frequency
//! distribution (used by Algorithm 1's similarity) and a short ranked label
//! (used for display).
//!
//! Labeling follows Section 3.1.2: "We rank attribute values based on
//! frequency count and then group multiple values if they have similar
//! frequency count. We use two thresholds — max display count and
//! statistical difference between frequency counts — to determine the
//! representative Compare Attribute values for each cluster."

use dbex_stats::discretize::CodedColumn;

/// Thresholds controlling IUnit label construction.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Maximum values displayed per Compare Attribute (`max display count`).
    pub max_display: usize,
    /// A value is grouped with the attribute's top value when its frequency
    /// is at least this fraction of the top frequency (`statistical
    /// difference between frequency counts`).
    pub min_support_ratio: f64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            max_display: 2,
            min_support_ratio: 0.5,
        }
    }
}

/// One IUnit: a labeled cluster over the Compare Attributes.
#[derive(Debug, Clone)]
pub struct IUnit {
    /// Number of tuples in the underlying cluster.
    pub size: usize,
    /// Preference score used for top-k ranking (default: cluster size).
    pub score: f64,
    /// Per-Compare-Attribute value frequencies (`freqs[a][code]`), the term
    /// frequencies of Algorithm 1.
    pub freqs: Vec<Vec<f64>>,
    /// Per-Compare-Attribute representative value labels, most frequent
    /// first (the bracketed labels of Table 1).
    pub labels: Vec<Vec<String>>,
    /// Positions (into the parent result set's row list) of the member
    /// tuples — retained so users can drill from an IUnit to its tuples.
    pub members: Vec<usize>,
}

impl IUnit {
    /// Builds an IUnit from cluster member positions.
    ///
    /// `columns` are the Compare Attributes' coded columns (shared across
    /// the whole CAD View so frequencies are comparable across IUnits).
    pub fn from_members(
        members: Vec<usize>,
        columns: &[&CodedColumn],
        config: &LabelConfig,
    ) -> IUnit {
        let mut freqs = Vec::with_capacity(columns.len());
        let mut labels = Vec::with_capacity(columns.len());
        for col in columns {
            let freq = col.frequencies(&members);
            labels.push(representative_labels(&freq, col, config));
            freqs.push(freq);
        }
        IUnit {
            size: members.len(),
            score: members.len() as f64,
            freqs,
            labels,
            members,
        }
    }

    /// Formats attribute `a`'s label like the paper's Table 1:
    /// `[Traverse LT, Equinox LT]`.
    pub fn label_of(&self, a: usize) -> String {
        format!("[{}]", self.labels[a].join(", "))
    }
}

/// Ranks an attribute's values by cluster frequency and picks the
/// representatives per the two thresholds.
fn representative_labels(freq: &[f64], col: &CodedColumn, config: &LabelConfig) -> Vec<String> {
    let mut order: Vec<usize> = (0..freq.len()).filter(|&c| freq[c] > 0.0).collect();
    order.sort_by(|&a, &b| freq[b].total_cmp(&freq[a]));
    let Some(&top) = order.first() else {
        return Vec::new();
    };
    let threshold = freq[top] * config.min_support_ratio;
    order
        .into_iter()
        .take(config.max_display)
        .filter(|&c| freq[c] >= threshold)
        .map(|c| col.codec.label(c as u32).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_stats::discretize::CodedMatrix;
    use dbex_stats::histogram::BinningStrategy;
    use dbex_table::{DataType, Field, TableBuilder};

    fn coded() -> (dbex_table::Table, CodedMatrix) {
        let mut b = TableBuilder::new(vec![
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (e, p) in [
            ("V6", 25_000),
            ("V6", 26_000),
            ("V6", 27_000),
            ("V4", 15_000),
            ("V8", 45_000),
        ] {
            b.push_row(vec![e.into(), p.into()]).unwrap();
        }
        let t = b.finish();
        let m = CodedMatrix::encode(&t.full_view(), &[0, 1], 3, BinningStrategy::EquiWidth);
        (t, m)
    }

    #[test]
    fn frequencies_and_labels() {
        let (_t, m) = coded();
        let cols: Vec<&CodedColumn> = m.columns.iter().collect();
        let unit = IUnit::from_members(vec![0, 1, 2, 3], &cols, &LabelConfig::default());
        assert_eq!(unit.size, 4);
        assert_eq!(unit.score, 4.0);
        // Engine: V6 dominates (3 vs 1) → only V6 displayed at ratio 0.5.
        assert_eq!(unit.labels[0], vec!["V6".to_string()]);
        assert_eq!(unit.freqs[0], vec![3.0, 1.0, 0.0]); // V6, V4, V8 codes
        assert_eq!(unit.label_of(0), "[V6]");
    }

    #[test]
    fn grouped_labels_when_counts_similar() {
        let (_t, m) = coded();
        let cols: Vec<&CodedColumn> = m.columns.iter().collect();
        // Two V6 and two... use members 2,3 → V6 and V4 once each: grouped.
        let unit = IUnit::from_members(vec![2, 3], &cols, &LabelConfig::default());
        assert_eq!(unit.labels[0].len(), 2);
    }

    #[test]
    fn max_display_caps_labels() {
        let (_t, m) = coded();
        let cols: Vec<&CodedColumn> = m.columns.iter().collect();
        let cfg = LabelConfig {
            max_display: 1,
            min_support_ratio: 0.0,
        };
        let unit = IUnit::from_members(vec![0, 3, 4], &cols, &cfg);
        assert_eq!(unit.labels[0].len(), 1);
    }

    #[test]
    fn empty_cluster_is_safe() {
        let (_t, m) = coded();
        let cols: Vec<&CodedColumn> = m.columns.iter().collect();
        let unit = IUnit::from_members(vec![], &cols, &LabelConfig::default());
        assert_eq!(unit.size, 0);
        assert!(unit.labels[0].is_empty());
        assert_eq!(unit.label_of(0), "[]");
    }
}
