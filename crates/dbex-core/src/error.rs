//! Typed errors for CAD View construction.
//!
//! Every failure mode of the builder pipeline gets its own variant; errors
//! from the layers below (`dbex-table`, `dbex-stats`, `dbex-cluster`) are
//! wrapped rather than flattened to strings, so `source()` chains stay
//! intact all the way down to the root cause.

use dbex_cluster::ClusterError;
use dbex_stats::StatsError;
use std::fmt;

/// An error from [`crate::build_cad_view`] or its helpers.
#[derive(Debug)]
pub enum CadError {
    /// A table-layer failure (unknown attribute, bad predicate, ...).
    Table(dbex_table::Error),
    /// A statistics-layer failure (histogram / discretization).
    Stats(StatsError),
    /// A clustering-layer failure.
    Cluster(ClusterError),
    /// The pivot attribute could not be discretized into pivot values.
    PivotNotDiscretizable {
        /// The pivot attribute name.
        pivot: String,
        /// The underlying statistics failure.
        source: StatsError,
    },
    /// An explicit pivot value does not occur in the result set.
    UnknownPivotValue {
        /// The requested value.
        value: String,
        /// The pivot attribute name.
        pivot: String,
    },
    /// `IUNITS 0` requested.
    ZeroIUnits,
    /// The result set has no non-null pivot values to summarize.
    NoPivotValues,
    /// Every candidate Compare Attribute failed discretization.
    NoCompareAttributes,
    /// The preference attribute is categorical, not numeric.
    NonNumericPreference {
        /// The offending attribute name.
        attr: String,
    },
}

impl fmt::Display for CadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CadError::Table(_) => write!(f, "table operation failed"),
            CadError::Stats(_) => write!(f, "statistics computation failed"),
            CadError::Cluster(_) => write!(f, "clustering failed"),
            CadError::PivotNotDiscretizable { pivot, .. } => {
                write!(f, "pivot attribute {pivot} cannot be discretized")
            }
            CadError::UnknownPivotValue { value, pivot } => {
                write!(f, "pivot value {value:?} does not occur in attribute {pivot}")
            }
            CadError::ZeroIUnits => write!(f, "IUNITS must be at least 1"),
            CadError::NoPivotValues => {
                write!(f, "result set has no pivot values to summarize")
            }
            CadError::NoCompareAttributes => {
                write!(f, "no usable Compare Attributes after discretization")
            }
            CadError::NonNumericPreference { attr } => {
                write!(f, "preference attribute {attr} must be numeric")
            }
        }
    }
}

impl std::error::Error for CadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CadError::Table(e) => Some(e),
            CadError::Stats(e) => Some(e),
            CadError::Cluster(e) => Some(e),
            CadError::PivotNotDiscretizable { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<dbex_table::Error> for CadError {
    fn from(e: dbex_table::Error) -> Self {
        CadError::Table(e)
    }
}

impl From<StatsError> for CadError {
    fn from(e: StatsError) -> Self {
        CadError::Stats(e)
    }
}

impl From<ClusterError> for CadError {
    fn from(e: ClusterError) -> Self {
        CadError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chain_reaches_stats_layer() {
        let err = CadError::Cluster(ClusterError::Stats(StatsError::ZeroBins));
        let cluster = err.source().expect("cluster source");
        let stats = cluster.source().expect("stats source");
        assert_eq!(stats.to_string(), StatsError::ZeroBins.to_string());
    }

    #[test]
    fn leaf_variants_have_no_source() {
        assert!(CadError::ZeroIUnits.source().is_none());
        assert!(CadError::NoPivotValues.source().is_none());
    }
}
