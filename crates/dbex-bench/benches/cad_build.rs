//! Criterion benchmark: end-to-end CAD View construction (the quantity of
//! the paper's Figure 8), worst-case vs optimized configurations, across
//! result-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbex_bench::{base_cars_table, five_make_view, worst_case_request, FIVE_MAKES};
use dbex_core::{build_cad_view, CadConfig, CadRequest};
use std::hint::black_box;

fn bench_cad_build(c: &mut Criterion) {
    let table = base_cars_table();
    let population = five_make_view(&table);
    let mut group = c.benchmark_group("cad_build");
    group.sample_size(10);

    for &size in &[5_000usize, 20_000, 40_000] {
        let result = population.sample(size);
        let worst = worst_case_request();
        group.bench_with_input(BenchmarkId::new("worst_case", size), &size, |b, _| {
            b.iter(|| black_box(build_cad_view(&result, &worst).expect("builds")));
        });
        let optimized = CadRequest::new("Make")
            .with_pivot_values(FIVE_MAKES.to_vec())
            .with_iunits(6)
            .with_max_compare_attrs(5)
            .with_config(CadConfig::optimized());
        group.bench_with_input(BenchmarkId::new("optimized", size), &size, |b, _| {
            b.iter(|| black_box(build_cad_view(&result, &optimized).expect("builds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cad_build);
criterion_main!(benches);
