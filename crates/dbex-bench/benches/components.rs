//! Criterion benchmarks for the pipeline's component algorithms: chi-square
//! feature selection (Figure 8's "Compare Attribute" stage), k-means
//! clustering (Figures 9-10's dominant cost), and diversified top-k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbex_bench::{base_cars_table, five_make_view, FIVE_MAKES};
use dbex_cluster::{kmeans, KMeansConfig, OneHotSpace};
use dbex_stats::discretize::{CodedColumn, CodedMatrix};
use dbex_stats::feature::{select_compare_attributes, FeatureSelectionConfig};
use dbex_stats::histogram::BinningStrategy;
use dbex_topk::{div_astar, greedy, ConflictGraph};
use std::hint::black_box;

fn bench_feature_selection(c: &mut Criterion) {
    let table = base_cars_table();
    let population = five_make_view(&table);
    let schema = table.schema();
    let pivot = schema.index_of("Make").expect("Make exists");
    let dict = table.column(pivot).dictionary().expect("categorical");
    let codes: Vec<u32> = FIVE_MAKES
        .iter()
        .map(|m| dict.code(m).expect("present"))
        .collect();
    let candidates: Vec<usize> = (0..schema.len()).filter(|&i| i != pivot).collect();

    let mut group = c.benchmark_group("feature_selection");
    group.sample_size(10);
    for &size in &[10_000usize, 40_000] {
        let result = population.sample(size);
        group.bench_with_input(BenchmarkId::new("full", size), &size, |b, _| {
            b.iter(|| {
                black_box(select_compare_attributes(
                    &result,
                    pivot,
                    &codes,
                    &[],
                    &candidates,
                    &FeatureSelectionConfig::default(),
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("sampled_5k", size), &size, |b, _| {
            let config = FeatureSelectionConfig {
                sample: Some(5_000),
                ..FeatureSelectionConfig::default()
            };
            b.iter(|| {
                black_box(select_compare_attributes(
                    &result, pivot, &codes, &[], &candidates, &config,
                ))
            });
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let table = base_cars_table();
    let population = five_make_view(&table);
    let schema = table.schema();
    let attrs: Vec<usize> = ["Model", "Engine", "Price", "Drivetrain", "Year"]
        .iter()
        .map(|n| schema.index_of(n).expect("exists"))
        .collect();

    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    for &size in &[5_000usize, 20_000] {
        let result = population.sample(size);
        let matrix = CodedMatrix::encode(&result, &attrs, 6, BinningStrategy::EquiDepth);
        let coded: Vec<&CodedColumn> = matrix.columns.iter().collect();
        let space = OneHotSpace::from_columns(&coded);
        let positions: Vec<usize> = (0..result.len()).collect();
        let points = space.encode_positions(&coded, &positions);
        group.bench_with_input(BenchmarkId::new("l15", size), &size, |b, _| {
            b.iter(|| {
                black_box(kmeans(
                    &points,
                    space.dim(),
                    &KMeansConfig {
                        k: 15,
                        ..Default::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    // Candidate scores + a mid-density conflict graph at CAD-View scale.
    let l = 15;
    let scores: Vec<f64> = (0..l).map(|i| 100.0 + (i as f64 * 37.0) % 900.0).collect();
    let mut graph = ConflictGraph::new(l);
    for a in 0..l {
        for b in (a + 1)..l {
            if (a * 31 + b * 17) % 10 < 3 {
                graph.add_conflict(a, b);
            }
        }
    }
    let mut group = c.benchmark_group("diversified_topk");
    group.bench_function("div_astar", |b| {
        b.iter(|| black_box(div_astar(&scores, &graph, 6)))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(greedy(&scores, &graph, 6)))
    });
    group.finish();
}

criterion_group!(benches, bench_feature_selection, bench_kmeans, bench_topk);
criterion_main!(benches);
