//! Regenerates the paper's **Table 1**: the sample CAD View comparing five
//! car manufacturers, conditioned on Mary's selections
//! (`BodyType = SUV`, `10K ≤ Mileage ≤ 30K`, `Transmission = Automatic`),
//! with `Price` as a user-forced Compare Attribute, 5 Compare Attributes
//! and 3 IUnits per Make.

use dbex_core::{build_cad_view, CadRequest};
use dbex_data::UsedCarsGenerator;
use dbex_table::Predicate;

fn main() {
    let table = UsedCarsGenerator::new(42).generate(40_000);
    let result = table
        .filter(&Predicate::and(vec![
            Predicate::eq("BodyType", "SUV"),
            Predicate::between("Mileage", 10_000, 30_000),
            Predicate::eq("Transmission", "Automatic"),
            Predicate::in_list(
                "Make",
                dbex_bench::FIVE_MAKES.iter().map(|&m| m.into()).collect(),
            ),
        ]))
        .expect("Mary's query is valid");
    println!(
        "Result context: {} automatic SUVs with 10K-30K miles from 5 Makes\n",
        result.len()
    );

    let request = CadRequest::new("Make")
        .with_pivot_values(dbex_bench::FIVE_MAKES.to_vec())
        .with_compare(vec!["Price"])
        .with_max_compare_attrs(5)
        .with_iunits(3);
    let cad = build_cad_view(&result, &request).expect("CAD View builds");

    println!("{}", cad.render());
    println!("Compare Attributes (chi-square order, forced first):");
    for (name, idx) in cad.compare_names.iter().zip(&cad.compare_attrs) {
        let score = cad
            .feature_scores
            .iter()
            .find(|s| s.attr_index == *idx)
            .map(|s| format!("chi2 = {:.1}, p = {:.4}", s.statistic, s.p_value))
            .unwrap_or_else(|| "user-forced".to_owned());
        println!("  {name:<14} {score}");
    }
    println!(
        "\nBuild time: compare-attrs {:?}, iunit-gen {:?}, others {:?}",
        cad.timings.compare_attrs, cad.timings.iunit_generation, cad.timings.others
    );
}
