//! Regenerates the paper's **Figure 8** (worst-case system performance):
//! total CAD View construction time versus result-set size (5K-40K rows),
//! decomposed into Compare Attribute selection, IUnit generation, and all
//! other steps. No optimizations: every attribute admitted (`|I| = 11`
//! including the pivot, 10 Compare Attributes), `l = 15`, `k = 6`,
//! `|V| = 5`, averaged over `SIMS` random subsamples per point.

use dbex_bench::{
    base_cars_table, five_make_view, print_row, simulations, timed_builds, warn_if_debug,
    worst_case_request,
};

fn main() {
    warn_if_debug();
    let sims = simulations();
    let table = base_cars_table();
    let population = five_make_view(&table);
    let request = worst_case_request();

    println!("Figure 8: worst-case CAD View build time vs result size");
    println!("(|I|=10 compare attrs, l=15, k=6, |V|=5, {sims} simulations/point)\n");
    let widths = [8, 14, 12, 11, 11];
    print_row(
        &["rows", "compare(ms)", "iunits(ms)", "others(ms)", "total(ms)"]
            .map(String::from),
        &widths,
    );
    for size in (5_000..=40_000).step_by(5_000) {
        let m = timed_builds(&population, size, &request, sims);
        print_row(
            &[
                format!("{size}"),
                format!("{:.1}", m.compare_ms),
                format!("{:.1}", m.iunit_ms),
                format!("{:.1}", m.others_ms),
                format!("{:.1}", m.total_ms()),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper shape: time grows with result size; compare-attribute selection and\n\
         IUnit generation dominate; the 40K point is multi-hundred-ms to seconds\n\
         while ≤15K stays interactive."
    );
}
