//! `bench_suite` — the machine-readable CAD construction benchmark.
//!
//! Runs the Figure-8 worst-case workload and the Table-1 workload at
//! several pool sizes (1 / 2 / 8 / auto threads), checks that every
//! parallel build renders byte-identically to the sequential one, and
//! writes medians over repeated runs to a JSON report (`BENCH_cad.json`
//! by default). The report carries `"schema": 2` plus a per-workload
//! `"span_breakdown"` (the traced span tree of one sequential build),
//! and is validated — well-formedness *and* schema version — before it
//! is written; a bad report is a hard failure (exit code 1).
//!
//! ```text
//! cargo run --release -p dbex-bench --bin bench_suite             # full, ≥5 runs/point
//! cargo run --release -p dbex-bench --bin bench_suite -- --quick  # CI smoke, 1 run/point
//! cargo run --release -p dbex-bench --bin bench_suite -- --out target/bench.json --runs 7
//! ```
//!
//! `DBEX_THREADS` pins what the `auto` (0) pool size resolves to, so CI
//! can keep the run reproducible on any machine.

use dbex_bench::{
    base_cars_table, five_make_view, median_ms, validate_report, warn_if_debug,
    worst_case_request, BENCH_SCHEMA, FIVE_MAKES,
};
use dbex_core::{build_cad_view, build_cad_view_traced, CadRequest, CadView, Tracer};
use dbex_table::View;
use std::time::Instant;

/// One workload: a named request over a fixed result-set size.
struct Workload {
    name: &'static str,
    rows: usize,
    request: CadRequest,
}

/// Timings and the determinism verdict for one workload × thread count.
struct Cell {
    threads: usize,
    runs_ms: Vec<f64>,
    matches_sequential: bool,
}

fn main() {
    warn_if_debug();
    let mut quick = false;
    let mut out_path = "BENCH_cad.json".to_owned();
    let mut runs = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => die("--out requires a path"),
            },
            "--runs" => match args.next().map(|r| r.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => runs = n,
                _ => die("--runs requires a positive integer"),
            },
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if quick {
        runs = 1;
    }

    let auto = dbex_par::resolve_threads(0);
    // 1 is the sequential baseline; 2 and 8 chart scaling; `auto` is what
    // `.threads auto` / DBEX_THREADS actually give users on this machine.
    let mut thread_counts: Vec<usize> = if quick { vec![1, auto] } else { vec![1, 2, 8, auto] };
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let table = base_cars_table();
    let population = five_make_view(&table);
    let fig8_rows = if quick { 5_000 } else { 40_000 };
    let workloads = [
        Workload {
            name: "fig8_worst_case",
            rows: fig8_rows,
            request: worst_case_request(),
        },
        Workload {
            name: "table1_defaults",
            rows: if quick { 5_000 } else { 40_000 },
            request: CadRequest::new("Make")
                .with_pivot_values(FIVE_MAKES.to_vec())
                .with_compare(vec!["Price"])
                .with_max_compare_attrs(5)
                .with_iunits(3),
        },
    ];

    println!(
        "bench_suite: {} run(s)/point, threads {:?}, auto = {auto} (hardware {}, DBEX_THREADS {})",
        runs,
        thread_counts,
        dbex_par::hardware_threads(),
        std::env::var("DBEX_THREADS").unwrap_or_else(|_| "unset".into()),
    );

    let mut sections = Vec::new();
    for workload in &workloads {
        let result = population.sample(workload.rows);
        let cells = run_workload(workload, &result, &thread_counts, runs);
        let seq_median = cells
            .iter()
            .find(|c| c.threads == 1)
            .map(|c| median_ms(&c.runs_ms))
            .unwrap_or(0.0);
        let deterministic = cells.iter().all(|c| c.matches_sequential);
        if !deterministic {
            die(&format!(
                "{}: parallel render diverged from sequential",
                workload.name
            ));
        }
        println!("\n{} ({} rows):", workload.name, result.len());
        for cell in &cells {
            let med = median_ms(&cell.runs_ms);
            let speedup = if med > 0.0 { seq_median / med } else { 0.0 };
            println!(
                "  {:>2} thread(s): median {:>9.1} ms  (speedup {:.2}x, output identical)",
                cell.threads, med, speedup
            );
        }
        let breakdown = span_breakdown(workload, &result);
        sections.push(render_section(workload, result.len(), &cells, seq_median, &breakdown));
    }

    let report = format!(
        "{{\n  \"bench\": \"cad\",\n  \"schema\": {BENCH_SCHEMA},\n  \"quick\": {quick},\n  \
         \"runs_per_point\": {runs},\n  \
         \"hardware_threads\": {},\n  \"auto_threads\": {auto},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        dbex_par::hardware_threads(),
        sections.join(",\n"),
    );
    if let Err(e) = validate_report(&report) {
        die(&format!("generated report is invalid: {e}"));
    }
    if let Err(e) = std::fs::write(&out_path, &report) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    println!("\nwrote {out_path}");
}

/// Builds the workload at every pool size, `runs` times each, and checks
/// each parallel render against the sequential one.
fn run_workload(
    workload: &Workload,
    result: &View<'_>,
    thread_counts: &[usize],
    runs: usize,
) -> Vec<Cell> {
    let mut sequential_render: Option<String> = None;
    let mut cells = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut request = workload.request.clone();
        request.config.threads = threads;
        let mut runs_ms = Vec::with_capacity(runs);
        let mut last: Option<CadView> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let cad = build_cad_view(result, &request).unwrap_or_else(|e| {
                die(&format!("{} failed at {threads} threads: {e}", workload.name))
            });
            runs_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
            last = Some(cad);
        }
        let render = last.map(|c| c.render()).unwrap_or_default();
        let matches_sequential = match &sequential_render {
            None => {
                sequential_render = Some(render);
                true
            }
            Some(seq) => *seq == render,
        };
        cells.push(Cell {
            threads,
            runs_ms,
            matches_sequential,
        });
    }
    cells
}

/// The traced span tree of one extra sequential build, as JSON. Wall
/// times inside it come from a single run (the medians above remain the
/// timing source of record); the structural fields — span names, call
/// counts, rows scanned, cache hits/misses — are deterministic.
fn span_breakdown(workload: &Workload, result: &View<'_>) -> String {
    let mut request = workload.request.clone();
    request.config.threads = 1;
    let tracer = Tracer::enabled();
    let cad = build_cad_view_traced(result, &request, None, &tracer).unwrap_or_else(|e| {
        die(&format!("{} traced build failed: {e}", workload.name))
    });
    cad.trace.map_or_else(|| "[]".to_owned(), |t| t.to_json())
}

/// One workload's JSON object (hand-rolled; validated by the caller).
fn render_section(
    workload: &Workload,
    rows: usize,
    cells: &[Cell],
    seq_median: f64,
    span_breakdown: &str,
) -> String {
    let max_threads = cells.iter().map(|c| c.threads).max().unwrap_or(1);
    let max_median = cells
        .iter()
        .find(|c| c.threads == max_threads)
        .map(|c| median_ms(&c.runs_ms))
        .unwrap_or(0.0);
    let speedup = if max_median > 0.0 { seq_median / max_median } else { 0.0 };
    let points: Vec<String> = cells
        .iter()
        .map(|c| {
            let samples: Vec<String> = c.runs_ms.iter().map(|ms| format!("{ms:.3}")).collect();
            format!(
                "        {{\"threads\": {}, \"median_ms\": {:.3}, \"runs_ms\": [{}], \
                 \"output_matches_sequential\": {}}}",
                c.threads,
                median_ms(&c.runs_ms),
                samples.join(", "),
                c.matches_sequential,
            )
        })
        .collect();
    format!
        (
        "    {{\n      \"name\": \"{}\",\n      \"rows\": {rows},\n      \"points\": [\n{}\n      \
         ],\n      \"speedup_at_max_threads\": {speedup:.3},\n      \
         \"span_breakdown\": {span_breakdown}\n    }}",
        workload.name,
        points.join(",\n"),
    )
}

fn die(msg: &str) -> ! {
    eprintln!("bench_suite: {msg}");
    std::process::exit(1);
}
