//! `bench_suite` — the machine-readable CAD construction benchmark.
//!
//! Runs the Figure-8 worst-case workload and the Table-1 workload at
//! several pool sizes (1 / 2 / 8 / auto threads), checks that every
//! parallel build renders byte-identically to the sequential one, and
//! writes medians over repeated runs to a JSON report (`BENCH_cad.json`
//! by default). Every point is measured twice: **cold** (a fresh build,
//! no cache) and **warm** (rebuilds against a `StatsCache` primed by one
//! preceding build, so codec, contingency and cluster-partition reuse
//! all engage). The report carries `"schema": 4`, a per-workload
//! `"warm_cache"` object (hits / misses / partitions served from the
//! cluster-reuse cache), `"span_medians_ms"` (per-span medians over
//! repeated traced builds), a `"kernel_speedups"` object (the
//! kernel-heavy spans' median speedup at the max measured pool size
//! over 1 thread), a `"span_breakdown"` tree, and top-level
//! `"cpu_features"` / `"kernel_dispatch"` provenance (which SIMD family
//! the packed kernels dispatched to on this host — compare reports from
//! different machines with that in hand). It is validated —
//! well-formedness, schema version *and* field whitelist — before it is
//! written; a bad report is a hard failure (exit code 1).
//!
//! ```text
//! cargo run --release -p dbex-bench --bin bench_suite             # full, ≥5 runs/point
//! cargo run --release -p dbex-bench --bin bench_suite -- --quick  # CI smoke, 1 run/point
//! cargo run --release -p dbex-bench --bin bench_suite -- --out target/bench.json --runs 7
//! cargo run --release -p dbex-bench --bin bench_suite -- --baseline BENCH_cad.json
//! ```
//!
//! `--baseline <report.json>` additionally diffs the fresh report
//! against a committed schema-2 or schema-3 report: per-workload and
//! per-span regressions/speedups are printed, and the run exits
//! non-zero when the `cluster_partition` median regresses by more than
//! 25% on any comparable workload (row-count mismatches — e.g. a
//! `--quick` run against a full baseline — are skipped, not failed).
//!
//! `DBEX_THREADS` pins what the `auto` (0) pool size resolves to, so CI
//! can keep the run reproducible on any machine.

use dbex_bench::{
    base_cars_table, diff_reports, five_make_view, flatten_spans, median_ms, validate_report,
    warn_if_debug, worst_case_request, Json, BENCH_SCHEMA, FIVE_MAKES,
};
use dbex_core::{
    build_cad_view, build_cad_view_cached, build_cad_view_traced, CadRequest, CadView, StatsCache,
    Tracer,
};
use dbex_table::View;
use std::time::Instant;

/// Gate threshold for `--baseline`: fail on a >25% regression in the
/// `cluster_partition` median.
const GATE_THRESHOLD: f64 = 0.25;

/// The kernel-heavy spans whose thread-scaling speedup the schema-4
/// report records (`"kernel_speedups"`): the packed clustering walk and
/// the chi-square contingency fill.
const KERNEL_SPANS: [&str; 2] = ["cluster_partition", "compare_attrs"];

/// One workload: a named request over a fixed result-set size.
struct Workload {
    name: &'static str,
    rows: usize,
    request: CadRequest,
}

/// Timings and the determinism verdict for one workload × thread count.
struct Cell {
    threads: usize,
    cold_runs_ms: Vec<f64>,
    warm_runs_ms: Vec<f64>,
    matches_sequential: bool,
}

/// Cache effectiveness observed by the sequential warm rebuilds.
struct WarmCache {
    hits: u64,
    misses: u64,
    partitions_reused: usize,
}

fn main() {
    warn_if_debug();
    let mut quick = false;
    let mut out_path = "BENCH_cad.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut runs = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => die("--out requires a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p),
                None => die("--baseline requires a path"),
            },
            "--runs" => match args.next().map(|r| r.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => runs = n,
                _ => die("--runs requires a positive integer"),
            },
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if quick {
        runs = 1;
    }

    let auto = dbex_par::resolve_threads(0);
    // 1 is the sequential baseline; 2 and 8 chart scaling; `auto` is what
    // `.threads auto` / DBEX_THREADS actually give users on this machine.
    let mut thread_counts: Vec<usize> = if quick { vec![1, auto] } else { vec![1, 2, 8, auto] };
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let table = base_cars_table();
    let population = five_make_view(&table);
    let fig8_rows = if quick { 5_000 } else { 40_000 };
    let workloads = [
        Workload {
            name: "fig8_worst_case",
            rows: fig8_rows,
            request: worst_case_request(),
        },
        Workload {
            name: "table1_defaults",
            rows: if quick { 5_000 } else { 40_000 },
            request: CadRequest::new("Make")
                .with_pivot_values(FIVE_MAKES.to_vec())
                .with_compare(vec!["Price"])
                .with_max_compare_attrs(5)
                .with_iunits(3),
        },
    ];

    let cpu_features = dbex_stats::simd::cpu_features();
    let kernel_dispatch = dbex_stats::simd::dispatch().name();
    println!(
        "bench_suite: {} run(s)/point, threads {:?}, auto = {auto} (hardware {}, DBEX_THREADS {})",
        runs,
        thread_counts,
        dbex_par::hardware_threads(),
        std::env::var("DBEX_THREADS").unwrap_or_else(|_| "unset".into()),
    );
    println!("kernel dispatch: {kernel_dispatch} (cpu: {cpu_features})");

    let mut sections = Vec::new();
    for workload in &workloads {
        let result = population.sample(workload.rows);
        let (cells, warm_cache) = run_workload(workload, &result, &thread_counts, runs);
        let seq_median = cells
            .iter()
            .find(|c| c.threads == 1)
            .map(|c| median_ms(&c.cold_runs_ms))
            .unwrap_or(0.0);
        let deterministic = cells.iter().all(|c| c.matches_sequential);
        if !deterministic {
            die(&format!(
                "{}: parallel or warm render diverged from sequential",
                workload.name
            ));
        }
        println!("\n{} ({} rows):", workload.name, result.len());
        for cell in &cells {
            let cold = median_ms(&cell.cold_runs_ms);
            let warm = median_ms(&cell.warm_runs_ms);
            let speedup = if cold > 0.0 { seq_median / cold } else { 0.0 };
            println!(
                "  {:>2} thread(s): cold median {:>9.1} ms, warm median {:>9.1} ms  \
                 (cold speedup {:.2}x, output identical)",
                cell.threads, cold, warm, speedup
            );
        }
        println!(
            "  warm cache: {} hit(s), {} miss(es), {} partition(s) reused per rebuild",
            warm_cache.hits, warm_cache.misses, warm_cache.partitions_reused
        );
        let (breakdown, span_medians) = span_breakdown(workload, &result, runs, 1);
        // Kernel-only speedups: the kernel-heavy spans' medians at the
        // max measured pool size over the sequential medians, isolating
        // the intra-partition chunking from end-to-end effects.
        let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
        let max_span_medians = if max_threads > 1 {
            span_breakdown(workload, &result, runs, max_threads).1
        } else {
            span_medians.clone()
        };
        let kernel_speedups: Vec<(String, f64)> = KERNEL_SPANS
            .iter()
            .filter_map(|&span| {
                let seq = span_medians.iter().find(|(n, _)| n == span)?.1;
                let par = max_span_medians.iter().find(|(n, _)| n == span)?.1;
                (par > 0.0).then(|| (span.to_owned(), seq / par))
            })
            .collect();
        for (span, speedup) in &kernel_speedups {
            println!("  kernel span {span}: {speedup:.2}x at {max_threads} thread(s)");
        }
        sections.push(render_section(
            workload,
            result.len(),
            &cells,
            seq_median,
            &warm_cache,
            &breakdown,
            &span_medians,
            &kernel_speedups,
        ));
    }

    let report = format!(
        "{{\n  \"bench\": \"cad\",\n  \"schema\": {BENCH_SCHEMA},\n  \"quick\": {quick},\n  \
         \"runs_per_point\": {runs},\n  \
         \"hardware_threads\": {},\n  \"auto_threads\": {auto},\n  \
         \"cpu_features\": \"{cpu_features}\",\n  \"kernel_dispatch\": \"{kernel_dispatch}\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        dbex_par::hardware_threads(),
        sections.join(",\n"),
    );
    if let Err(e) = validate_report(&report) {
        die(&format!("generated report is invalid: {e}"));
    }
    if let Err(e) = std::fs::write(&out_path, &report) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
        let diff = diff_reports(&report, &baseline, GATE_THRESHOLD)
            .unwrap_or_else(|e| die(&format!("baseline diff failed: {e}")));
        println!("\nbaseline diff vs {path}:");
        for line in &diff.lines {
            println!("  {line}");
        }
        if diff.gate_failed {
            die(&format!(
                "cluster_partition median regressed by more than {:.0}% vs {path}",
                GATE_THRESHOLD * 100.0
            ));
        }
    }
}

/// Builds the workload at every pool size, `runs` times each cold and —
/// against a cache primed by one preceding build — `runs` times warm,
/// checking every render (parallel and warm alike) against the
/// sequential cold one.
fn run_workload(
    workload: &Workload,
    result: &View<'_>,
    thread_counts: &[usize],
    runs: usize,
) -> (Vec<Cell>, WarmCache) {
    let mut sequential_render: Option<String> = None;
    let mut cells = Vec::with_capacity(thread_counts.len());
    let mut warm_cache = WarmCache {
        hits: 0,
        misses: 0,
        partitions_reused: 0,
    };
    for &threads in thread_counts {
        let mut request = workload.request.clone();
        request.config.threads = threads;
        let mut cold_runs_ms = Vec::with_capacity(runs);
        let mut last: Option<CadView> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let cad = build_cad_view(result, &request).unwrap_or_else(|e| {
                die(&format!("{} failed at {threads} threads: {e}", workload.name))
            });
            cold_runs_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
            last = Some(cad);
        }
        // Warm path: one untimed priming build populates the cache, then
        // every timed rebuild reuses codecs, contingency tables and
        // untouched cluster partitions.
        let cache = StatsCache::new();
        build_cad_view_cached(result, &request, Some(&cache)).unwrap_or_else(|e| {
            die(&format!(
                "{} warm prime failed at {threads} threads: {e}",
                workload.name
            ))
        });
        let mut warm_runs_ms = Vec::with_capacity(runs);
        let mut warm_last: Option<CadView> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let cad = build_cad_view_cached(result, &request, Some(&cache)).unwrap_or_else(|e| {
                die(&format!(
                    "{} warm build failed at {threads} threads: {e}",
                    workload.name
                ))
            });
            warm_runs_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
            warm_last = Some(cad);
        }
        if threads == 1 {
            let stats = cache.stats();
            warm_cache.hits = stats.hits;
            warm_cache.misses = stats.misses;
            warm_cache.partitions_reused = warm_last
                .as_ref()
                .map(|c| c.partitions_reused)
                .unwrap_or(0);
        }
        let render = last.map(|c| c.render()).unwrap_or_default();
        let warm_render = warm_last.map(|c| c.render()).unwrap_or_default();
        let matches_sequential = match &sequential_render {
            None => {
                sequential_render = Some(render.clone());
                warm_render == render
            }
            Some(seq) => *seq == render && *seq == warm_render,
        };
        cells.push(Cell {
            threads,
            cold_runs_ms,
            warm_runs_ms,
            matches_sequential,
        });
    }
    (cells, warm_cache)
}

/// The traced span tree of `runs` extra builds at the given pool size:
/// returns the last run's tree as JSON (the structural fields — span
/// names, call counts, rows scanned, cache hits — are deterministic)
/// plus per-span medians of total `duration_ms` across the runs, the
/// values the `--baseline` gate and the `kernel_speedups` object
/// compare.
fn span_breakdown(
    workload: &Workload,
    result: &View<'_>,
    runs: usize,
    threads: usize,
) -> (String, Vec<(String, f64)>) {
    let mut request = workload.request.clone();
    request.config.threads = threads;
    let mut tree_json = "[]".to_owned();
    let mut per_span: Vec<(String, Vec<f64>)> = Vec::new();
    for _ in 0..runs.max(1) {
        let tracer = Tracer::enabled();
        let cad = build_cad_view_traced(result, &request, None, &tracer).unwrap_or_else(|e| {
            die(&format!("{} traced build failed: {e}", workload.name))
        });
        let Some(trace) = cad.trace else { continue };
        tree_json = trace.to_json();
        let parsed = Json::parse(&tree_json).unwrap_or_else(|e| {
            die(&format!("{} span tree is invalid JSON: {e}", workload.name))
        });
        for (name, ms) in flatten_spans(&parsed) {
            match per_span.iter_mut().find(|(n, _)| *n == name) {
                Some((_, samples)) => samples.push(ms),
                None => per_span.push((name, vec![ms])),
            }
        }
    }
    let medians = per_span
        .into_iter()
        .map(|(name, samples)| (name, median_ms(&samples)))
        .collect();
    (tree_json, medians)
}

/// One workload's JSON object (hand-rolled; validated by the caller).
#[allow(clippy::too_many_arguments)]
fn render_section(
    workload: &Workload,
    rows: usize,
    cells: &[Cell],
    seq_median: f64,
    warm_cache: &WarmCache,
    span_breakdown: &str,
    span_medians: &[(String, f64)],
    kernel_speedups: &[(String, f64)],
) -> String {
    let max_threads = cells.iter().map(|c| c.threads).max().unwrap_or(1);
    let max_median = cells
        .iter()
        .find(|c| c.threads == max_threads)
        .map(|c| median_ms(&c.cold_runs_ms))
        .unwrap_or(0.0);
    let speedup = if max_median > 0.0 { seq_median / max_median } else { 0.0 };
    let points: Vec<String> = cells
        .iter()
        .map(|c| {
            let fmt = |runs_ms: &[f64]| {
                let samples: Vec<String> = runs_ms.iter().map(|ms| format!("{ms:.3}")).collect();
                samples.join(", ")
            };
            let cold = median_ms(&c.cold_runs_ms);
            format!(
                "        {{\"threads\": {}, \"median_ms\": {cold:.3}, \
                 \"cold_median_ms\": {cold:.3}, \"warm_median_ms\": {:.3}, \
                 \"cold_runs_ms\": [{}], \"warm_runs_ms\": [{}], \
                 \"output_matches_sequential\": {}}}",
                c.threads,
                median_ms(&c.warm_runs_ms),
                fmt(&c.cold_runs_ms),
                fmt(&c.warm_runs_ms),
                c.matches_sequential,
            )
        })
        .collect();
    let medians: Vec<String> = span_medians
        .iter()
        .map(|(name, ms)| format!("\"{name}\": {ms:.3}"))
        .collect();
    let speedups: Vec<String> = kernel_speedups
        .iter()
        .map(|(name, x)| format!("\"{name}\": {x:.3}"))
        .collect();
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"rows\": {rows},\n      \"points\": [\n{}\n      \
         ],\n      \"speedup_at_max_threads\": {speedup:.3},\n      \
         \"warm_cache\": {{\"hits\": {}, \"misses\": {}, \"partitions_reused\": {}}},\n      \
         \"span_medians_ms\": {{{}}},\n      \
         \"kernel_speedups\": {{{}}},\n      \
         \"span_breakdown\": {span_breakdown}\n    }}",
        workload.name,
        points.join(",\n"),
        warm_cache.hits,
        warm_cache.misses,
        warm_cache.partitions_reused,
        medians.join(", "),
        speedups.join(", "),
    )
}

fn die(msg: &str) -> ! {
    eprintln!("bench_suite: {msg}");
    std::process::exit(1);
}
