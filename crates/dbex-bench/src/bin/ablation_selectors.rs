//! Ablation: Compare Attribute relevance measures (DESIGN.md related-work
//! extension; paper Section 7 frames selection as a generic feature
//! selection problem).
//!
//! Compares chi-square (the paper's choice), information gain, and
//! symmetrical uncertainty on: the attribute sets they select, their
//! mutual agreement, and selection time — on both datasets.

use dbex_bench::{base_cars_table, five_make_view, FIVE_MAKES};
use dbex_data::MushroomGenerator;
use dbex_stats::feature::{select_compare_attributes, FeatureScorer, FeatureSelectionConfig};
use dbex_table::{Table, View};
use std::time::Instant;

fn selector_name(s: FeatureScorer) -> &'static str {
    match s {
        FeatureScorer::ChiSquare => "chi-square",
        FeatureScorer::InfoGain => "info-gain",
        FeatureScorer::SymmetricalUncertainty => "sym-uncertainty",
    }
}

fn run(
    label: &str,
    table: &Table,
    result: &View<'_>,
    pivot_name: &str,
    pivot_values: &[&str],
) {
    let schema = table.schema();
    let pivot = schema.index_of(pivot_name).expect("pivot exists");
    let dict = table.column(pivot).dictionary().expect("categorical");
    let codes: Vec<u32> = pivot_values
        .iter()
        .map(|v| dict.code(v).expect("value present"))
        .collect();
    let candidates: Vec<usize> = (0..schema.len()).filter(|&i| i != pivot).collect();

    println!("--- {label} (pivot = {pivot_name}, {} rows) ---", result.len());
    let mut sets = Vec::new();
    for scorer in [
        FeatureScorer::ChiSquare,
        FeatureScorer::InfoGain,
        FeatureScorer::SymmetricalUncertainty,
    ] {
        let config = FeatureSelectionConfig {
            max_attrs: 5,
            scorer,
            ..FeatureSelectionConfig::default()
        };
        let t0 = Instant::now();
        let (selected, _) =
            select_compare_attributes(result, pivot, &codes, &[], &candidates, &config);
        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let names: Vec<&str> = selected
            .iter()
            .map(|&i| schema.field(i).name.as_str())
            .collect();
        println!("{:>16}: {:>7.1} ms  {:?}", selector_name(scorer), ms, names);
        sets.push(selected);
    }
    for (i, a) in sets.iter().enumerate() {
        for (j, b) in sets.iter().enumerate().skip(i + 1) {
            let agree = a.iter().filter(|x| b.contains(x)).count();
            println!(
                "  agreement {} vs {}: {agree}/{}",
                i + 1,
                j + 1,
                a.len().max(b.len())
            );
        }
    }
    println!();
}

fn main() {
    println!("Ablation: Compare Attribute relevance measures\n");

    let cars = base_cars_table();
    let suvs = five_make_view(&cars).sample(20_000);
    run("UsedCars", &cars, &suvs, "Make", &FIVE_MAKES);

    let shrooms = MushroomGenerator::new(2016).generate_default();
    let all = shrooms.full_view();
    run(
        "Mushroom",
        &shrooms,
        &all,
        "Class",
        &["edible", "poisonous"],
    );
    println!(
        "Reading: the selectors agree on the strongest attributes; symmetrical\n\
         uncertainty penalizes high-cardinality attributes (e.g. Model) relative\n\
         to chi-square, which is why the paper pairs chi-square with a p-value\n\
         gate rather than using raw ranks alone."
    );
}
