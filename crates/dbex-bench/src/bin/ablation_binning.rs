//! Ablation: numeric binning strategy (DESIGN.md ablation 4).
//!
//! Compares equi-width, equi-depth and V-optimal histograms on (a) the
//! stability of the chi-square Compare Attribute ranking across result-set
//! subsamples and (b) CAD View build time.

use dbex_bench::{base_cars_table, five_make_view, FIVE_MAKES};
use dbex_core::{build_cad_view, CadConfig, CadRequest};
use dbex_stats::histogram::BinningStrategy;
use std::time::Instant;

fn main() {
    let table = base_cars_table();
    let population = five_make_view(&table);
    let strategies = [
        ("equi-width", BinningStrategy::EquiWidth),
        ("equi-depth", BinningStrategy::EquiDepth),
        ("v-optimal", BinningStrategy::VOptimal),
        ("max-diff", BinningStrategy::MaxDiff),
    ];

    println!("Ablation: binning strategy for numeric Compare Attributes\n");
    println!(
        "{:>12}  {:>12}  {:>22}  {:>16}",
        "strategy", "build(ms)", "ranking stability", "top-5 attrs"
    );

    for (name, strategy) in strategies {
        let request = |seed_rot: usize| {
            CadRequest::new("Make")
                .with_pivot_values(FIVE_MAKES.to_vec())
                .with_iunits(3)
                .with_max_compare_attrs(5)
                .with_config(CadConfig {
                    strategy,
                    seed: seed_rot as u64,
                    ..CadConfig::default()
                })
        };

        // Build on 8 different 10K subsamples; measure how stable the
        // selected Compare Attribute set is (mean pairwise Jaccard).
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut total_ms = 0.0;
        for i in 0..8usize {
            let ids = population.row_ids();
            let k = (i * 13_337) % ids.len();
            let mut rows = Vec::with_capacity(ids.len());
            rows.extend_from_slice(&ids[k..]);
            rows.extend_from_slice(&ids[..k]);
            let sub = dbex_table::View::from_rows(population.table(), rows).sample(10_000);
            let t0 = Instant::now();
            let cad = build_cad_view(&sub, &request(i)).expect("build succeeds");
            total_ms += t0.elapsed().as_secs_f64() * 1_000.0;
            sets.push(cad.compare_attrs.clone());
        }
        let mut jaccard_sum = 0.0;
        let mut pairs = 0.0;
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let inter = sets[i].iter().filter(|a| sets[j].contains(a)).count() as f64;
                let union = (sets[i].len() + sets[j].len()) as f64 - inter;
                jaccard_sum += inter / union.max(1.0);
                pairs += 1.0;
            }
        }
        let names: Vec<String> = sets[0]
            .iter()
            .map(|&a| table.schema().field(a).name.clone())
            .collect();
        println!(
            "{:>12}  {:>12.1}  {:>22.3}  {:?}",
            name,
            total_ms / 8.0,
            jaccard_sum / pairs,
            names
        );
    }
    println!(
        "\nReading: equi-depth (the default) balances stability and cost; V-optimal\n\
         gives the most faithful bins at extra DP cost; equi-width is cheapest but\n\
         sensitive to outliers."
    );
}
