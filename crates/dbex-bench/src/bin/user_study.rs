//! Regenerates the paper's **Figures 2-7** and the Section 6.2 statistics:
//! the simulated user study comparing Solr-style faceted navigation with
//! TPFacet on the three exploratory tasks.

use dbex_study::{render_replicated, run_replicated, run_study, Interface, StudyConfig, TaskId};

fn main() {
    let config = StudyConfig::default();
    println!(
        "Simulated user study: 8 users, 2 groups, 3 matched task pairs, \
         Mushroom dataset ({} rows)\n",
        config.rows
    );
    let report = run_study(&config);
    print!("{}", report.render());

    // Optional: replicate the whole protocol across independent simulated
    // populations (REPS env var) and report means with error bars.
    if let Some(reps) = std::env::var("REPS").ok().and_then(|s| s.parse::<usize>().ok()) {
        if reps > 1 {
            println!("== Replicated across {reps} populations ==");
            print!("{}", render_replicated(&run_replicated(&config, reps)));
            println!();
        }
    }

    println!("== Summary (means) ==");
    for (task, metric) in [
        (TaskId::Classifier, "F1"),
        (TaskId::SimilarPair, "rank"),
        (TaskId::AltCondition, "error"),
    ] {
        let sq = report.mean(task, Interface::Solr, false);
        let tq = report.mean(task, Interface::TpFacet, false);
        let st = report.mean(task, Interface::Solr, true);
        let tt = report.mean(task, Interface::TpFacet, true);
        println!(
            "{:<36} {metric}: Solr {sq:.2} vs TPFacet {tq:.2}; \
             time: Solr {st:.1} min vs TPFacet {tt:.1} min ({:.1}x faster)",
            task.name(),
            st / tt.max(1e-9)
        );
    }
}
