//! Scaling study beyond the paper's 40K ceiling: full Lloyd k-means vs
//! mini-batch k-means on one-hot encoded car data as the result set grows
//! to 200K rows. The paper's own optimizations (sample-and-assign) stop at
//! fixed sample quality; mini-batch keeps touching all data at bounded
//! cost. Reports time and relative inertia (1.00 = full k-means).

use dbex_cluster::{kmeans, mini_batch_kmeans, KMeansConfig, MiniBatchConfig, OneHotSpace};
use dbex_data::UsedCarsGenerator;
use dbex_stats::discretize::{CodedColumn, CodedMatrix};
use dbex_stats::histogram::BinningStrategy;
use std::time::Instant;

fn main() {
    println!("Scaling: full k-means vs mini-batch (k = 15, car data, 5 attrs)\n");
    println!(
        "{:>9}  {:>10}  {:>10}  {:>10}  {:>14}",
        "rows", "full(ms)", "mb(ms)", "speedup", "rel. inertia"
    );

    let table = UsedCarsGenerator::new(0xBEEF).generate(200_000);
    let schema = table.schema();
    let attrs: Vec<usize> = ["Model", "Engine", "Price", "Drivetrain", "Year"]
        .iter()
        .map(|n| schema.index_of(n).expect("attribute exists"))
        .collect();

    for &rows in &[20_000usize, 50_000, 100_000, 200_000] {
        let view = table.full_view().sample(rows);
        let matrix = CodedMatrix::encode(&view, &attrs, 6, BinningStrategy::EquiDepth);
        let coded: Vec<&CodedColumn> = matrix.columns.iter().collect();
        let space = OneHotSpace::from_columns(&coded);
        let positions: Vec<usize> = (0..view.len()).collect();
        let points = space.encode_positions(&coded, &positions);

        let t0 = Instant::now();
        let full = kmeans(
            &points,
            space.dim(),
            &KMeansConfig {
                k: 15,
                ..Default::default()
            },
        )
        .expect("k-means on bench data");
        let full_ms = t0.elapsed().as_secs_f64() * 1_000.0;

        let t1 = Instant::now();
        let mb = mini_batch_kmeans(
            &points,
            space.dim(),
            &MiniBatchConfig {
                k: 15,
                batch_size: 512,
                batches: 120,
                seed: 7,
            },
        )
        .expect("mini-batch k-means on bench data");
        let mb_ms = t1.elapsed().as_secs_f64() * 1_000.0;

        println!(
            "{:>9}  {:>10.1}  {:>10.1}  {:>9.1}x  {:>14.3}",
            rows,
            full_ms,
            mb_ms,
            full_ms / mb_ms.max(1e-9),
            mb.inertia / full.inertia.max(1e-9)
        );
    }
    println!(
        "\nReading: mini-batch training cost is flat (fixed batches; only the final\n\
         assignment pass is linear), so its advantage grows with data size while\n\
         inertia stays at parity — the natural next optimization past the paper's\n\
         sample-and-assign when result sets outgrow 40K."
    );
}
