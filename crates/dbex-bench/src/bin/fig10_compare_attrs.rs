//! Regenerates the paper's **Figure 10**: clustering time versus the
//! number of Compare Attributes (1-10), for result sizes 10K-40K. Fewer
//! Compare Attributes shrink the one-hot space and the per-distance work —
//! the paper's Optimization 3.

use dbex_bench::{
    base_cars_table, five_make_view, print_row, simulations, timed_builds, warn_if_debug,
    worst_case_request,
};

fn main() {
    warn_if_debug();
    let sims = simulations().min(20);
    let table = base_cars_table();
    let population = five_make_view(&table);
    let sizes = [10_000usize, 20_000, 30_000, 40_000];

    println!("Figure 10: number of Compare Attributes vs IUnit-generation time");
    println!("({sims} simulations/point; l = 15, k = 6)\n");
    let widths = [6, 12, 12, 12, 12];
    let mut header = vec!["|I|".to_owned()];
    header.extend(sizes.iter().map(|s| format!("{}K(ms)", s / 1_000)));
    print_row(&header, &widths);

    for n_attrs in [1usize, 3, 5, 7, 10] {
        let mut cells = vec![format!("{n_attrs}")];
        for &size in &sizes {
            let request = worst_case_request().with_max_compare_attrs(n_attrs);
            let m = timed_builds(&population, size, &request, sims);
            cells.push(format!("{:.1}", m.iunit_ms));
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nPaper shape: time rises with the number of Compare Attributes; with few\n\
         attributes even 40K rows cluster in a few hundred milliseconds."
    );
}
