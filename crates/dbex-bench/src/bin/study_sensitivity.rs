//! Sensitivity analysis of the simulated user study: do the paper-level
//! conclusions survive perturbing the cost calibration and the simulated
//! user population? (Robustness check the original paper could not run —
//! its users were human — but a simulation must.)

use dbex_study::run_sensitivity;

fn main() {
    println!("Sensitivity of the user-study conclusions\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8}  {:>6} {:>6} {:>6}",
        "perturbation", "t1", "t2", "t3", "time", "F1", "error"
    );
    let rows = std::env::var("ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let outcomes = run_sensitivity(rows, &[7, 99, 12_345, 777, 31_337]);
    let mut all_hold = true;
    for o in &outcomes {
        all_hold &= o.holds();
        println!(
            "{:<28} {:>7.1}x {:>7.1}x {:>7.1}x  {:>6} {:>6} {:>6}",
            o.label,
            o.time_ratios[0],
            o.time_ratios[1],
            o.time_ratios[2],
            tick(o.faster_everywhere),
            tick(o.f1_no_worse),
            tick(o.error_lower),
        );
    }
    println!(
        "\nAll conclusions hold under every perturbation: {}",
        tick(all_hold)
    );
    println!(
        "(t1-t3 are Solr/TPFacet time ratios; 'time' = tasks 1-2 >1.5x and task 3\n\
         ≥ parity, 'F1' = classifier quality no worse, 'error' = task-3 retrieval\n\
         error lower.)"
    );
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
