//! Ablation: exact **div-astar** vs **greedy** diversified top-k
//! (DESIGN.md ablation 1; paper Section 3.2 argues greedy "can lead to
//! arbitrarily bad solutions").
//!
//! Measures, across many synthetic candidate-IUnit instances shaped like
//! real CAD builds (l = 15 candidates, k = 6, varying conflict densities):
//! how often greedy is suboptimal, the mean score ratio, and both
//! algorithms' runtime.

use dbex_topk::{div_astar, div_cut, greedy, ConflictGraph};
use std::time::Instant;

fn main() {
    let l = 15;
    let k = 6;
    println!("Ablation: diversified top-k — div-astar (exact) vs greedy");
    println!("(l = {l} candidates, k = {k}, 200 instances per conflict density)\n");
    println!(
        "{:>9}  {:>11}  {:>11}  {:>12}  {:>12}  {:>12}",
        "density", "subopt(%)", "ratio", "astar(us)", "cut(us)", "greedy(us)"
    );

    for density_pct in [10u64, 30, 50, 70] {
        let mut suboptimal = 0usize;
        let mut ratio_sum = 0.0;
        let mut astar_ns = 0u128;
        let mut cut_ns = 0u128;
        let mut greedy_ns = 0u128;
        let instances = 200;
        for trial in 0..instances as u64 {
            let mut state = (trial * 2 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ density_pct;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // Scores shaped like cluster sizes: heavy-tailed positives.
            let scores: Vec<f64> = (0..l)
                .map(|_| {
                    let u = (next() % 1_000) as f64 / 1_000.0;
                    50.0 + 2_000.0 * u * u
                })
                .collect();
            let mut graph = ConflictGraph::new(l);
            for a in 0..l {
                for b in (a + 1)..l {
                    if next() % 100 < density_pct {
                        graph.add_conflict(a, b);
                    }
                }
            }
            let t0 = Instant::now();
            let exact = div_astar(&scores, &graph, k);
            astar_ns += t0.elapsed().as_nanos();
            let tc = Instant::now();
            let cut = div_cut(&scores, &graph, k);
            cut_ns += tc.elapsed().as_nanos();
            assert!(
                (cut.total_score - exact.total_score).abs() < 1e-9,
                "div-cut must match div-astar"
            );
            let t1 = Instant::now();
            let g = greedy(&scores, &graph, k);
            greedy_ns += t1.elapsed().as_nanos();

            if g.total_score + 1e-9 < exact.total_score {
                suboptimal += 1;
            }
            ratio_sum += g.total_score / exact.total_score.max(1e-9);
        }
        println!(
            "{:>8}%  {:>10.1}%  {:>11.4}  {:>12.1}  {:>12.1}  {:>12.1}",
            density_pct,
            100.0 * suboptimal as f64 / instances as f64,
            ratio_sum / instances as f64,
            astar_ns as f64 / instances as f64 / 1_000.0,
            cut_ns as f64 / instances as f64 / 1_000.0,
            greedy_ns as f64 / instances as f64 / 1_000.0,
        );
    }
    println!(
        "\nReading: greedy loses measurable score as conflicts densify, while the\n\
         exact search stays microsecond-scale at CAD-View sizes — the paper's\n\
         rationale for running div-astar."
    );
}
