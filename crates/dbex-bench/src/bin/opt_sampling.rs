//! Regenerates the paper's **Optimization 1** result (Section 6.3):
//! Compare Attribute selection on a 5K-10K sample returns (almost) the
//! same attribute set as the full 40K result, at a fraction of the time.

use dbex_bench::{base_cars_table, five_make_view, print_row, warn_if_debug, FIVE_MAKES};
use dbex_stats::feature::{select_compare_attributes, FeatureSelectionConfig};
use std::time::Instant;

fn main() {
    warn_if_debug();
    let table = base_cars_table();
    let population = five_make_view(&table);
    let result = population.sample(40_000);
    let schema = table.schema();
    let pivot = schema.index_of("Make").expect("Make exists");
    let dict = table.column(pivot).dictionary().expect("categorical");
    let codes: Vec<u32> = FIVE_MAKES
        .iter()
        .map(|m| dict.code(m).expect("make present"))
        .collect();
    let candidates: Vec<usize> = (0..schema.len()).filter(|&i| i != pivot).collect();

    let select = |sample: Option<usize>| {
        let config = FeatureSelectionConfig {
            max_attrs: 5,
            sample,
            ..FeatureSelectionConfig::default()
        };
        let t0 = Instant::now();
        let (selected, _) =
            select_compare_attributes(&result, pivot, &codes, &[], &candidates, &config);
        (selected, t0.elapsed().as_secs_f64() * 1_000.0)
    };

    let (full_set, full_ms) = select(None);
    let name = |i: &usize| schema.field(*i).name.clone();
    println!("Optimization 1: sampled Compare Attribute selection (40K-row result)\n");
    println!(
        "full data     : {:>8.1} ms  -> {:?}",
        full_ms,
        full_set.iter().map(name).collect::<Vec<_>>()
    );

    let widths = [10, 12, 12, 40];
    print_row(
        &["sample", "time(ms)", "agreement", "selected"].map(String::from),
        &widths,
    );
    for sample in [1_000usize, 2_000, 5_000, 10_000] {
        let (set, ms) = select(Some(sample));
        let agree = set.iter().filter(|a| full_set.contains(a)).count();
        print_row(
            &[
                format!("{sample}"),
                format!("{ms:.1}"),
                format!("{agree}/{}", full_set.len()),
                format!("{:?}", set.iter().map(name).collect::<Vec<_>>()),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper shape: a 5K-10K sample yields (almost) the same top attribute set\n\
         in tens of milliseconds instead of the full-data cost."
    );
}
