//! `bench_explore` — the multi-session exploration benchmark
//! (ROADMAP item 3).
//!
//! Boots a fresh in-process `dbex-serve` server per concurrency point,
//! loads a seeded synthetic dataset (`dbex-explore`'s generator), and
//! drives N concurrent exploratory sessions over the real wire protocol
//! with think-time pacing and abandon/reconnect churn. Reports, per
//! point:
//!
//! * **time-to-first-result** p50/p99 — session start (including
//!   connect, BUSY backoff, and the seeded first think-time) to the
//!   first successful response;
//! * per-op p50/p99/max latency, overall and split by op kind;
//! * BUSY rejections, error counts, abandon/reconnect counts;
//! * the shared stats cache's cumulative hit trajectory over the run
//!   (sessions all start near t=0, so run time ≈ session lifetime).
//!
//! Output is schema-validated `BENCH_explore.json`; `--baseline`
//! diffs against a committed report and exits non-zero when
//! time-to-first-result p50 or overall p99 regresses by more than 25%
//! on any matched point. Each point runs several waves and keeps the
//! element-wise minimum; if the waves themselves disagree by more than
//! [`NOISE_SPREAD_LIMIT`], a would-be gate failure is downgraded to a
//! loud INCONCLUSIVE (exit 0) — the host cannot resolve a 25% shift.
//! Everything is seeded: identical
//! `(seed, rows, ops)` produce identical datasets, traces, think-times,
//! and abandon points — only the measured latencies move.

use dbex_bench::{
    diff_explore_reports, median_ms, validate_explore_report, warn_if_debug, EXPLORE_SCHEMA,
};
use dbex_explore::trace::OpKind;
use dbex_explore::{run_sim, SimConfig, SimReport, SyntheticSpec, TraceConfig};
use dbex_serve::{ServeConfig, Server};
use std::time::Duration;

/// The gate threshold shared with the CAD bench: 25% regression fails.
const GATE_THRESHOLD: f64 = 0.25;

/// When this run's own waves disagree on a gated metric by more than
/// this relative spread, the measurement cannot resolve a 25% shift:
/// replicate variance exceeds the effect the gate looks for, so a
/// "regression" is indistinguishable from host noise. The gate then
/// reports INCONCLUSIVE (exit 0 with a loud warning) instead of failing
/// spuriously on a loaded machine.
const NOISE_SPREAD_LIMIT: f64 = 0.5;

struct Knobs {
    quick: bool,
    seed: u64,
    rows: usize,
    ops: usize,
    think_min_ms: u64,
    think_max_ms: u64,
    abandon_rate: f64,
    reconnect_rate: f64,
    /// Waves per point; latency metrics are the element-wise **minimum**
    /// across waves (timeit-style best-of-N). Tail percentiles of 1000
    /// threads on a small host are dominated by scheduler noise — a
    /// single wave's p99 can swing 2x between identical runs, and even
    /// the median-of-3 TTFR drifted ±28%, which would make the 25%
    /// regression gate fire on its own baseline. Noise only ever
    /// *inflates* a latency, so the best wave is the stable estimate of
    /// the code's real behaviour, and a genuine regression shifts even
    /// the best wave. The workload itself is fully seeded, so the
    /// counts are identical across waves and reported from the first.
    repeats: usize,
    /// Sessions opt into `.stream on` (the default): expensive CAD
    /// builds answer with a preview frame before the exact one, and
    /// TTFR measures the first frame. `--no-stream` measures the
    /// single-frame protocol for an A/B on the same workload.
    streamed: bool,
    session_counts: Vec<usize>,
}

impl Knobs {
    fn full() -> Knobs {
        Knobs {
            quick: false,
            seed: 42,
            rows: 6_000,
            ops: 12,
            think_min_ms: 5,
            think_max_ms: 40,
            abandon_rate: 0.08,
            reconnect_rate: 0.5,
            repeats: 3,
            streamed: true,
            session_counts: vec![64, 256, 1024],
        }
    }

    fn quick() -> Knobs {
        Knobs {
            quick: true,
            rows: 1_500,
            ops: 6,
            think_min_ms: 0,
            think_max_ms: 3,
            repeats: 1,
            session_counts: vec![8, 32],
            ..Knobs::full()
        }
    }
}

struct Point {
    sessions: usize,
    completed: usize,
    abandoned: usize,
    reconnects: u64,
    requests: usize,
    errors: u64,
    busy_rejections: u64,
    previewed_ops: usize,
    ttfr_p50_ms: f64,
    ttfr_p99_ms: f64,
    first_frame_p50_ms: f64,
    first_frame_p99_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    wall_ms: f64,
    /// `(kind name, count, p50, p99, max)` for kinds that appeared.
    ops: Vec<(&'static str, usize, f64, f64, f64)>,
    /// `(at_ms, hits, misses, evictions, hit_rate)`, downsampled.
    trajectory: Vec<(f64, u64, u64, u64, f64)>,
    /// Worst relative wave-to-wave spread `(max−min)/min` across the
    /// gated metrics — the run's own replicate-variance estimate. Not
    /// serialized; used to refuse a gate verdict the measurement cannot
    /// support (see `main`).
    wave_spread: f64,
}

/// Percentile over a sample set (nearest-rank); empty input is 0.
fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn aggregate(sessions: usize, report: &SimReport, busy_rejections: u64) -> Point {
    let all = report.latencies_ms(None);
    let first_frames = report.first_frame_ms(None);
    let ttfr: Vec<f64> = report
        .outcomes
        .iter()
        .filter_map(|o| o.ttfr.map(|d| d.as_secs_f64() * 1e3))
        .collect();
    let ops = OpKind::ALL
        .iter()
        .filter_map(|&kind| {
            let lat = report.latencies_ms(Some(kind));
            if lat.is_empty() {
                return None;
            }
            Some((
                kind.name(),
                lat.len(),
                median_ms(&lat),
                percentile_ms(&lat, 99.0),
                lat.iter().copied().fold(0.0, f64::max),
            ))
        })
        .collect();
    // Downsample the trajectory so a long run doesn't bloat the report;
    // always keep the final cumulative sample.
    let traj = &report.cache_trajectory;
    let stride = traj.len().div_ceil(12).max(1);
    let mut trajectory: Vec<(f64, u64, u64, u64, f64)> = traj
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i + 1 == traj.len())
        .map(|(_, s)| {
            let total = s.hits + s.misses;
            let rate = if total == 0 { 0.0 } else { s.hits as f64 / total as f64 };
            (s.at.as_secs_f64() * 1e3, s.hits, s.misses, s.evictions, rate)
        })
        .collect();
    trajectory.dedup_by_key(|s| s.0.to_bits());
    Point {
        sessions,
        completed: report.outcomes.iter().filter(|o| o.completed).count(),
        abandoned: report.outcomes.iter().filter(|o| o.abandoned).count(),
        reconnects: report.outcomes.iter().map(|o| u64::from(o.reconnects)).sum(),
        requests: report.requests(),
        errors: u64::from(report.errors()),
        busy_rejections,
        previewed_ops: report.previewed_ops(),
        ttfr_p50_ms: median_ms(&ttfr),
        ttfr_p99_ms: percentile_ms(&ttfr, 99.0),
        first_frame_p50_ms: median_ms(&first_frames),
        first_frame_p99_ms: percentile_ms(&first_frames, 99.0),
        p50_ms: median_ms(&all),
        p99_ms: percentile_ms(&all, 99.0),
        max_ms: all.iter().copied().fold(0.0, f64::max),
        wall_ms: report.wall.as_secs_f64() * 1e3,
        ops,
        trajectory,
        wave_spread: 0.0,
    }
}

/// Collapses one point's repeated waves into a single [`Point`]:
/// element-wise minimum for every latency metric (including per-op-kind
/// stats and the wall clock — see [`Knobs::repeats`] for why min, not
/// median), counts and the cache trajectory from the first wave (the
/// seeded workload makes them equal across waves).
fn merge_waves(mut waves: Vec<Point>) -> Point {
    let best = |f: fn(&Point) -> f64, waves: &[Point]| {
        waves.iter().map(f).fold(f64::INFINITY, f64::min)
    };
    let spread = |f: fn(&Point) -> f64, waves: &[Point]| {
        let min = waves.iter().map(f).fold(f64::INFINITY, f64::min);
        let max = waves.iter().map(f).fold(0.0, f64::max);
        if min > 0.0 { (max - min) / min } else { 0.0 }
    };
    let wave_spread = spread(|p| p.ttfr_p50_ms, &waves).max(spread(|p| p.p99_ms, &waves));
    let ttfr_p50_ms = best(|p| p.ttfr_p50_ms, &waves);
    let ttfr_p99_ms = best(|p| p.ttfr_p99_ms, &waves);
    let first_frame_p50_ms = best(|p| p.first_frame_p50_ms, &waves);
    let first_frame_p99_ms = best(|p| p.first_frame_p99_ms, &waves);
    let p50_ms = best(|p| p.p50_ms, &waves);
    let p99_ms = best(|p| p.p99_ms, &waves);
    let max_ms = best(|p| p.max_ms, &waves);
    let wall_ms = best(|p| p.wall_ms, &waves);
    let mut merged = waves.swap_remove(0);
    for op in &mut merged.ops {
        for wave in &waves {
            if let Some(other) = wave.ops.iter().find(|o| o.0 == op.0) {
                op.2 = op.2.min(other.2);
                op.3 = op.3.min(other.3);
                op.4 = op.4.min(other.4);
            }
        }
    }
    Point {
        ttfr_p50_ms,
        ttfr_p99_ms,
        first_frame_p50_ms,
        first_frame_p99_ms,
        p50_ms,
        p99_ms,
        max_ms,
        wall_ms,
        wave_spread,
        ..merged
    }
}

fn measure_wave(sessions: usize, knobs: &Knobs) -> Point {
    let spec = SyntheticSpec::exploration_default(knobs.rows, knobs.seed);
    let table = spec.generate_with_threads(0);
    let config = ServeConfig {
        // Cap at the session count: steady state always fits, but a
        // reconnect racing its abandoned connection's teardown can see
        // BUSY — exactly the churn pressure the harness measures.
        max_connections: sessions,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.preload(&spec.name, table);
    let handle = server.spawn().expect("spawn accept thread");
    let cache = handle.cache();

    let cfg = SimConfig {
        sessions,
        trace: TraceConfig {
            seed: knobs.seed,
            ops: knobs.ops,
            think_min_ms: knobs.think_min_ms,
            think_max_ms: knobs.think_max_ms,
        },
        abandon_rate: knobs.abandon_rate,
        reconnect_rate: knobs.reconnect_rate,
        streamed: knobs.streamed,
        connect_retries: 40,
        stagger: Duration::from_micros(500),
        cache_sample_every: if knobs.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(100)
        },
    };
    let report = run_sim(&handle.addr().to_string(), &spec, Some(&cache), &cfg);
    let point = aggregate(sessions, &report, handle.busy_rejections());
    handle.shutdown();
    point
}

fn measure(sessions: usize, knobs: &Knobs) -> Point {
    let waves = (0..knobs.repeats.max(1))
        .map(|_| measure_wave(sessions, knobs))
        .collect();
    merge_waves(waves)
}

fn render(knobs: &Knobs, points: &[Point]) -> String {
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"schema\": {EXPLORE_SCHEMA},\n  \"harness\": \"bench_explore\",\n  \
         \"quick\": {},\n  \"seed\": {},\n  \"rows\": {},\n  \"ops_per_session\": {},\n  \
         \"think_min_ms\": {},\n  \"think_max_ms\": {},\n  \"abandon_rate\": {},\n  \
         \"reconnect_rate\": {},\n  \"repeats\": {},\n  \"streamed\": {},\n  \"points\": [\n",
        knobs.quick,
        knobs.seed,
        knobs.rows,
        knobs.ops,
        knobs.think_min_ms,
        knobs.think_max_ms,
        knobs.abandon_rate,
        knobs.reconnect_rate,
        knobs.repeats,
        knobs.streamed,
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"completed\": {}, \"abandoned\": {}, \
             \"reconnects\": {}, \"requests\": {}, \"errors\": {}, \
             \"busy_rejections\": {}, \"previewed_ops\": {},\n     \
             \"ttfr_p50_ms\": {:.3}, \"ttfr_p99_ms\": {:.3}, \
             \"first_frame_p50_ms\": {:.3}, \"first_frame_p99_ms\": {:.3},\n     \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \
             \"wall_ms\": {:.1},\n     \"ops\": {{",
            p.sessions,
            p.completed,
            p.abandoned,
            p.reconnects,
            p.requests,
            p.errors,
            p.busy_rejections,
            p.previewed_ops,
            p.ttfr_p50_ms,
            p.ttfr_p99_ms,
            p.first_frame_p50_ms,
            p.first_frame_p99_ms,
            p.p50_ms,
            p.p99_ms,
            p.max_ms,
            p.wall_ms,
        ));
        for (j, (name, count, p50, p99, max)) in p.ops.iter().enumerate() {
            json.push_str(&format!(
                "{}\"{name}\": {{\"count\": {count}, \"p50_ms\": {p50:.3}, \
                 \"p99_ms\": {p99:.3}, \"max_ms\": {max:.3}}}",
                if j == 0 { "" } else { ", " },
            ));
        }
        json.push_str("},\n     \"cache_trajectory\": [\n");
        for (j, (at, hits, misses, evictions, rate)) in p.trajectory.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"at_ms\": {at:.1}, \"hits\": {hits}, \"misses\": {misses}, \
                 \"evictions\": {evictions}, \"hit_rate\": {rate:.3}}}{}\n",
                if j + 1 == p.trajectory.len() { "" } else { "," },
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    warn_if_debug();
    let mut knobs = Knobs::full();
    let mut out_path = "BENCH_explore.json".to_owned();
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => knobs = Knobs::quick(),
            "--no-stream" => knobs.streamed = false,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--rows" => {
                knobs.rows = args
                    .next()
                    .expect("--rows needs a value")
                    .parse()
                    .expect("--rows must be an integer")
            }
            "--seed" => {
                knobs.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--repeats" => {
                knobs.repeats = args
                    .next()
                    .expect("--repeats needs a value")
                    .parse()
                    .expect("--repeats must be an integer")
            }
            "--sessions" => {
                let list = args.next().expect("--sessions needs a comma-separated list");
                knobs.session_counts = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sessions entries must be integers"))
                    .collect();
            }
            other => {
                eprintln!(
                    "unknown flag {other}; try --quick, --no-stream, --out, --baseline, \
                     --rows, --seed, --repeats, --sessions N,N,N"
                );
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::new();
    for &sessions in &knobs.session_counts {
        eprintln!(
            "bench_explore: {sessions} session(s) x {} op(s) over {} rows (seed {}) ...",
            knobs.ops, knobs.rows, knobs.seed
        );
        let point = measure(sessions, &knobs);
        eprintln!(
            "  ttfr p50 {:.2}ms p99 {:.2}ms | first-frame p50 {:.2}ms ({} previews) | \
             op p50 {:.2}ms p99 {:.2}ms max {:.2}ms | \
             {}/{} completed, {} abandoned, {} reconnects, {} errors, {} busy | \
             cache hit-rate {:.2} | wall {:.0}ms",
            point.ttfr_p50_ms,
            point.ttfr_p99_ms,
            point.first_frame_p50_ms,
            point.previewed_ops,
            point.p50_ms,
            point.p99_ms,
            point.max_ms,
            point.completed,
            point.sessions,
            point.abandoned,
            point.reconnects,
            point.errors,
            point.busy_rejections,
            point.trajectory.last().map_or(0.0, |t| t.4),
            point.wall_ms,
        );
        if point.completed == 0 {
            eprintln!("bench_explore: no session completed at {sessions} sessions — server unhealthy");
            std::process::exit(1);
        }
        points.push(point);
    }

    let json = render(&knobs, &points);
    if let Err(e) = validate_explore_report(&json) {
        eprintln!("bench_explore: generated report fails its own schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("bench_explore: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("bench_explore: wrote {out_path}");

    if let Some(baseline_path) = baseline {
        let base = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("bench_explore: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        match diff_explore_reports(&json, &base, GATE_THRESHOLD) {
            Ok(diff) => {
                println!("bench_explore: vs baseline {baseline_path}:");
                for line in &diff.lines {
                    println!("  {line}");
                }
                if diff.gate_failed {
                    let max_spread =
                        points.iter().map(|p| p.wave_spread).fold(0.0, f64::max);
                    if max_spread > NOISE_SPREAD_LIMIT {
                        eprintln!(
                            "bench_explore: gate INCONCLUSIVE — this run's waves disagree \
                             by up to {:.0}% on the gated metrics (limit {:.0}%); the host \
                             is too noisy to resolve a 25% regression. Rerun on a quiet \
                             machine before trusting or overriding this result.",
                            max_spread * 100.0,
                            NOISE_SPREAD_LIMIT * 100.0,
                        );
                    } else {
                        eprintln!("bench_explore: REGRESSION GATE FAILED (> 25%)");
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("bench_explore: cannot diff against {baseline_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
