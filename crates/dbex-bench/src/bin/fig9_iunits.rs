//! Regenerates the paper's **Figure 9**: CAD View build time versus the
//! number of generated candidate IUnits `l` (1-15), for result sizes
//! 10K-40K. More candidates → more k-means centers → more time; the effect
//! steepens with result size (the paper's motivation for Optimization 2,
//! adaptive candidate counts).

use dbex_bench::{
    base_cars_table, five_make_view, print_row, simulations, timed_builds, warn_if_debug,
    worst_case_request,
};
use dbex_core::CadConfig;

fn main() {
    warn_if_debug();
    let sims = simulations().min(20);
    let table = base_cars_table();
    let population = five_make_view(&table);
    let sizes = [10_000usize, 20_000, 30_000, 40_000];

    println!("Figure 9: number of generated IUnits (l) vs IUnit-generation time");
    println!("({sims} simulations/point; k = 6 shown IUnits)\n");
    let widths = [6, 12, 12, 12, 12];
    let mut header = vec!["l".to_owned()];
    header.extend(sizes.iter().map(|s| format!("{}K(ms)", s / 1_000)));
    print_row(&header, &widths);

    for l in (1..=15).step_by(2) {
        let mut cells = vec![format!("{l}")];
        for &size in &sizes {
            let mut request = worst_case_request();
            // candidate_factor · k = l exactly (k = 6).
            request.config = CadConfig {
                candidate_factor: l as f64 / 6.0,
                alpha: 1.0,
                ..CadConfig::default()
            };
            let m = timed_builds(&population, size, &request, sims);
            cells.push(format!("{:.1}", m.iunit_ms));
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nPaper shape: generation time increases with l, and the slope grows with\n\
         result size — generating 15 candidates at 40K rows is the worst case."
    );
}
