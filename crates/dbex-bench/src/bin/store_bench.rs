//! `store_bench` — durability benchmark: snapshot save/open latency and the
//! value of warm restart.
//!
//! A child process (`--prepare`) loads the cars table, builds a CAD View
//! (populating the stats cache), and saves a snapshot; the process boundary
//! matters because table-id adoption — the gate for rehydrating persisted
//! cluster solutions — only engages when the snapshot comes from another
//! process, exactly as in a real server restart. The parent then measures:
//!
//! * `open_ms` — decoding + digest-verifying the snapshot,
//! * `save_ms` / `save_reuse_ms` — a cold save vs. one where every segment
//!   is content-addressed-reused and only the manifest is rewritten,
//! * `cold_build_ms` vs. `warm_first_build_ms` — the first CAD build after
//!   restart without and with the rehydrated cluster solutions,
//!
//! and writes `BENCH_store.json`:
//!
//! ```text
//! cargo run --release -p dbex-bench --bin store_bench             # full (40K rows)
//! cargo run --release -p dbex-bench --bin store_bench -- --quick  # CI smoke (4K)
//! ```

use dbex_bench::{median_ms, validate_store_report, warn_if_debug, STORE_SCHEMA};
use dbex_query::Session;
use dbex_store::{open, save, OpenReport, RealVfs};
use dbex_table::Table;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 7;
const RUNS: usize = 5;

const VIEW_SQL: &str =
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbex-store-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Child step: build the view and save tables + cluster solutions.
fn run_prepare(dir: &Path, rows: usize) -> i32 {
    let mut session = Session::new();
    session.register_table("cars", dbex_data::UsedCarsGenerator::new(SEED).generate(rows));
    session.execute(VIEW_SQL).expect("CAD build in the prepare child");
    let tables = session.tables_snapshot();
    let report =
        save(&RealVfs, dir, &tables, Some(session.stats_cache())).expect("prepare save");
    assert!(report.cluster_entries > 0, "prepare child cached no cluster solutions");
    0
}

fn session_with(report: &OpenReport) -> Session {
    let mut session = Session::new();
    for (name, table) in &report.tables {
        session.register_shared(name.clone(), Arc::clone(table));
    }
    session
}

/// Times one `EXPLAIN ANALYZE` CAD build and pulls the reuse counter out of
/// its report.
fn timed_build(session: &mut Session) -> (f64, u64) {
    let started = Instant::now();
    let out = session
        .execute(&format!("EXPLAIN ANALYZE {VIEW_SQL}"))
        .expect("EXPLAIN ANALYZE build");
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    let render = out.render();
    let reused = render
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("cluster reuse: "))
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .expect("EXPLAIN ANALYZE output has a cluster reuse line");
    (elapsed, reused)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut quick = false;
    let mut rows = 40_000usize;
    let mut out_path = "BENCH_store.json".to_owned();
    let mut prepare: Option<(String, usize)> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                quick = true;
                rows = 4_000;
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--prepare" => {
                let dir = args.next().expect("--prepare needs a directory");
                let rows = args
                    .next()
                    .expect("--prepare needs a row count")
                    .parse()
                    .expect("--prepare rows must be an integer");
                prepare = Some((dir, rows));
            }
            other => {
                eprintln!("unknown flag {other}; try --quick, --out");
                std::process::exit(2);
            }
        }
    }
    if let Some((dir, rows)) = prepare {
        std::process::exit(run_prepare(Path::new(&dir), rows));
    }

    warn_if_debug();
    let dir = scratch("main");
    let exe = std::env::current_exe().expect("current_exe");
    eprintln!("store_bench: preparing a {rows}-row snapshot in a child process ...");
    let status = std::process::Command::new(&exe)
        .arg("--prepare")
        .arg(&dir)
        .arg(rows.to_string())
        .status()
        .expect("spawn the prepare child");
    assert!(status.success(), "prepare child failed: {status}");

    // Open latency (and the report the build comparison runs from). Only
    // the FIRST open can adopt the persisted table ids — it advances this
    // process's id counter past them — so that is the report to keep; the
    // later runs still decode and digest-verify the same bytes.
    let mut open_samples = Vec::with_capacity(RUNS);
    let mut report = None;
    for _ in 0..RUNS {
        let started = Instant::now();
        let r = open(&RealVfs, &dir).expect("open snapshot");
        open_samples.push(started.elapsed().as_secs_f64() * 1e3);
        report.get_or_insert(r);
    }
    let report = report.expect("at least one open run");
    assert!(report.all_ids_adopted, "cross-process open must adopt the persisted ids");

    // First post-restart build: cold cache vs. rehydrated cache.
    let mut cold = session_with(&report);
    let (cold_build_ms, cold_reused) = timed_build(&mut cold);
    assert_eq!(cold_reused, 0, "a cold cache cannot serve partitions");
    let mut warm = session_with(&report);
    let rehydrated = report.rehydrate_into(warm.stats_cache());
    assert!(rehydrated > 0, "no cluster solutions rehydrated");
    let (warm_first_build_ms, warm_reused) = timed_build(&mut warm);
    assert!(warm_reused > 0, "warm restart served no partitions from cache");

    // Save latency: cold (every segment written) vs. reuse (manifest only).
    let tables: Vec<(String, Arc<Table>)> = report.tables.clone();
    let mut save_samples = Vec::with_capacity(RUNS);
    let mut reuse_samples = Vec::with_capacity(RUNS);
    let mut bytes_written = 0u64;
    for i in 0..RUNS {
        let fresh = scratch(&format!("save-{i}"));
        let started = Instant::now();
        let r = save(&RealVfs, &fresh, &tables, None).expect("cold save");
        save_samples.push(started.elapsed().as_secs_f64() * 1e3);
        bytes_written = r.bytes_written;
        let started = Instant::now();
        let r = save(&RealVfs, &fresh, &tables, None).expect("reuse save");
        reuse_samples.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r.segments_written, 0, "unchanged catalog must reuse every segment");
        let _ = std::fs::remove_dir_all(&fresh);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let save_ms = median_ms(&save_samples);
    let save_reuse_ms = median_ms(&reuse_samples);
    let open_ms = median_ms(&open_samples);
    eprintln!(
        "store_bench: save {save_ms:.2}ms (reuse {save_reuse_ms:.2}ms, {bytes_written} bytes), \
         open {open_ms:.2}ms"
    );
    eprintln!(
        "store_bench: first build after restart: cold {cold_build_ms:.2}ms, \
         warm {warm_first_build_ms:.2}ms ({warm_reused} partition(s) from cache)"
    );

    let json = format!(
        "{{\n  \"schema\": {STORE_SCHEMA},\n  \"harness\": \"store_bench\",\n  \
         \"quick\": {quick},\n  \"rows\": {rows},\n  \"runs\": {RUNS},\n  \
         \"save_ms\": {save_ms:.3},\n  \"save_reuse_ms\": {save_reuse_ms:.3},\n  \
         \"open_ms\": {open_ms:.3},\n  \"snapshot_bytes\": {bytes_written},\n  \
         \"cold_build_ms\": {cold_build_ms:.3},\n  \
         \"warm_first_build_ms\": {warm_first_build_ms:.3},\n  \
         \"rehydrated_solutions\": {rehydrated},\n  \
         \"partitions_reused\": {warm_reused}\n}}\n"
    );
    if let Err(e) = validate_store_report(&json) {
        eprintln!("store_bench: generated report fails its own schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("store_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("store_bench: wrote {out_path}");
}
