//! Regenerates the paper's **combined-optimizations** headline
//! (Section 6.3): with sampled feature selection, sampled clustering and
//! adaptive candidate counts, a CAD View over a 40K-row result builds in
//! well under the ~4.5 s worst case — the paper reports < 500 ms.

use dbex_bench::{
    base_cars_table, five_make_view, print_row, simulations, timed_builds, warn_if_debug,
    worst_case_request, FIVE_MAKES,
};
use dbex_core::{CadConfig, CadRequest};

fn main() {
    warn_if_debug();
    let sims = simulations().min(20);
    let table = base_cars_table();
    let population = five_make_view(&table);

    let optimized = CadRequest::new("Make")
        .with_pivot_values(FIVE_MAKES.to_vec())
        .with_iunits(6)
        .with_max_compare_attrs(5)
        .with_config(CadConfig::optimized());

    println!("Combined optimizations vs worst case ({sims} simulations/point)\n");
    let widths = [8, 16, 16, 10];
    print_row(
        &["rows", "worst-case(ms)", "optimized(ms)", "speedup"].map(String::from),
        &widths,
    );
    for size in [10_000usize, 20_000, 30_000, 40_000] {
        let worst = timed_builds(&population, size, &worst_case_request(), sims);
        let opt = timed_builds(&population, size, &optimized, sims);
        print_row(
            &[
                format!("{size}"),
                format!("{:.1}", worst.total_ms()),
                format!("{:.1}", opt.total_ms()),
                format!("{:.1}x", worst.total_ms() / opt.total_ms().max(1e-9)),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper claim: combining sampling (feature selection + clustering), adaptive\n\
         candidate counts and fewer Compare Attributes brings the 40K-row CAD View\n\
         under ~500 ms."
    );
}
