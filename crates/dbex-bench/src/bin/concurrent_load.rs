//! `concurrent_load` — serving benchmark: request latency under 1 / 8 /
//! 32 concurrent clients.
//!
//! Boots one in-process wire server per client count (so each point
//! starts from a cold shared cache), has every client replay the same
//! exploration round — SELECT, CREATE CADVIEW, REORDER, HIGHLIGHT —
//! `--rounds` times, and reports per-request latency percentiles plus
//! shared-cache effectiveness to `BENCH_serve.json`:
//!
//! ```text
//! cargo run --release -p dbex-bench --bin concurrent_load             # full
//! cargo run --release -p dbex-bench --bin concurrent_load -- --quick  # CI smoke
//! cargo run --release -p dbex-bench --bin concurrent_load -- --out target/serve.json
//! ```
//!
//! The interesting number is the p99 *ratio* between 1 and 32 clients:
//! sessions share one `StatsCache`, so past the first CAD build most of
//! each request is cache lookups and rendering, and the server should
//! degrade far slower than 32x.

use dbex_bench::{median_ms, validate_serve_report, warn_if_debug, SERVE_SCHEMA};
use dbex_data::UsedCarsGenerator;
use dbex_serve::{Client, ServeConfig, Server};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const CLIENT_COUNTS: &[usize] = &[1, 8, 32];

/// One exploration round, identical across clients so the shared stats
/// cache engages (which is the scenario being measured).
const ROUND: &[&str] = &[
    "SELECT Make, Model, Price FROM cars WHERE BodyType = SUV LIMIT 3",
    "CREATE CADVIEW w AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2",
    "REORDER ROWS IN w ORDER BY SIMILARITY(Jeep) DESC",
    "HIGHLIGHT SIMILAR IUNITS IN w WHERE SIMILARITY(Ford, 1) > 0.5",
];

struct Point {
    clients: usize,
    requests: usize,
    errors: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    busy_rejections: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Percentile over a sample set (nearest-rank); empty input is 0.
fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Returns the point plus the server's resolved worker-pool size (the
/// same for every point; reported once at the top of the report).
fn measure(clients: usize, rows: usize, rounds: usize) -> (Point, usize) {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port");
    server.preload("cars", UsedCarsGenerator::new(7).generate(rows));
    let cache = server.cache();
    let handle = server.spawn().expect("spawn server threads");
    let addr = handle.addr();

    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let latencies = Arc::clone(&latencies);
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        *errors.lock().unwrap() += ROUND.len() * rounds;
                        return;
                    }
                };
                let mut local = Vec::with_capacity(ROUND.len() * rounds);
                for _ in 0..rounds {
                    for request in ROUND {
                        let started = Instant::now();
                        match client.request(request) {
                            Ok(resp) if resp.ok => {
                                local.push(started.elapsed().as_secs_f64() * 1e3);
                            }
                            _ => *errors.lock().unwrap() += 1,
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    let samples = latencies.lock().unwrap().clone();
    let stats = cache.stats();
    let point = Point {
        clients,
        requests: samples.len(),
        errors: *errors.lock().unwrap(),
        p50_ms: median_ms(&samples),
        p99_ms: percentile_ms(&samples, 99.0),
        max_ms: samples.iter().copied().fold(0.0, f64::max),
        busy_rejections: handle.busy_rejections(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    };
    let workers = handle.workers();
    handle.shutdown();
    (point, workers)
}

fn main() {
    warn_if_debug();
    let mut quick = false;
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut rounds = 5usize;
    let mut rows = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                quick = true;
                rounds = 2;
                rows = 2_000;
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--rounds" => {
                rounds = args
                    .next()
                    .expect("--rounds needs a value")
                    .parse()
                    .expect("--rounds must be an integer")
            }
            "--rows" => {
                rows = args
                    .next()
                    .expect("--rows needs a value")
                    .parse()
                    .expect("--rows must be an integer")
            }
            other => {
                eprintln!("unknown flag {other}; try --quick, --out, --rounds, --rows");
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::new();
    let mut workers = 0usize;
    for &clients in CLIENT_COUNTS {
        eprintln!(
            "concurrent_load: {clients} client(s) x {rounds} round(s) over {rows} rows ..."
        );
        let (point, w) = measure(clients, rows, rounds);
        workers = w;
        eprintln!(
            "  p50 {:.2}ms  p99 {:.2}ms  max {:.2}ms  ({} requests, {} errors, cache {}/{} hit/miss)",
            point.p50_ms,
            point.p99_ms,
            point.max_ms,
            point.requests,
            point.errors,
            point.cache_hits,
            point.cache_misses
        );
        points.push(point);
    }

    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"schema\": {SERVE_SCHEMA},\n  \"harness\": \"concurrent_load\",\n  \
         \"quick\": {quick},\n  \"rows\": {rows},\n  \"rounds\": {rounds},\n  \
         \"requests_per_round\": {},\n  \"workers\": {workers},\n  \"points\": [\n",
        ROUND.len()
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"errors\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \
             \"busy_rejections\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
            p.clients,
            p.requests,
            p.errors,
            p.p50_ms,
            p.p99_ms,
            p.max_ms,
            p.busy_rejections,
            p.cache_hits,
            p.cache_misses,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = validate_serve_report(&json) {
        eprintln!("concurrent_load: generated report fails its own schema: {e}");
        std::process::exit(1);
    }
    let total_errors: usize = points.iter().map(|p| p.errors).sum();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("concurrent_load: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("concurrent_load: wrote {out_path}");
    if total_errors > 0 {
        eprintln!("concurrent_load: {total_errors} request(s) failed");
        std::process::exit(1);
    }
}
