//! Ablation: **k-means++** vs **random seeding** (DESIGN.md ablation 2).
//!
//! Clusters real pivot partitions of the used-car data (the Ford SUV
//! partition one-hot encoded over the Table-1 Compare Attributes) and
//! compares final inertia and iterations across seeds.

use dbex_bench::{base_cars_table, five_make_view};
use dbex_cluster::{kmeans, KMeansConfig, OneHotSpace};
use dbex_stats::discretize::{CodedColumn, CodedMatrix};
use dbex_stats::histogram::BinningStrategy;

fn main() {
    let table = base_cars_table();
    let population = five_make_view(&table).sample(20_000);
    let schema = table.schema();
    let attrs: Vec<usize> = ["Model", "Engine", "Price", "Drivetrain", "Year"]
        .iter()
        .map(|n| schema.index_of(n).expect("attribute exists"))
        .collect();
    let matrix = CodedMatrix::encode(&population, &attrs, 6, BinningStrategy::EquiDepth);
    let coded: Vec<&CodedColumn> = matrix.columns.iter().collect();
    let space = OneHotSpace::from_columns(&coded);

    let make_col = schema.index_of("Make").expect("Make exists");
    let pivot_column = population.table().column(make_col);
    // Positions of the first Make's partition.
    let first_code = population
        .row_ids()
        .iter()
        .find_map(|&r| pivot_column.get_code(r as usize))
        .expect("non-empty");
    let members: Vec<usize> = population
        .row_ids()
        .iter()
        .enumerate()
        .filter(|(_, &r)| pivot_column.get_code(r as usize) == Some(first_code))
        .map(|(pos, _)| pos)
        .collect();
    let points = space.encode_positions(&coded, &members);
    println!(
        "Ablation: k-means seeding on a real pivot partition ({} tuples, dim {})\n",
        points.len(),
        space.dim()
    );
    println!("{:>10}  {:>14}  {:>14}  {:>6}", "seed", "++inertia", "rand-inertia", "worse");

    let mut pp_total = 0.0;
    let mut rand_total = 0.0;
    for seed in 0..10u64 {
        let pp = kmeans(
            &points,
            space.dim(),
            &KMeansConfig {
                k: 9,
                seed,
                plus_plus: true,
                ..Default::default()
            },
        )
        .expect("k-means on bench data");
        let rnd = kmeans(
            &points,
            space.dim(),
            &KMeansConfig {
                k: 9,
                seed,
                plus_plus: false,
                ..Default::default()
            },
        )
        .expect("k-means on bench data");
        pp_total += pp.inertia;
        rand_total += rnd.inertia;
        println!(
            "{:>10}  {:>14.1}  {:>14.1}  {:>6}",
            seed,
            pp.inertia,
            rnd.inertia,
            if rnd.inertia > pp.inertia * 1.001 { "yes" } else { "~" }
        );
    }
    println!(
        "\nmean inertia: k-means++ {:.1} vs random {:.1} ({:+.1}%)",
        pp_total / 10.0,
        rand_total / 10.0,
        100.0 * (rand_total - pp_total) / pp_total.max(1e-9)
    );
}
