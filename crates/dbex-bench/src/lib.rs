//! # dbex-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 6). Each experiment is a binary:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — the sample CAD View for five Makes |
//! | `user_study` | Figures 2-7 + the §6.2 mixed-model statistics |
//! | `fig8_worst_case` | Figure 8 — worst-case build time vs result size |
//! | `fig9_iunits` | Figure 9 — generated IUnits `l` vs time |
//! | `fig10_compare_attrs` | Figure 10 — Compare Attribute count vs time |
//! | `opt_sampling` | Optimization 1 — sampled feature selection |
//! | `opt_combined` | Optimizations 1-3 combined (40K in < 500 ms) |
//! | `ablation_topk` | div-astar vs greedy diversified top-k |
//! | `ablation_seeding` | k-means++ vs random seeding |
//! | `ablation_binning` | equi-width vs equi-depth vs V-optimal binning |
//!
//! Timing experiments should be run with `--release`; each binary honors a
//! `SIMS` environment variable to change the number of simulations per
//! point (the paper uses 50).

use dbex_core::{CadConfig, CadRequest, CadTimings};
use dbex_data::UsedCarsGenerator;
use dbex_table::{Predicate, Table, View};
use std::time::Duration;

/// The five Makes of the paper's running example.
pub const FIVE_MAKES: [&str; 5] = ["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"];

/// Number of simulations per data point (`SIMS` env var; paper uses 50).
pub fn simulations() -> usize {
    std::env::var("SIMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
}

/// Generates the benchmark base table: used-car listings restricted to the
/// five example Makes, large enough to draw 40K-row result sets from.
pub fn base_cars_table() -> Table {
    // 90K raw listings leave ≈40K+ rows across the five Makes.
    UsedCarsGenerator::new(0xD_BE).generate(90_000)
}

/// The five-Make restriction of `table` (the population result sets are
/// sampled from, as in Section 6.3's simulations).
pub fn five_make_view(table: &Table) -> View<'_> {
    table
        .filter(&Predicate::in_list(
            "Make",
            FIVE_MAKES.iter().map(|&m| m.into()).collect(),
        ))
        .expect("Make attribute exists")
}

/// The paper's worst-case pipeline configuration (Section 6.3, Figure 8):
/// no sampling, no adaptivity, all 10 non-pivot attributes admitted
/// (`alpha = 1` disables the significance filter), `l = 15` candidates for
/// `k = 6` shown IUnits.
pub fn worst_case_request() -> CadRequest {
    CadRequest::new("Make")
        .with_pivot_values(FIVE_MAKES.to_vec())
        .with_iunits(6)
        .with_max_compare_attrs(10)
        .with_config(CadConfig {
            alpha: 1.0,
            candidate_factor: 2.5, // l = ceil(2.5 · 6) = 15
            ..CadConfig::default()
        })
}

/// Aggregated stage timings over repeated builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanTimings {
    /// Mean Compare Attribute selection time.
    pub compare_ms: f64,
    /// Mean IUnit generation time.
    pub iunit_ms: f64,
    /// Mean time of all remaining steps.
    pub others_ms: f64,
}

impl MeanTimings {
    /// Mean total time.
    pub fn total_ms(&self) -> f64 {
        self.compare_ms + self.iunit_ms + self.others_ms
    }

    /// Accumulates one build's timings.
    pub fn add(&mut self, t: &CadTimings, n: usize) {
        let ms = |d: Duration| d.as_secs_f64() * 1_000.0 / n as f64;
        self.compare_ms += ms(t.compare_attrs);
        self.iunit_ms += ms(t.iunit_generation);
        self.others_ms += ms(t.others);
    }
}

/// Runs `sims` CAD builds over distinct deterministic subsamples of
/// `population` at `size` rows, returning mean stage timings.
pub fn timed_builds(
    population: &View<'_>,
    size: usize,
    request: &CadRequest,
    sims: usize,
) -> MeanTimings {
    let mut mean = MeanTimings::default();
    for sim in 0..sims {
        // Vary the subsample per simulation by rotating the population.
        let rotated = rotate(population, sim * 7_919);
        let result = rotated.sample(size);
        let cad = dbex_core::build_cad_view(&result, request).expect("build succeeds");
        mean.add(&cad.timings, sims);
    }
    mean
}

/// Rotates a view's row order (deterministic per-simulation variation).
fn rotate<'a>(view: &View<'a>, by: usize) -> View<'a> {
    let ids = view.row_ids();
    if ids.is_empty() {
        return view.clone();
    }
    let k = by % ids.len();
    let mut rows = Vec::with_capacity(ids.len());
    rows.extend_from_slice(&ids[k..]);
    rows.extend_from_slice(&ids[..k]);
    View::from_rows(view.table(), rows)
}

/// Median of a sample set (for robust bench aggregation). Even-length
/// inputs average the two middle values; empty input is 0.
pub fn median_ms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Schema version of the machine-readable bench report
/// (`BENCH_cad.json`). Bump whenever the report shape changes
/// incompatibly; `validate_report` rejects any other version.
///
/// History: schema 1 was the original unversioned report (no `"schema"`
/// field); schema 2 adds the version field and a per-workload
/// `"span_breakdown"` (the traced span tree of one sequential build);
/// schema 3 adds cold/warm measurement per point (`cold_median_ms`,
/// `warm_median_ms`, `cold_runs_ms`, `warm_runs_ms` — warm builds run
/// against a primed [`dbex_core::StatsCache`]), a per-workload
/// `"warm_cache"` object (cache hits/misses and partitions served from
/// the cluster-reuse cache) and `"span_medians_ms"` (per-span medians
/// over repeated traced builds, the values the `--baseline` diff
/// compares). `median_ms` is retained as an alias of `cold_median_ms`
/// so schema-2 baselines stay diffable. Schema 4 adds kernel-dispatch
/// provenance — top-level `"cpu_features"` (the detected ISA feature
/// string) and `"kernel_dispatch"` (which SIMD family the process
/// routed the packed kernels to) — plus a per-workload
/// `"kernel_speedups"` object (span-median speedup of the kernel-heavy
/// spans at the max measured pool size over 1 thread), and tightens
/// validation: `validate_report` now rejects unknown fields anywhere in
/// the report, not just unknown schema numbers.
pub const BENCH_SCHEMA: u64 = 4;

/// Validates a bench report: well-formed JSON carrying
/// `"schema": `[`BENCH_SCHEMA`] and **only** the fields that schema
/// defines. Reports without a schema field (pre-versioning), reports
/// from a different harness version, and reports carrying unknown
/// fields (a stale generator, or hand edits) are rejected with an
/// actionable message rather than silently consumed.
pub fn validate_report(text: &str) -> Result<(), String> {
    validate_json(text)?;
    let Some(found) = extract_schema(text) else {
        return Err(format!(
            "report has no \"schema\" field (pre-versioning output?); \
             this validator understands schema {BENCH_SCHEMA} — regenerate with bench_suite"
        ));
    };
    if found != BENCH_SCHEMA {
        return Err(format!(
            "unknown report schema {found}; this validator understands schema \
             {BENCH_SCHEMA} — regenerate with bench_suite"
        ));
    }
    let parsed = Json::parse(text)?;
    validate_fields(&parsed)
}

/// Field whitelists of the schema-[`BENCH_SCHEMA`] report shape. Objects
/// with caller-defined keys (`span_medians_ms`, `kernel_speedups`, span
/// `counters`) are exempt from the walk.
const TOP_FIELDS: &[&str] = &[
    "bench",
    "schema",
    "quick",
    "runs_per_point",
    "hardware_threads",
    "auto_threads",
    "cpu_features",
    "kernel_dispatch",
    "workloads",
];
const WORKLOAD_FIELDS: &[&str] = &[
    "name",
    "rows",
    "points",
    "speedup_at_max_threads",
    "warm_cache",
    "span_medians_ms",
    "kernel_speedups",
    "span_breakdown",
];
const POINT_FIELDS: &[&str] = &[
    "threads",
    "median_ms",
    "cold_median_ms",
    "warm_median_ms",
    "cold_runs_ms",
    "warm_runs_ms",
    "output_matches_sequential",
];
const WARM_CACHE_FIELDS: &[&str] = &["hits", "misses", "partitions_reused"];
const SPAN_FIELDS: &[&str] = &["name", "calls", "duration_ms", "counters", "children"];

fn check_keys(obj: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    if let Json::Obj(fields) = obj {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field \"{key}\" in {ctx}; schema {BENCH_SCHEMA} allows \
                     {allowed:?} — regenerate with bench_suite"
                ));
            }
        }
    }
    Ok(())
}

/// Walks the report against the schema-4 field whitelists.
fn validate_fields(report: &Json) -> Result<(), String> {
    check_keys(report, TOP_FIELDS, "report")?;
    let empty: [Json; 0] = [];
    for workload in report.get("workloads").and_then(Json::as_array).unwrap_or(&empty) {
        let name = workload.get("name").and_then(Json::as_str).unwrap_or("?");
        check_keys(workload, WORKLOAD_FIELDS, &format!("workload \"{name}\""))?;
        for point in workload.get("points").and_then(Json::as_array).unwrap_or(&empty) {
            check_keys(point, POINT_FIELDS, &format!("a point of workload \"{name}\""))?;
        }
        if let Some(cache) = workload.get("warm_cache") {
            check_keys(
                cache,
                WARM_CACHE_FIELDS,
                &format!("warm_cache of workload \"{name}\""),
            )?;
        }
        if let Some(tree) = workload.get("span_breakdown") {
            validate_span_nodes(tree, name)?;
        }
    }
    Ok(())
}

fn validate_span_nodes(tree: &Json, workload: &str) -> Result<(), String> {
    let empty: [Json; 0] = [];
    for node in tree.as_array().unwrap_or(&empty) {
        check_keys(
            node,
            SPAN_FIELDS,
            &format!("a span node of workload \"{workload}\""),
        )?;
        if let Some(children) = node.get("children") {
            validate_span_nodes(children, workload)?;
        }
    }
    Ok(())
}

/// Extracts the integer value of a top-level-looking `"schema"` key.
/// Good enough for reports bench_suite itself writes (the key appears
/// exactly once); returns `None` when absent or non-numeric.
fn extract_schema(text: &str) -> Option<u64> {
    let key = "\"schema\"";
    let at = text.find(key)?;
    let rest = text[at + key.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Minimal JSON well-formedness check for the machine-readable bench
/// output (`BENCH_cad.json`): one value, full-input consumption, no
/// dependency on a JSON crate. Returns a position-tagged message on the
/// first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2, // escape; next byte consumed blindly
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

/// A parsed JSON value — just enough structure for bench-report diffing
/// (no crate dependency; the reports are small and written by this
/// harness or its predecessors).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64` (report numbers are small).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; the whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value_tree(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_value_tree(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut fields = Vec::new();
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string_tree(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                let value = parse_value_tree(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut items = Vec::new();
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value_tree(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string_tree(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            parse_number(b, pos)?;
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("unrepresentable number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_string_tree(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned());
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(hex.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            _ => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_owned())
}

/// Flattens a span tree (the `span_breakdown` array of `to_json` span
/// objects) into total `duration_ms` per span name, summed over every
/// occurrence, in first-seen order.
pub fn flatten_spans(tree: &Json) -> Vec<(String, f64)> {
    fn walk(nodes: &[Json], out: &mut Vec<(String, f64)>) {
        for node in nodes {
            let name = node.get("name").and_then(Json::as_str).unwrap_or("");
            let ms = node.get("duration_ms").and_then(Json::as_f64).unwrap_or(0.0);
            match out.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += ms,
                None => out.push((name.to_owned(), ms)),
            }
            if let Some(children) = node.get("children").and_then(Json::as_array) {
                walk(children, out);
            }
        }
    }
    let mut out = Vec::new();
    if let Some(roots) = tree.as_array() {
        walk(roots, &mut out);
    }
    out
}

// --- sibling report schemas -------------------------------------------------
//
// The suite writes four machine-readable reports; each has its own
// schema number and whitelist so a stale generator (or hand edit) is
// rejected at the same place regardless of which harness produced it:
//
// | file | harness | validator |
// |---|---|---|
// | `BENCH_cad.json` | `bench_suite` | [`validate_report`] |
// | `BENCH_serve.json` | `concurrent_load` | [`validate_serve_report`] |
// | `BENCH_store.json` | `store_bench` | [`validate_store_report`] |
// | `BENCH_explore.json` | `bench_explore` | [`validate_explore_report`] |

/// Schema version of `BENCH_serve.json`; bump on incompatible changes.
/// Schema 2 (evented server): adds the top-level `workers` field — the
/// resolved worker-pool size the server executed requests with.
pub const SERVE_SCHEMA: u64 = 2;
/// Schema version of `BENCH_store.json`; bump on incompatible changes.
pub const STORE_SCHEMA: u64 = 1;
/// Schema version of `BENCH_explore.json`; bump on incompatible changes.
/// Schema 2 (streamed previews): adds the top-level `streamed` flag and,
/// per point, `first_frame_p50_ms` / `first_frame_p99_ms` (send to first
/// response frame, preview or final) and `previewed_ops` (ops that
/// received a preview frame before the exact answer). `ttfr_*` now means
/// time to the first *frame* of the first successful response.
/// Schema 3 (suggest): the per-point `ops` object gains a `"suggest"`
/// kind — keystroke-paced `SUGGEST NEXT` / `SUGGEST COMPLETE` requests
/// issued while the simulated user composes the next statement. Its
/// p50 joins the baseline gate and must additionally stay under the
/// absolute [`SUGGEST_P50_BOUND_MS`] interactivity bound.
pub const EXPLORE_SCHEMA: u64 = 3;

const SERVE_TOP_FIELDS: &[&str] = &[
    "schema",
    "harness",
    "quick",
    "rows",
    "rounds",
    "requests_per_round",
    "workers",
    "points",
];
const SERVE_POINT_FIELDS: &[&str] = &[
    "clients",
    "requests",
    "errors",
    "p50_ms",
    "p99_ms",
    "max_ms",
    "busy_rejections",
    "cache_hits",
    "cache_misses",
];
const STORE_TOP_FIELDS: &[&str] = &[
    "schema",
    "harness",
    "quick",
    "rows",
    "runs",
    "save_ms",
    "save_reuse_ms",
    "open_ms",
    "snapshot_bytes",
    "cold_build_ms",
    "warm_first_build_ms",
    "rehydrated_solutions",
    "partitions_reused",
];
const EXPLORE_TOP_FIELDS: &[&str] = &[
    "schema",
    "harness",
    "quick",
    "seed",
    "rows",
    "ops_per_session",
    "think_min_ms",
    "think_max_ms",
    "abandon_rate",
    "reconnect_rate",
    "repeats",
    "streamed",
    "points",
];
const EXPLORE_POINT_FIELDS: &[&str] = &[
    "sessions",
    "completed",
    "abandoned",
    "reconnects",
    "requests",
    "errors",
    "busy_rejections",
    "previewed_ops",
    "ttfr_p50_ms",
    "ttfr_p99_ms",
    "first_frame_p50_ms",
    "first_frame_p99_ms",
    "p50_ms",
    "p99_ms",
    "max_ms",
    "wall_ms",
    "ops",
    "cache_trajectory",
];
const EXPLORE_OP_KINDS: &[&str] = &["drill", "cad", "pivot", "highlight", "reorder", "suggest"];
const EXPLORE_OP_FIELDS: &[&str] = &["count", "p50_ms", "p99_ms", "max_ms"];
const EXPLORE_TRAJ_FIELDS: &[&str] = &["at_ms", "hits", "misses", "evictions", "hit_rate"];

/// Shared preamble of the sibling-report validators: well-formed JSON,
/// the expected `"schema"` number, and the expected `"harness"` tag.
fn validate_sibling(text: &str, schema: u64, harness: &str) -> Result<Json, String> {
    validate_json(text)?;
    let Some(found) = extract_schema(text) else {
        return Err(format!(
            "report has no \"schema\" field; this validator understands \
             schema {schema} — regenerate with {harness}"
        ));
    };
    if found != schema {
        return Err(format!(
            "unknown report schema {found}; this validator understands schema \
             {schema} — regenerate with {harness}"
        ));
    }
    let parsed = Json::parse(text)?;
    match parsed.get("harness").and_then(Json::as_str) {
        Some(h) if h == harness => Ok(parsed),
        Some(h) => Err(format!(
            "report was produced by harness \"{h}\", expected \"{harness}\""
        )),
        None => Err(format!(
            "report has no \"harness\" field — regenerate with {harness}"
        )),
    }
}

/// Validates `BENCH_serve.json` (schema [`SERVE_SCHEMA`]): well-formed,
/// version-matched, and carrying **only** the fields the schema defines.
pub fn validate_serve_report(text: &str) -> Result<(), String> {
    let parsed = validate_sibling(text, SERVE_SCHEMA, "concurrent_load")?;
    check_keys(&parsed, SERVE_TOP_FIELDS, "serve report")?;
    let empty: [Json; 0] = [];
    for point in parsed.get("points").and_then(Json::as_array).unwrap_or(&empty) {
        check_keys(point, SERVE_POINT_FIELDS, "a serve report point")?;
    }
    Ok(())
}

/// Validates `BENCH_store.json` (schema [`STORE_SCHEMA`]). The store
/// report is flat, so this is the preamble plus the top-level whitelist.
pub fn validate_store_report(text: &str) -> Result<(), String> {
    let parsed = validate_sibling(text, STORE_SCHEMA, "store_bench")?;
    check_keys(&parsed, STORE_TOP_FIELDS, "store report")
}

/// Validates `BENCH_explore.json` (schema [`EXPLORE_SCHEMA`]): field
/// whitelists at every level, including the per-op-kind latency objects
/// (whose keys must be known op kinds) and the cache trajectory.
pub fn validate_explore_report(text: &str) -> Result<(), String> {
    let parsed = validate_sibling(text, EXPLORE_SCHEMA, "bench_explore")?;
    check_keys(&parsed, EXPLORE_TOP_FIELDS, "explore report")?;
    let empty: [Json; 0] = [];
    for point in parsed.get("points").and_then(Json::as_array).unwrap_or(&empty) {
        let sessions = point.get("sessions").and_then(Json::as_f64).unwrap_or(0.0);
        let ctx = format!("the {sessions}-session point");
        check_keys(point, EXPLORE_POINT_FIELDS, &ctx)?;
        if let Some(Json::Obj(ops)) = point.get("ops") {
            for (kind, stats) in ops {
                if !EXPLORE_OP_KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "unknown op kind \"{kind}\" in {ctx}; schema {EXPLORE_SCHEMA} \
                         allows {EXPLORE_OP_KINDS:?} — regenerate with bench_explore"
                    ));
                }
                check_keys(stats, EXPLORE_OP_FIELDS, &format!("op \"{kind}\" of {ctx}"))?;
            }
        }
        for sample in point
            .get("cache_trajectory")
            .and_then(Json::as_array)
            .unwrap_or(&empty)
        {
            check_keys(
                sample,
                EXPLORE_TRAJ_FIELDS,
                &format!("a cache_trajectory sample of {ctx}"),
            )?;
        }
    }
    Ok(())
}

/// Absolute noise floor for the explore gate, in milliseconds: a
/// regression must exceed the relative threshold **and** this floor to
/// fail. At 64 sessions the overall p99 sits at a few milliseconds,
/// where one scheduler preemption is ±40% — a ratio-only gate fires on
/// its own baseline. 5ms is far below anything a user perceives and far
/// above per-op timing jitter.
pub const EXPLORE_NOISE_FLOOR_MS: f64 = 5.0;

/// Absolute interactivity bound on the suggest op's p50, in
/// milliseconds. Suggestions fire on keystrokes; past ~10ms they lag
/// the typist instead of assisting. Unlike the relative gate this is
/// checked against the *current* run alone, so a slow baseline can
/// never grandfather in a sluggish suggester.
pub const SUGGEST_P50_BOUND_MS: f64 = 10.0;

/// Compares a fresh `BENCH_explore.json` against a baseline. Points are
/// matched by `sessions`; runs whose workload differs (rows, seed,
/// ops_per_session, or quick flag) are reported as not comparable and
/// never trip the gate. The gate fails when a matched point's
/// time-to-first-result p50, overall p99, **or** suggest-op p50 exceeds
/// the baseline by more than `gate_threshold` (0.25 = 25%) *and* by
/// more than [`EXPLORE_NOISE_FLOOR_MS`] absolute — or when the current
/// suggest p50 exceeds [`SUGGEST_P50_BOUND_MS`] outright.
pub fn diff_explore_reports(
    current: &str,
    baseline: &str,
    gate_threshold: f64,
) -> Result<ReportDiff, String> {
    let cur = Json::parse(current).map_err(|e| format!("current report: {e}"))?;
    let base = Json::parse(baseline).map_err(|e| format!("baseline report: {e}"))?;
    let base_schema = base
        .get("schema")
        .and_then(Json::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| "baseline report has no \"schema\" field".to_owned())?;
    if base_schema != EXPLORE_SCHEMA {
        return Err(format!(
            "baseline schema {base_schema} not understood (want {EXPLORE_SCHEMA})"
        ));
    }
    let mut lines = Vec::new();
    for key in ["rows", "seed", "ops_per_session", "quick", "streamed"] {
        let (c, b) = (cur.get(key), base.get(key));
        let same = match (c, b) {
            (Some(c), Some(b)) => match (c.as_f64(), b.as_f64()) {
                (Some(c), Some(b)) => c == b,
                _ => format!("{c:?}") == format!("{b:?}"),
            },
            _ => false,
        };
        if !same {
            lines.push(format!(
                "workload mismatch on \"{key}\" — runs not comparable, gate skipped"
            ));
            return Ok(ReportDiff {
                lines,
                gate_failed: false,
            });
        }
    }
    let empty: [Json; 0] = [];
    let cur_points = cur.get("points").and_then(Json::as_array).unwrap_or(&empty);
    let base_points = base.get("points").and_then(Json::as_array).unwrap_or(&empty);
    let mut gate_failed = false;
    for point in cur_points {
        let Some(sessions) = point.get("sessions").and_then(Json::as_f64) else {
            continue;
        };
        let Some(base_point) = base_points
            .iter()
            .find(|p| p.get("sessions").and_then(Json::as_f64) == Some(sessions))
        else {
            lines.push(format!("{sessions} sessions: not in baseline — skipped"));
            continue;
        };
        for metric in ["ttfr_p50_ms", "p99_ms"] {
            let (Some(cur_ms), Some(base_ms)) = (
                point.get(metric).and_then(Json::as_f64),
                base_point.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let mut line = format!(
                "{sessions} sessions {metric}: {cur_ms:.3} ms vs {base_ms:.3} ms — {}",
                verdict(cur_ms, base_ms),
            );
            if base_ms > 0.0
                && cur_ms > base_ms * (1.0 + gate_threshold)
                && cur_ms - base_ms > EXPLORE_NOISE_FLOOR_MS
            {
                gate_failed = true;
                line.push_str(&format!(
                    "  [GATE FAILED: > {:.0}% regression]",
                    gate_threshold * 100.0
                ));
            }
            lines.push(line);
        }
        let suggest_p50 = |p: &Json| {
            p.get("ops")
                .and_then(|ops| ops.get("suggest"))
                .and_then(|s| s.get("p50_ms"))
                .and_then(Json::as_f64)
        };
        if let Some(cur_ms) = suggest_p50(point) {
            let mut line = match suggest_p50(base_point) {
                Some(base_ms) => {
                    let mut line = format!(
                        "{sessions} sessions suggest p50: {cur_ms:.3} ms vs {base_ms:.3} ms — {}",
                        verdict(cur_ms, base_ms),
                    );
                    if base_ms > 0.0
                        && cur_ms > base_ms * (1.0 + gate_threshold)
                        && cur_ms - base_ms > EXPLORE_NOISE_FLOOR_MS
                    {
                        gate_failed = true;
                        line.push_str(&format!(
                            "  [GATE FAILED: > {:.0}% regression]",
                            gate_threshold * 100.0
                        ));
                    }
                    line
                }
                None => format!(
                    "{sessions} sessions suggest p50: {cur_ms:.3} ms (no suggest section in baseline)"
                ),
            };
            if cur_ms > SUGGEST_P50_BOUND_MS {
                gate_failed = true;
                line.push_str(&format!(
                    "  [GATE FAILED: above the {SUGGEST_P50_BOUND_MS:.0} ms interactivity bound]"
                ));
            }
            lines.push(line);
        }
    }
    if cur_points.is_empty() {
        lines.push("current report has no points".to_owned());
    }
    Ok(ReportDiff { lines, gate_failed })
}

/// The span whose median regression fails the `--baseline` gate: the
/// clustering hot path this harness exists to keep fast.
pub const GATE_SPAN: &str = "cluster_partition";

/// Outcome of diffing a fresh report against a baseline report.
pub struct ReportDiff {
    /// Human-readable per-workload and per-span comparison lines.
    pub lines: Vec<String>,
    /// True when [`GATE_SPAN`] regressed beyond the threshold on any
    /// comparable workload.
    pub gate_failed: bool,
}

/// Compares a freshly generated report against a baseline (schema 2
/// through [`BENCH_SCHEMA`]). Workloads are matched by name; a workload whose `rows` differ
/// (e.g. a `--quick` run against a full baseline) is reported as not
/// comparable and never trips the gate. Per-point medians use
/// `cold_median_ms`, falling back to schema 2's `median_ms`; per-span
/// values use `span_medians_ms`, falling back to a flattened
/// `span_breakdown`. The gate fails when [`GATE_SPAN`]'s median exceeds
/// the baseline by more than `gate_threshold` (0.25 = 25%).
pub fn diff_reports(
    current: &str,
    baseline: &str,
    gate_threshold: f64,
) -> Result<ReportDiff, String> {
    let cur = Json::parse(current).map_err(|e| format!("current report: {e}"))?;
    let base = Json::parse(baseline).map_err(|e| format!("baseline report: {e}"))?;
    let base_schema = base
        .get("schema")
        .and_then(Json::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| "baseline report has no \"schema\" field".to_owned())?;
    if !(2..=BENCH_SCHEMA).contains(&base_schema) {
        return Err(format!(
            "baseline schema {base_schema} not understood (want 2..={BENCH_SCHEMA})"
        ));
    }
    let empty: [Json; 0] = [];
    let cur_workloads = cur.get("workloads").and_then(Json::as_array).unwrap_or(&empty);
    let base_workloads = base.get("workloads").and_then(Json::as_array).unwrap_or(&empty);
    let mut lines = Vec::new();
    let mut gate_failed = false;
    for workload in cur_workloads {
        let name = workload.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(base_workload) = base_workloads
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
        else {
            lines.push(format!("{name}: not in baseline — skipped"));
            continue;
        };
        let rows = workload.get("rows").and_then(Json::as_f64);
        let base_rows = base_workload.get("rows").and_then(Json::as_f64);
        if rows != base_rows {
            lines.push(format!(
                "{name}: {} rows vs baseline {} — not comparable, skipped",
                rows.unwrap_or(0.0),
                base_rows.unwrap_or(0.0),
            ));
            continue;
        }
        for point in workload
            .get("points")
            .and_then(Json::as_array)
            .unwrap_or(&empty)
        {
            let Some(threads) = point.get("threads").and_then(Json::as_f64) else {
                continue;
            };
            let Some(base_point) = base_workload
                .get("points")
                .and_then(Json::as_array)
                .unwrap_or(&empty)
                .iter()
                .find(|p| p.get("threads").and_then(Json::as_f64) == Some(threads))
            else {
                continue;
            };
            if let (Some(cur_ms), Some(base_ms)) = (point_median(point), point_median(base_point)) {
                lines.push(format!(
                    "{name} @ {threads} thread(s): {cur_ms:.3} ms vs {base_ms:.3} ms — {}",
                    verdict(cur_ms, base_ms),
                ));
            }
        }
        let base_spans = workload_span_medians(base_workload);
        for (span, cur_ms) in workload_span_medians(workload) {
            let Some((_, base_ms)) = base_spans.iter().find(|(n, _)| *n == span) else {
                continue;
            };
            let mut line = format!(
                "{name} span {span}: {cur_ms:.3} ms vs {base_ms:.3} ms — {}",
                verdict(cur_ms, *base_ms),
            );
            if span == GATE_SPAN && *base_ms > 0.0 && cur_ms > base_ms * (1.0 + gate_threshold) {
                gate_failed = true;
                line.push_str(&format!(
                    "  [GATE FAILED: > {:.0}% regression]",
                    gate_threshold * 100.0
                ));
            }
            lines.push(line);
        }
    }
    if cur_workloads.is_empty() {
        lines.push("current report has no workloads".to_owned());
    }
    Ok(ReportDiff { lines, gate_failed })
}

/// A point's comparison median: `cold_median_ms` (schema 3), falling
/// back to `median_ms` (schema 2, where every run was cold).
fn point_median(point: &Json) -> Option<f64> {
    point
        .get("cold_median_ms")
        .or_else(|| point.get("median_ms"))
        .and_then(Json::as_f64)
}

/// A workload's per-span medians: `span_medians_ms` (schema 3), falling
/// back to the flattened single-run `span_breakdown` (schema 2).
fn workload_span_medians(workload: &Json) -> Vec<(String, f64)> {
    if let Some(Json::Obj(fields)) = workload.get("span_medians_ms") {
        return fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|ms| (k.clone(), ms)))
            .collect();
    }
    workload
        .get("span_breakdown")
        .map(flatten_spans)
        .unwrap_or_default()
}

fn verdict(cur_ms: f64, base_ms: f64) -> String {
    if base_ms <= 0.0 || cur_ms <= 0.0 {
        return "not comparable".to_owned();
    }
    let ratio = cur_ms / base_ms;
    if ratio <= 1.0 {
        format!("{:.2}x speedup", base_ms / cur_ms)
    } else {
        format!("+{:.1}% regression", (ratio - 1.0) * 100.0)
    }
}

/// Prints one aligned text table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Warns when timings are collected from an unoptimized build.
pub fn warn_if_debug() {
    if cfg!(debug_assertions) {
        eprintln!(
            "NOTE: running a debug build; use `cargo run --release -p dbex-bench --bin ...` \
             for meaningful timings."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_make_population_is_large() {
        let table = base_cars_table();
        let v = five_make_view(&table);
        assert!(v.len() >= 40_000, "population too small: {}", v.len());
    }

    #[test]
    fn timed_builds_produce_positive_times() {
        let table = base_cars_table();
        let v = five_make_view(&table);
        let m = timed_builds(&v, 2_000, &worst_case_request(), 2);
        assert!(m.total_ms() > 0.0);
        assert!(m.iunit_ms > 0.0);
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median_ms(&[]), 0.0);
        assert_eq!(median_ms(&[3.0]), 3.0);
        assert_eq!(median_ms(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_ms(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(validate_json(r#"{"a": [1, -2.5, 3e4], "b": {"c": "x\"y"}, "d": null}"#).is_ok());
        assert!(validate_json("[true, false]").is_ok());
        assert!(validate_json("  42  ").is_ok());
        assert!(validate_json(r#"{"a": 1"#).is_err()); // truncated
        assert!(validate_json(r#"{"a": 1} extra"#).is_err()); // trailing
        assert!(validate_json(r#"{"a": 1.}"#).is_err()); // bad number
        assert!(validate_json(r#"{a: 1}"#).is_err()); // unquoted key
        assert!(validate_json(r#"{"a": }"#).is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn report_validator_checks_schema() {
        assert!(validate_report(r#"{"schema": 4, "bench": "cad"}"#).is_ok());
        // Missing schema: actionable message, not silent acceptance.
        let err = validate_report(r#"{"bench": "cad"}"#).unwrap_err();
        assert!(err.contains("no \"schema\" field"), "{err}");
        // Wrong version names both the found and the understood schema.
        let err = validate_report(r#"{"schema": 3, "bench": "cad"}"#).unwrap_err();
        assert!(err.contains("unknown report schema 3"), "{err}");
        assert!(err.contains("schema 4"), "{err}");
        // Malformed JSON still fails on well-formedness first.
        assert!(validate_report(r#"{"schema": 4"#).is_err());
        // Non-numeric schema value reads as absent.
        let err = validate_report(r#"{"schema": "two"}"#).unwrap_err();
        assert!(err.contains("no \"schema\" field"), "{err}");
    }

    #[test]
    fn report_validator_rejects_unknown_fields() {
        // A field schema 4 does not define fails at every level of the
        // report — top level, workload, point, warm_cache, span node.
        let err = validate_report(r#"{"schema": 4, "surprise": 1}"#).unwrap_err();
        assert!(err.contains("unknown field \"surprise\" in report"), "{err}");
        let err = validate_report(
            r#"{"schema": 4, "workloads": [{"name": "w", "bogus": 2}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("\"bogus\" in workload \"w\""), "{err}");
        let err = validate_report(
            r#"{"schema": 4, "workloads": [{"name": "w",
                "points": [{"threads": 1, "mean_ms": 3.0}]}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("\"mean_ms\" in a point"), "{err}");
        let err = validate_report(
            r#"{"schema": 4, "workloads": [{"name": "w",
                "warm_cache": {"hits": 1, "evictions": 0}}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("\"evictions\" in warm_cache"), "{err}");
        let err = validate_report(
            r#"{"schema": 4, "workloads": [{"name": "w",
                "span_breakdown": [{"name": "s", "children":
                  [{"name": "t", "wall_ms": 1.0}]}]}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("\"wall_ms\" in a span node"), "{err}");
        // Caller-defined key spaces stay open: span medians, kernel
        // speedups, and span counters take arbitrary names.
        assert!(validate_report(
            r#"{"schema": 4, "workloads": [{"name": "w",
                "span_medians_ms": {"anything_at_all": 1.0},
                "kernel_speedups": {"cluster_partition": 1.6},
                "span_breakdown": [{"name": "s",
                  "counters": {"rows_scanned": 7}, "children": []}]}]}"#,
        )
        .is_ok());
    }

    #[test]
    fn json_parser_round_trips_report_shapes() {
        let v = Json::parse(r#"{"a": [1, -2.5, 3e2], "b": {"c": "x\"yA"}, "d": null}"#)
            .unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\"yA")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert!(Json::parse(r#"{"a": 1"#).is_err());
        assert!(Json::parse("[1] tail").is_err());
    }

    #[test]
    fn flatten_spans_sums_by_name_over_the_tree() {
        let tree = Json::parse(
            r#"[{"name": "cad_build", "calls": 1, "duration_ms": 10.0, "counters": {},
                 "children": [
                   {"name": "cluster_partition", "calls": 5, "duration_ms": 6.0,
                    "counters": {}, "children": []},
                   {"name": "cluster_partition", "calls": 1, "duration_ms": 1.5,
                    "counters": {}, "children": []}]}]"#,
        )
        .unwrap();
        let flat = flatten_spans(&tree);
        assert_eq!(flat[0], ("cad_build".to_owned(), 10.0));
        assert_eq!(flat[1], ("cluster_partition".to_owned(), 7.5));
    }

    fn report(schema: u64, rows: u64, median: f64, cluster_ms: f64) -> String {
        // A schema-2-shaped workload (median_ms + span_breakdown) is
        // also a valid diff input for schema 3 via the fallbacks.
        format!(
            r#"{{"schema": {schema}, "workloads": [
                 {{"name": "w", "rows": {rows},
                   "points": [{{"threads": 1, "median_ms": {median}}}],
                   "span_breakdown": [{{"name": "cluster_partition", "calls": 5,
                     "duration_ms": {cluster_ms}, "counters": {{}}, "children": []}}]}}]}}"#
        )
    }

    #[test]
    fn diff_reports_flags_gate_regressions_only_when_comparable() {
        // 10% slower cluster_partition: reported, below the 25% gate.
        let diff = diff_reports(&report(3, 100, 11.0, 11.0), &report(2, 100, 10.0, 10.0), 0.25)
            .unwrap();
        assert!(!diff.gate_failed, "{:?}", diff.lines);
        assert!(diff.lines.iter().any(|l| l.contains("+10.0% regression")));

        // 50% slower: gate fails.
        let diff = diff_reports(&report(3, 100, 15.0, 15.0), &report(2, 100, 10.0, 10.0), 0.25)
            .unwrap();
        assert!(diff.gate_failed, "{:?}", diff.lines);
        assert!(diff.lines.iter().any(|l| l.contains("GATE FAILED")));

        // Faster: speedup reported, no gate.
        let diff = diff_reports(&report(3, 100, 5.0, 4.0), &report(2, 100, 10.0, 10.0), 0.25)
            .unwrap();
        assert!(!diff.gate_failed);
        assert!(diff.lines.iter().any(|l| l.contains("2.50x speedup")));

        // Row-count mismatch (e.g. --quick vs full baseline): skipped,
        // never trips the gate even with a huge regression.
        let diff = diff_reports(&report(3, 5, 99.0, 99.0), &report(2, 100, 10.0, 10.0), 0.25)
            .unwrap();
        assert!(!diff.gate_failed);
        assert!(diff.lines.iter().any(|l| l.contains("not comparable")));

        // Pre-versioning baseline is rejected outright.
        assert!(diff_reports(&report(3, 100, 1.0, 1.0), r#"{"workloads": []}"#, 0.25).is_err());
    }

    #[test]
    fn sibling_validators_check_schema_and_harness() {
        // The committed reports must validate (guards against the
        // whitelists drifting from what the harnesses actually write).
        let serve = r#"{"schema": 2, "harness": "concurrent_load", "quick": false,
            "rows": 100, "rounds": 2, "requests_per_round": 4, "workers": 1,
            "points": [{"clients": 1, "requests": 8, "errors": 0, "p50_ms": 0.1,
                        "p99_ms": 0.2, "max_ms": 0.3, "busy_rejections": 0,
                        "cache_hits": 5, "cache_misses": 1}]}"#;
        assert!(validate_serve_report(serve).is_ok());
        let store = r#"{"schema": 1, "harness": "store_bench", "quick": true,
            "rows": 10, "runs": 1, "save_ms": 1.0, "save_reuse_ms": 1.0,
            "open_ms": 1.0, "snapshot_bytes": 10, "cold_build_ms": 1.0,
            "warm_first_build_ms": 1.0, "rehydrated_solutions": 1,
            "partitions_reused": 1}"#;
        assert!(validate_store_report(store).is_ok());

        // Wrong harness tag, missing harness, wrong schema — each named
        // in the message.
        let err = validate_serve_report(&serve.replace("concurrent_load", "store_bench"))
            .unwrap_err();
        assert!(err.contains("harness \"store_bench\""), "{err}");
        let err = validate_store_report(r#"{"schema": 1, "rows": 1}"#).unwrap_err();
        assert!(err.contains("no \"harness\" field"), "{err}");
        let err = validate_serve_report(r#"{"schema": 9, "harness": "concurrent_load"}"#)
            .unwrap_err();
        assert!(err.contains("unknown report schema 9"), "{err}");

        // Unknown fields rejected at both levels.
        let err = validate_serve_report(&serve.replace("\"rows\"", "\"row_count\""))
            .unwrap_err();
        assert!(err.contains("\"row_count\""), "{err}");
        let err = validate_serve_report(&serve.replace("\"errors\"", "\"failures\""))
            .unwrap_err();
        assert!(err.contains("\"failures\" in a serve report point"), "{err}");
        let err = validate_store_report(&store.replace("\"runs\"", "\"iters\"")).unwrap_err();
        assert!(err.contains("\"iters\""), "{err}");
    }

    fn explore_report(sessions: u64, ttfr_p50: f64, p99: f64) -> String {
        format!(
            r#"{{"schema": 3, "harness": "bench_explore", "quick": false, "seed": 42,
                "rows": 1000, "ops_per_session": 8, "think_min_ms": 0, "think_max_ms": 2,
                "abandon_rate": 0.05, "reconnect_rate": 0.5, "streamed": true,
                "points": [{{"sessions": {sessions}, "completed": {sessions},
                  "abandoned": 1, "reconnects": 1, "requests": 64, "errors": 0,
                  "busy_rejections": 2, "previewed_ops": 4,
                  "ttfr_p50_ms": {ttfr_p50}, "ttfr_p99_ms": 9.0,
                  "first_frame_p50_ms": 0.8, "first_frame_p99_ms": 4.0,
                  "p50_ms": 1.0, "p99_ms": {p99}, "max_ms": 20.0, "wall_ms": 100.0,
                  "ops": {{"drill": {{"count": 16, "p50_ms": 1.0, "p99_ms": 2.0, "max_ms": 3.0}},
                          "cad": {{"count": 8, "p50_ms": 2.0, "p99_ms": 4.0, "max_ms": 5.0}},
                          "suggest": {{"count": 12, "p50_ms": 1.5, "p99_ms": 3.5, "max_ms": 4.5}}}},
                  "cache_trajectory": [
                    {{"at_ms": 0.0, "hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0}},
                    {{"at_ms": 50.0, "hits": 40, "misses": 10, "evictions": 0, "hit_rate": 0.8}}]}}]}}"#
        )
    }

    #[test]
    fn explore_validator_walks_every_level() {
        assert!(validate_explore_report(&explore_report(8, 2.0, 10.0)).is_ok());
        let err = validate_explore_report(
            &explore_report(8, 2.0, 10.0).replace("\"abandon_rate\"", "\"abandonment\""),
        )
        .unwrap_err();
        assert!(err.contains("\"abandonment\""), "{err}");
        let err = validate_explore_report(
            &explore_report(8, 2.0, 10.0).replace("\"ttfr_p50_ms\"", "\"ttfr_median_ms\""),
        )
        .unwrap_err();
        assert!(err.contains("\"ttfr_median_ms\" in the 8-session point"), "{err}");
        // Unknown op kind and unknown op field both rejected.
        let err = validate_explore_report(
            &explore_report(8, 2.0, 10.0).replace("\"drill\"", "\"scan\""),
        )
        .unwrap_err();
        assert!(err.contains("unknown op kind \"scan\""), "{err}");
        let err = validate_explore_report(
            &explore_report(8, 2.0, 10.0).replace("\"count\": 16", "\"n\": 16"),
        )
        .unwrap_err();
        assert!(err.contains("\"n\" in op \"drill\""), "{err}");
        // Trajectory samples are whitelisted too.
        let err = validate_explore_report(
            &explore_report(8, 2.0, 10.0).replace("\"hit_rate\": 0.8", "\"ratio\": 0.8"),
        )
        .unwrap_err();
        assert!(err.contains("\"ratio\" in a cache_trajectory sample"), "{err}");
    }

    #[test]
    fn explore_diff_gates_on_ttfr_and_p99() {
        // Mild regression: reported, below gate.
        let diff = diff_explore_reports(
            &explore_report(8, 2.2, 11.0),
            &explore_report(8, 2.0, 10.0),
            0.25,
        )
        .unwrap();
        assert!(!diff.gate_failed, "{:?}", diff.lines);
        assert!(diff.lines.iter().any(|l| l.contains("+10.0% regression")));

        // TTFR p50 regresses past the gate even though p99 is fine.
        let diff = diff_explore_reports(
            &explore_report(8, 30.0, 100.0),
            &explore_report(8, 20.0, 100.0),
            0.25,
        )
        .unwrap();
        assert!(diff.gate_failed, "{:?}", diff.lines);
        assert!(diff.lines.iter().any(|l| l.contains("GATE FAILED")));

        // p99 regresses past the gate independently.
        let diff = diff_explore_reports(
            &explore_report(8, 20.0, 200.0),
            &explore_report(8, 20.0, 100.0),
            0.25,
        )
        .unwrap();
        assert!(diff.gate_failed, "{:?}", diff.lines);

        // A big *relative* jump under the absolute noise floor is jitter
        // on a milliseconds-scale metric, not a regression.
        let diff = diff_explore_reports(
            &explore_report(8, 3.0, 4.4),
            &explore_report(8, 2.0, 3.1),
            0.25,
        )
        .unwrap();
        assert!(!diff.gate_failed, "{:?}", diff.lines);

        // A point missing from the baseline is skipped, not gated.
        let diff = diff_explore_reports(
            &explore_report(16, 99.0, 99.0),
            &explore_report(8, 2.0, 10.0),
            0.25,
        )
        .unwrap();
        assert!(!diff.gate_failed);
        assert!(diff.lines.iter().any(|l| l.contains("not in baseline")));

        // Workload mismatch (different rows) disables the gate entirely.
        let other = explore_report(8, 99.0, 99.0).replace("\"rows\": 1000", "\"rows\": 9");
        let diff =
            diff_explore_reports(&other, &explore_report(8, 2.0, 10.0), 0.25).unwrap();
        assert!(!diff.gate_failed);
        assert!(diff.lines.iter().any(|l| l.contains("workload mismatch")), "{:?}", diff.lines);

        // Baseline from another schema (pre-streaming) is rejected.
        assert!(diff_explore_reports(
            &explore_report(8, 1.0, 1.0),
            r#"{"schema": 1, "points": []}"#,
            0.25
        )
        .is_err());
    }

    #[test]
    fn explore_diff_gates_on_suggest_p50() {
        let base = explore_report(8, 2.0, 10.0);
        let with_suggest = |p50: &str| base.replace("\"p50_ms\": 1.5", p50);

        // Mild suggest drift: reported, below gate.
        let diff =
            diff_explore_reports(&with_suggest("\"p50_ms\": 1.6"), &base, 0.25).unwrap();
        assert!(!diff.gate_failed, "{:?}", diff.lines);
        assert!(diff.lines.iter().any(|l| l.contains("suggest p50")), "{:?}", diff.lines);

        // Suggest p50 regresses past the relative gate (still under the
        // absolute bound).
        let diff =
            diff_explore_reports(&with_suggest("\"p50_ms\": 9.0"), &base, 0.25).unwrap();
        assert!(diff.gate_failed, "{:?}", diff.lines);
        assert!(
            diff.lines.iter().any(|l| l.contains("suggest p50") && l.contains("GATE FAILED")),
            "{:?}",
            diff.lines
        );

        // Above the absolute interactivity bound the gate fails even
        // when the baseline is equally slow — no grandfathering.
        let slow = with_suggest("\"p50_ms\": 12.0");
        let diff = diff_explore_reports(&slow, &slow, 0.25).unwrap();
        assert!(diff.gate_failed, "{:?}", diff.lines);
        assert!(
            diff.lines.iter().any(|l| l.contains("interactivity bound")),
            "{:?}",
            diff.lines
        );

        // A baseline without a suggest section (fresh family) is
        // reported but never trips the relative gate.
        let no_suggest = base.replace(
            r#",
                          "suggest": {"count": 12, "p50_ms": 1.5, "p99_ms": 3.5, "max_ms": 4.5}"#,
            "",
        );
        assert!(validate_explore_report(&no_suggest).is_ok(), "fixture surgery broke JSON");
        let diff = diff_explore_reports(&base, &no_suggest, 0.25).unwrap();
        assert!(!diff.gate_failed, "{:?}", diff.lines);
        assert!(
            diff.lines.iter().any(|l| l.contains("no suggest section in baseline")),
            "{:?}",
            diff.lines
        );
    }

    #[test]
    fn rotate_preserves_rows() {
        let table = base_cars_table();
        let v = five_make_view(&table).sample(100);
        let r = rotate(&v, 37);
        assert_eq!(r.len(), v.len());
        let mut a: Vec<u32> = v.row_ids().to_vec();
        let mut b: Vec<u32> = r.row_ids().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
