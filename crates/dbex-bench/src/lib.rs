//! # dbex-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 6). Each experiment is a binary:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — the sample CAD View for five Makes |
//! | `user_study` | Figures 2-7 + the §6.2 mixed-model statistics |
//! | `fig8_worst_case` | Figure 8 — worst-case build time vs result size |
//! | `fig9_iunits` | Figure 9 — generated IUnits `l` vs time |
//! | `fig10_compare_attrs` | Figure 10 — Compare Attribute count vs time |
//! | `opt_sampling` | Optimization 1 — sampled feature selection |
//! | `opt_combined` | Optimizations 1-3 combined (40K in < 500 ms) |
//! | `ablation_topk` | div-astar vs greedy diversified top-k |
//! | `ablation_seeding` | k-means++ vs random seeding |
//! | `ablation_binning` | equi-width vs equi-depth vs V-optimal binning |
//!
//! Timing experiments should be run with `--release`; each binary honors a
//! `SIMS` environment variable to change the number of simulations per
//! point (the paper uses 50).

use dbex_core::{CadConfig, CadRequest, CadTimings};
use dbex_data::UsedCarsGenerator;
use dbex_table::{Predicate, Table, View};
use std::time::Duration;

/// The five Makes of the paper's running example.
pub const FIVE_MAKES: [&str; 5] = ["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"];

/// Number of simulations per data point (`SIMS` env var; paper uses 50).
pub fn simulations() -> usize {
    std::env::var("SIMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
}

/// Generates the benchmark base table: used-car listings restricted to the
/// five example Makes, large enough to draw 40K-row result sets from.
pub fn base_cars_table() -> Table {
    // 90K raw listings leave ≈40K+ rows across the five Makes.
    UsedCarsGenerator::new(0xD_BE).generate(90_000)
}

/// The five-Make restriction of `table` (the population result sets are
/// sampled from, as in Section 6.3's simulations).
pub fn five_make_view(table: &Table) -> View<'_> {
    table
        .filter(&Predicate::in_list(
            "Make",
            FIVE_MAKES.iter().map(|&m| m.into()).collect(),
        ))
        .expect("Make attribute exists")
}

/// The paper's worst-case pipeline configuration (Section 6.3, Figure 8):
/// no sampling, no adaptivity, all 10 non-pivot attributes admitted
/// (`alpha = 1` disables the significance filter), `l = 15` candidates for
/// `k = 6` shown IUnits.
pub fn worst_case_request() -> CadRequest {
    CadRequest::new("Make")
        .with_pivot_values(FIVE_MAKES.to_vec())
        .with_iunits(6)
        .with_max_compare_attrs(10)
        .with_config(CadConfig {
            alpha: 1.0,
            candidate_factor: 2.5, // l = ceil(2.5 · 6) = 15
            ..CadConfig::default()
        })
}

/// Aggregated stage timings over repeated builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanTimings {
    /// Mean Compare Attribute selection time.
    pub compare_ms: f64,
    /// Mean IUnit generation time.
    pub iunit_ms: f64,
    /// Mean time of all remaining steps.
    pub others_ms: f64,
}

impl MeanTimings {
    /// Mean total time.
    pub fn total_ms(&self) -> f64 {
        self.compare_ms + self.iunit_ms + self.others_ms
    }

    /// Accumulates one build's timings.
    pub fn add(&mut self, t: &CadTimings, n: usize) {
        let ms = |d: Duration| d.as_secs_f64() * 1_000.0 / n as f64;
        self.compare_ms += ms(t.compare_attrs);
        self.iunit_ms += ms(t.iunit_generation);
        self.others_ms += ms(t.others);
    }
}

/// Runs `sims` CAD builds over distinct deterministic subsamples of
/// `population` at `size` rows, returning mean stage timings.
pub fn timed_builds(
    population: &View<'_>,
    size: usize,
    request: &CadRequest,
    sims: usize,
) -> MeanTimings {
    let mut mean = MeanTimings::default();
    for sim in 0..sims {
        // Vary the subsample per simulation by rotating the population.
        let rotated = rotate(population, sim * 7_919);
        let result = rotated.sample(size);
        let cad = dbex_core::build_cad_view(&result, request).expect("build succeeds");
        mean.add(&cad.timings, sims);
    }
    mean
}

/// Rotates a view's row order (deterministic per-simulation variation).
fn rotate<'a>(view: &View<'a>, by: usize) -> View<'a> {
    let ids = view.row_ids();
    if ids.is_empty() {
        return view.clone();
    }
    let k = by % ids.len();
    let mut rows = Vec::with_capacity(ids.len());
    rows.extend_from_slice(&ids[k..]);
    rows.extend_from_slice(&ids[..k]);
    View::from_rows(view.table(), rows)
}

/// Median of a sample set (for robust bench aggregation). Even-length
/// inputs average the two middle values; empty input is 0.
pub fn median_ms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Schema version of the machine-readable bench report
/// (`BENCH_cad.json`). Bump whenever the report shape changes
/// incompatibly; `validate_report` rejects any other version.
///
/// History: schema 1 was the original unversioned report (no `"schema"`
/// field); schema 2 adds the version field and a per-workload
/// `"span_breakdown"` (the traced span tree of one sequential build).
pub const BENCH_SCHEMA: u64 = 2;

/// Validates a bench report: well-formed JSON carrying
/// `"schema": `[`BENCH_SCHEMA`]. Reports without a schema field
/// (pre-versioning) and reports from a different harness version are
/// rejected with an actionable message rather than silently consumed.
pub fn validate_report(text: &str) -> Result<(), String> {
    validate_json(text)?;
    let Some(found) = extract_schema(text) else {
        return Err(format!(
            "report has no \"schema\" field (pre-versioning output?); \
             this validator understands schema {BENCH_SCHEMA} — regenerate with bench_suite"
        ));
    };
    if found != BENCH_SCHEMA {
        return Err(format!(
            "unknown report schema {found}; this validator understands schema \
             {BENCH_SCHEMA} — regenerate with bench_suite"
        ));
    }
    Ok(())
}

/// Extracts the integer value of a top-level-looking `"schema"` key.
/// Good enough for reports bench_suite itself writes (the key appears
/// exactly once); returns `None` when absent or non-numeric.
fn extract_schema(text: &str) -> Option<u64> {
    let key = "\"schema\"";
    let at = text.find(key)?;
    let rest = text[at + key.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Minimal JSON well-formedness check for the machine-readable bench
/// output (`BENCH_cad.json`): one value, full-input consumption, no
/// dependency on a JSON crate. Returns a position-tagged message on the
/// first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2, // escape; next byte consumed blindly
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

/// Prints one aligned text table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Warns when timings are collected from an unoptimized build.
pub fn warn_if_debug() {
    if cfg!(debug_assertions) {
        eprintln!(
            "NOTE: running a debug build; use `cargo run --release -p dbex-bench --bin ...` \
             for meaningful timings."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_make_population_is_large() {
        let table = base_cars_table();
        let v = five_make_view(&table);
        assert!(v.len() >= 40_000, "population too small: {}", v.len());
    }

    #[test]
    fn timed_builds_produce_positive_times() {
        let table = base_cars_table();
        let v = five_make_view(&table);
        let m = timed_builds(&v, 2_000, &worst_case_request(), 2);
        assert!(m.total_ms() > 0.0);
        assert!(m.iunit_ms > 0.0);
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median_ms(&[]), 0.0);
        assert_eq!(median_ms(&[3.0]), 3.0);
        assert_eq!(median_ms(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_ms(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(validate_json(r#"{"a": [1, -2.5, 3e4], "b": {"c": "x\"y"}, "d": null}"#).is_ok());
        assert!(validate_json("[true, false]").is_ok());
        assert!(validate_json("  42  ").is_ok());
        assert!(validate_json(r#"{"a": 1"#).is_err()); // truncated
        assert!(validate_json(r#"{"a": 1} extra"#).is_err()); // trailing
        assert!(validate_json(r#"{"a": 1.}"#).is_err()); // bad number
        assert!(validate_json(r#"{a: 1}"#).is_err()); // unquoted key
        assert!(validate_json(r#"{"a": }"#).is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn report_validator_checks_schema() {
        assert!(validate_report(r#"{"schema": 2, "bench": "cad"}"#).is_ok());
        // Missing schema: actionable message, not silent acceptance.
        let err = validate_report(r#"{"bench": "cad"}"#).unwrap_err();
        assert!(err.contains("no \"schema\" field"), "{err}");
        // Wrong version names both the found and the understood schema.
        let err = validate_report(r#"{"schema": 1, "bench": "cad"}"#).unwrap_err();
        assert!(err.contains("unknown report schema 1"), "{err}");
        assert!(err.contains("schema 2"), "{err}");
        // Malformed JSON still fails on well-formedness first.
        assert!(validate_report(r#"{"schema": 2"#).is_err());
        // Non-numeric schema value reads as absent.
        let err = validate_report(r#"{"schema": "two"}"#).unwrap_err();
        assert!(err.contains("no \"schema\" field"), "{err}");
    }

    #[test]
    fn rotate_preserves_rows() {
        let table = base_cars_table();
        let v = five_make_view(&table).sample(100);
        let r = rotate(&v, 37);
        assert_eq!(r.len(), v.len());
        let mut a: Vec<u32> = v.row_ids().to_vec();
        let mut b: Vec<u32> = r.row_ids().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
