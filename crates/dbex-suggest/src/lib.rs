//! # dbex-suggest
//!
//! Exploration intelligence for DBExplorer: next-step recommendation and
//! predicate completion (ROADMAP item 5).
//!
//! The paper's TPFacet story is *navigation* — the user walks a facet tree
//! and the system keeps the view summarized. This crate closes the loop in
//! the other direction: given where the user currently *is* (a refined
//! result set and a pivot), rank where to go *next*.
//!
//! Two surfaces, both pure functions over a [`View`]:
//!
//! * [`suggest_next`] ranks candidate attributes by **symmetrical
//!   uncertainty** against the current pivot — `2·I(P;A) / (H(P)+H(A))` —
//!   computed from the same contingency tables the CAD feature selector
//!   uses (and cached in the same [`StatsCache`], keyed on the view
//!   fingerprint, so repeated keystrokes over an unchanged view are cache
//!   hits). SU rather than raw information gain removes the bias toward
//!   high-cardinality attributes, and it is exactly 0 for any attribute
//!   that is constant over the current view — an attribute eliminated by
//!   refinement can never be suggested (the monotonicity property in
//!   `tests/suggest_ranking.rs`).
//! * [`complete_attribute`] / [`complete_value`] rank completions for a
//!   partial `WHERE` clause by data-informed *frequency ×
//!   discriminativeness* (grounded in Le Guilly & Petit, "SQL Query
//!   Completion for Data Exploration", and Kahng et al., "Interactive
//!   Browsing and Navigation in Relational Databases").
//!
//! Every ranking uses the deterministic tie-break *(score desc via
//! `total_cmp`, then attribute/code id asc)* so rendered output is
//! byte-identical at any thread count.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::sync::Arc;
use std::time::Instant;

use dbex_stats::{
    entropy, information_gain, symmetrical_uncertainty, AttributeCodec, BinningStrategy,
    CodecKey, ContingencyKey, ContingencyTable, StatsCache,
};
use dbex_table::dict::NULL_CODE;
use dbex_table::View;

/// Bin count for numeric attributes — matches `CadConfig::default()` so
/// codec cache entries are *shared* with CAD builds on the same view.
pub const SUGGEST_BINS: usize = 6;

/// Binning strategy — matches `CadConfig::default()` for the same reason.
pub const SUGGEST_STRATEGY: BinningStrategy = BinningStrategy::EquiDepth;

/// Default number of suggestions returned.
pub const DEFAULT_LIMIT: usize = 8;

/// Histogram bounds for `suggest.rank_ms` (milliseconds).
const RANK_MS_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0];

/// Tuning knobs for a suggestion run.
#[derive(Debug, Clone)]
pub struct SuggestConfig {
    /// Numeric discretization bins (keep at [`SUGGEST_BINS`] to share
    /// codec cache entries with CAD builds).
    pub bins: usize,
    /// Numeric binning strategy.
    pub strategy: BinningStrategy,
    /// Maximum suggestions returned after ranking.
    pub limit: usize,
    /// Worker threads for candidate scoring (0 = resolve from environment).
    /// Ranked output is byte-identical at any thread count: each candidate
    /// is scored independently and merged in attribute order.
    pub threads: usize,
}

impl Default for SuggestConfig {
    fn default() -> Self {
        SuggestConfig {
            bins: SUGGEST_BINS,
            strategy: SUGGEST_STRATEGY,
            limit: DEFAULT_LIMIT,
            threads: 1,
        }
    }
}

/// Why a suggestion run could not produce a ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuggestError {
    /// The pivot column index is out of range for the view's schema.
    PivotOutOfRange {
        /// The offending index.
        pivot: usize,
        /// Number of columns in the schema.
        columns: usize,
    },
    /// The named attribute does not exist in the view's schema.
    UnknownAttribute(String),
}

impl std::fmt::Display for SuggestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuggestError::PivotOutOfRange { pivot, columns } => {
                write!(f, "pivot column {pivot} out of range ({columns} columns)")
            }
            SuggestError::UnknownAttribute(name) => write!(f, "unknown attribute {name}"),
        }
    }
}

impl std::error::Error for SuggestError {}

/// One ranked next-step candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct NextSuggestion {
    /// Column index in the schema (the deterministic tie-break key).
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// Symmetrical uncertainty against the pivot, in `[0, 1]`.
    pub score: f64,
    /// Raw information gain `I(pivot; attr)` in nats.
    pub gain: f64,
    /// Attribute entropy `H(attr)` over the *current* view, in nats.
    pub entropy: f64,
    /// Distinct non-null codes the attribute takes over the current view.
    pub cardinality: usize,
}

/// Result of a [`suggest_next`] run.
#[derive(Debug, Clone)]
pub struct NextReport {
    /// Pivot column index the candidates were scored against.
    pub pivot: usize,
    /// Pivot attribute name.
    pub pivot_name: String,
    /// Rows in the view the ranking was computed over.
    pub view_rows: usize,
    /// Candidates that survived scoring (before the limit cut).
    pub candidates: usize,
    /// Ranked suggestions, best first.
    pub suggestions: Vec<NextSuggestion>,
    /// Stats-cache hits observed during this run (0 without a cache;
    /// approximate under concurrent cache users).
    pub cache_hits: u64,
    /// Stats-cache misses observed during this run.
    pub cache_misses: u64,
    /// Wall-clock time spent ranking.
    pub elapsed: std::time::Duration,
}

/// One ranked completion candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionItem {
    /// The completion text (attribute name or value label).
    pub text: String,
    /// Frequency × discriminativeness score.
    pub score: f64,
    /// Human-readable annotation (coverage / match counts).
    pub detail: String,
}

/// Contingency tables built by the suggester are cached under a `class_ctx`
/// derived from this salt + the pivot index, so they never collide with the
/// CAD feature selector's entries for the same `(view, attr)` pair.
const SUGGEST_CTX_SALT: u64 = 0x5355_4747_4553_5421; // "SUGGEST!"

/// Cache context tag for suggest contingency tables against `pivot`.
pub fn suggest_class_ctx(pivot: usize) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = SUGGEST_CTX_SALT;
    h ^= pivot as u64;
    h = h.wrapping_mul(PRIME);
    h
}

/// Builds (or fetches from `cache`) the codec for `attr` over `view`.
fn codec_for(
    view: &View<'_>,
    view_fp: Option<u64>,
    attr: usize,
    cfg: &SuggestConfig,
    cache: Option<&StatsCache>,
) -> Option<Arc<AttributeCodec>> {
    let build = || AttributeCodec::build(view, attr, cfg.bins, cfg.strategy);
    match (cache, view_fp) {
        (Some(cache), Some(fp)) => cache
            .codec_with(
                CodecKey {
                    view_fp: fp,
                    attr,
                    bins: cfg.bins,
                    strategy: cfg.strategy,
                },
                build,
            )
            .ok(),
        _ => build().ok().map(Arc::new),
    }
}

/// Non-null frequency vector (indexed by code) of `codes`.
fn code_frequencies(codes: &[u32], cardinality: usize) -> Vec<f64> {
    let mut freq = vec![0.0f64; cardinality];
    for &c in codes {
        if c != NULL_CODE {
            if let Some(slot) = freq.get_mut(c as usize) {
                *slot += 1.0;
            }
        }
    }
    freq
}

/// Ranks candidate next-step attributes against `pivot` over `view`.
///
/// Score = symmetrical uncertainty of the `pivot × attr` contingency table
/// over the current rows. Attributes that are constant (or all-null) over
/// the view score exactly 0 and are dropped — refining a view can only
/// *remove* candidates, never resurrect one (monotonicity). Ties break on
/// ascending column index, making the full ranking deterministic.
pub fn suggest_next(
    view: &View<'_>,
    pivot: usize,
    cfg: &SuggestConfig,
    cache: Option<&StatsCache>,
) -> Result<NextReport, SuggestError> {
    let started = Instant::now();
    let table = view.table();
    let schema = table.schema();
    if pivot >= schema.len() {
        return Err(SuggestError::PivotOutOfRange {
            pivot,
            columns: schema.len(),
        });
    }
    let stats_before = cache.map(|c| c.stats());
    let view_fp = cache.map(|_| view.fingerprint());

    let pivot_codec = codec_for(view, view_fp, pivot, cfg, cache);
    let pivot_codes: Vec<u32> = match &pivot_codec {
        Some(codec) => codec.encode_rows(table.column(pivot), view.row_ids()),
        None => Vec::new(),
    };
    let pivot_card = pivot_codec.as_ref().map(|c| c.cardinality()).unwrap_or(0);

    let candidates: Vec<usize> = schema
        .queriable_indices()
        .into_iter()
        .filter(|&a| a != pivot)
        .collect();

    let threads = dbex_par::resolve_threads(cfg.threads);
    let scored: Vec<Option<NextSuggestion>> = dbex_par::par_map(threads, &candidates, |_, &attr| {
        let codec = codec_for(view, view_fp, attr, cfg, cache)?;
        let codes = codec.encode_rows(table.column(attr), view.row_ids());
        let freq = code_frequencies(&codes, codec.cardinality());
        let live = freq.iter().filter(|&&f| f > 0.0).count();
        let h_attr = entropy(&freq);
        if h_attr <= 0.0 {
            // Constant or all-null over the current view: eliminated.
            return None;
        }
        let contingency = |rows: usize, cols: usize| {
            let mut t = ContingencyTable::new(rows, cols);
            t.fill_pairs(&pivot_codes, &codes, NULL_CODE);
            t
        };
        let table = match (cache, view_fp) {
            (Some(cache), Some(fp)) => cache.contingency_with(
                ContingencyKey {
                    view_fp: fp,
                    class_ctx: suggest_class_ctx(pivot),
                    attr,
                    bins: cfg.bins,
                    strategy: cfg.strategy,
                },
                || Some(contingency(pivot_card, codec.cardinality())),
            )?,
            _ => Arc::new(contingency(pivot_card, codec.cardinality())),
        };
        Some(NextSuggestion {
            attr,
            name: schema.field(attr).name.clone(),
            score: symmetrical_uncertainty(&table),
            gain: information_gain(&table),
            entropy: h_attr,
            cardinality: live,
        })
    });

    let mut suggestions: Vec<NextSuggestion> = scored.into_iter().flatten().collect();
    // Deterministic tie-break: score desc (total order on f64), attr asc.
    suggestions.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.attr.cmp(&b.attr)));
    let candidates = suggestions.len();
    suggestions.truncate(cfg.limit);

    let (hits, misses) = match (cache, stats_before) {
        (Some(c), Some(before)) => {
            let after = c.stats();
            (
                after.hits.saturating_sub(before.hits),
                after.misses.saturating_sub(before.misses),
            )
        }
        _ => (0, 0),
    };
    let elapsed = started.elapsed();
    dbex_obs::histogram!("suggest.rank_ms", RANK_MS_BOUNDS).observe_ms(elapsed);
    dbex_obs::counter!("suggest.next.calls").incr(1);
    dbex_obs::counter!("suggest.cache_hit").incr(hits);
    dbex_obs::counter!("suggest.cache_miss").incr(misses);

    Ok(NextReport {
        pivot,
        pivot_name: schema.field(pivot).name.clone(),
        view_rows: view.len(),
        candidates,
        suggestions,
        cache_hits: hits,
        cache_misses: misses,
        elapsed,
    })
}

/// Ranks queriable attributes matching `partial` (case-insensitive prefix)
/// as candidates to type next in a `WHERE` clause.
///
/// Score = *coverage × discriminativeness*: the fraction of view rows where
/// the attribute is non-null, times its normalized entropy
/// `H(a) / ln(cardinality)` over the current view. An attribute that is
/// constant over the view (nothing left to discriminate) scores 0 and is
/// dropped. Ties break on ascending column index.
pub fn complete_attribute(
    view: &View<'_>,
    partial: &str,
    cfg: &SuggestConfig,
    cache: Option<&StatsCache>,
) -> Vec<CompletionItem> {
    let started = Instant::now();
    let table = view.table();
    let schema = table.schema();
    let view_fp = cache.map(|_| view.fingerprint());
    let needle = partial.to_ascii_lowercase();

    let mut scored: Vec<(usize, f64, CompletionItem)> = Vec::new();
    for attr in schema.queriable_indices() {
        let name = &schema.field(attr).name;
        if !name.to_ascii_lowercase().starts_with(&needle) {
            continue;
        }
        let Some(codec) = codec_for(view, view_fp, attr, cfg, cache) else {
            continue;
        };
        let codes = codec.encode_rows(table.column(attr), view.row_ids());
        let freq = code_frequencies(&codes, codec.cardinality());
        let non_null: f64 = freq.iter().sum();
        let live = freq.iter().filter(|&&f| f > 0.0).count();
        if live < 2 || view.is_empty() {
            continue;
        }
        let coverage = non_null / view.len() as f64;
        let discrimination = entropy(&freq) / (live as f64).ln();
        let score = coverage * discrimination;
        if score <= 0.0 {
            continue;
        }
        scored.push((
            attr,
            score,
            CompletionItem {
                text: name.clone(),
                score,
                detail: format!("{live} values, {:.0}% coverage", coverage * 100.0),
            },
        ));
    }
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let items: Vec<CompletionItem> = scored
        .into_iter()
        .take(cfg.limit)
        .map(|(_, _, item)| item)
        .collect();
    dbex_obs::histogram!("suggest.rank_ms", RANK_MS_BOUNDS).observe_ms(started.elapsed());
    dbex_obs::counter!("suggest.complete.calls").incr(1);
    items
}

/// Ranks values of `attr` matching `partial` (case-insensitive prefix) as
/// candidates for the right-hand side of `WHERE attr =`.
///
/// Score = the value's frequency over the *current* view (a completion the
/// data cannot satisfy never appears — every suggested predicate has a
/// non-empty result). Ties break on ascending code id, which for
/// dictionary-encoded columns is first-appearance order and for binned
/// numerics is bin order.
pub fn complete_value(
    view: &View<'_>,
    attr: &str,
    partial: &str,
    cfg: &SuggestConfig,
    cache: Option<&StatsCache>,
) -> Result<Vec<CompletionItem>, SuggestError> {
    let started = Instant::now();
    let table = view.table();
    let schema = table.schema();
    let col = schema
        .index_of(attr)
        .map_err(|_| SuggestError::UnknownAttribute(attr.to_owned()))?;
    let view_fp = cache.map(|_| view.fingerprint());
    let Some(codec) = codec_for(view, view_fp, col, cfg, cache) else {
        return Ok(Vec::new());
    };
    let codes = codec.encode_rows(table.column(col), view.row_ids());
    let freq = code_frequencies(&codes, codec.cardinality());
    let non_null: f64 = freq.iter().sum();
    if non_null <= 0.0 {
        return Ok(Vec::new());
    }
    let needle = partial.to_ascii_lowercase();
    let mut items: Vec<CompletionItem> = Vec::new();
    for (code, &count) in freq.iter().enumerate() {
        if count <= 0.0 {
            continue;
        }
        let label = codec.label(code as u32);
        if !label.to_ascii_lowercase().starts_with(&needle) {
            continue;
        }
        items.push(CompletionItem {
            text: label.to_owned(),
            score: count / non_null,
            detail: format!("{count:.0} rows"),
        });
    }
    // Codes iterate ascending already; stable sort keeps code order on ties.
    items.sort_by(|a, b| b.score.total_cmp(&a.score));
    items.truncate(cfg.limit);
    dbex_obs::histogram!("suggest.rank_ms", RANK_MS_BOUNDS).observe_ms(started.elapsed());
    dbex_obs::counter!("suggest.complete.calls").incr(1);
    Ok(items)
}

/// What kind of completion a partial `WHERE` prefix calls for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionMode {
    /// The cursor is on an attribute name (possibly empty).
    Attribute {
        /// The partial attribute text typed so far.
        partial: String,
    },
    /// The cursor is after `attr =` (or another comparison operator).
    Value {
        /// The attribute on the left of the operator.
        attr: String,
        /// The partial value text typed so far (quotes stripped).
        partial: String,
    },
}

/// Structural analysis of a partial query prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixAnalysis {
    /// Table named after `FROM`, if present.
    pub table: Option<String>,
    /// The complete predicate clauses *before* the partial one, verbatim —
    /// the caller parses this to refine the view the completion ranks over.
    pub context: Option<String>,
    /// What to complete at the cursor.
    pub mode: CompletionMode,
}

/// Splits `text` on top-level occurrences of the case-insensitive keyword
/// `kw` (whole-word, outside single-quoted strings). Returns the fragments.
fn split_keyword<'a>(text: &'a str, keywords: &[&str]) -> Vec<&'a str> {
    let bytes = text.as_bytes();
    let mut fragments = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    let mut in_string = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if b == b'\'' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        if b == b'\'' {
            in_string = true;
            i += 1;
            continue;
        }
        let mut matched = false;
        for kw in keywords {
            let k = kw.len();
            // Byte-wise compare: `i` walks bytes and may sit mid-char in
            // multi-byte input, where a str slice would panic. A match
            // means the span is pure ASCII, so the fragment boundaries
            // pushed below are always char boundaries.
            if i + k <= bytes.len()
                && bytes[i..i + k].eq_ignore_ascii_case(kw.as_bytes())
                && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_')
                && (i + k == bytes.len()
                    || !bytes[i + k].is_ascii_alphanumeric() && bytes[i + k] != b'_')
            {
                fragments.push(&text[start..i]);
                start = i + k;
                i += k;
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1;
        }
    }
    fragments.push(&text[start..]);
    fragments
}

/// Finds the last top-level occurrence of whole-word `kw` in `text`
/// (case-insensitive, outside single-quoted strings). Returns the byte
/// offset of the keyword's first character.
fn rfind_keyword(text: &str, kw: &str) -> Option<usize> {
    let fragments = split_keyword(text, &[kw]);
    if fragments.len() < 2 {
        return None;
    }
    // Offset of the start of the final fragment minus the keyword itself.
    let last = fragments[fragments.len() - 1];
    let tail_start = last.as_ptr() as usize - text.as_ptr() as usize;
    Some(tail_start - kw.len())
}

/// Analyzes a partial statement prefix (`... FROM t WHERE a = 'x' AND b`)
/// and determines what the user is in the middle of typing.
///
/// Pure string analysis — the prefix is by definition not a parseable
/// statement, so this never goes through the query parser. Single-quoted
/// strings are respected; keywords match case-insensitively.
pub fn analyze_prefix(prefix: &str) -> PrefixAnalysis {
    let text = prefix.trim_end_matches(';');

    // Table: the word after the last top-level FROM.
    let table = rfind_keyword(text, "FROM").and_then(|at| {
        text[at + 4..]
            .split_whitespace()
            .next()
            .map(|w| w.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_').to_owned())
            .filter(|w| !w.is_empty())
    });

    // Everything after the last top-level WHERE is predicate territory.
    let after_where = match rfind_keyword(text, "WHERE") {
        Some(at) => &text[at + 5..],
        None => {
            return PrefixAnalysis {
                table,
                context: None,
                mode: CompletionMode::Attribute {
                    partial: String::new(),
                },
            }
        }
    };

    // Split the predicate tail into clauses on AND/OR; the final fragment
    // is the one being typed, everything before it is complete context.
    let clauses = split_keyword(after_where, &["AND", "OR"]);
    let partial_clause = clauses[clauses.len() - 1].trim();
    let context = if clauses.len() > 1 {
        // Everything up to the end of the previous fragment (i.e. the text
        // before the final AND/OR connector) is the complete context.
        let prev = clauses[clauses.len() - 2];
        let prev_end = prev.as_ptr() as usize - after_where.as_ptr() as usize + prev.len();
        let ctx = after_where[..prev_end].trim();
        (!ctx.is_empty()).then(|| ctx.to_owned())
    } else {
        None
    };

    // Inside the partial clause: a comparison operator flips us to value
    // completion. Scan outside quotes for = < > (and != / <= / >=).
    let bytes = partial_clause.as_bytes();
    let mut in_string = false;
    let mut op_at = None;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if b == b'\'' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'\'' => in_string = true,
            b'=' | b'<' | b'>' => {
                op_at = Some(i);
                break;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                op_at = Some(i);
                break;
            }
            _ => {}
        }
    }

    let mode = match op_at {
        Some(at) => {
            let attr = partial_clause[..at].trim().to_owned();
            let mut rest = partial_clause[at..].trim_start_matches(['=', '<', '>', '!']).trim();
            rest = rest.strip_prefix('\'').unwrap_or(rest);
            let rest = rest.strip_suffix('\'').unwrap_or(rest);
            CompletionMode::Value {
                attr,
                partial: rest.to_owned(),
            }
        }
        None => CompletionMode::Attribute {
            partial: partial_clause.to_owned(),
        },
    };

    PrefixAnalysis {
        table,
        context,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder, Value};

    fn sample_table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("make", DataType::Categorical),
            Field::new("body", DataType::Categorical),
            Field::new("price", DataType::Float),
        ])
        .unwrap();
        let rows = [
            ("ford", "suv", 30.0),
            ("ford", "suv", 32.0),
            ("ford", "sedan", 22.0),
            ("jeep", "suv", 35.0),
            ("jeep", "suv", 37.0),
            ("kia", "sedan", 18.0),
            ("kia", "sedan", 19.0),
            ("kia", "hatch", 15.0),
        ];
        for (m, body, p) in rows {
            b.push_row(vec![
                Value::Str(m.into()),
                Value::Str(body.into()),
                Value::Float(p),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn next_ranks_correlated_attribute_first() {
        let t = sample_table();
        let view = View::all(&t);
        let report = suggest_next(&view, 0, &SuggestConfig::default(), None).unwrap();
        assert_eq!(report.pivot_name, "make");
        assert!(!report.suggestions.is_empty());
        // body and price both correlate with make; all scores in [0,1].
        for s in &report.suggestions {
            assert!((0.0..=1.0).contains(&s.score), "score {}", s.score);
            assert_ne!(s.attr, 0, "pivot must not suggest itself");
        }
    }

    #[test]
    fn next_drops_constant_attributes() {
        let t = sample_table();
        let view = View::all(&t);
        // Refine to make = kia: body still varies (sedan/hatch) but a
        // further refinement to body = hatch leaves everything constant.
        let refined = view
            .refine(&dbex_table::Predicate::eq("body", "hatch"))
            .unwrap();
        let report = suggest_next(&refined, 0, &SuggestConfig::default(), None).unwrap();
        assert!(
            report.suggestions.iter().all(|s| s.name != "body"),
            "constant attribute must be eliminated: {:?}",
            report.suggestions
        );
    }

    #[test]
    fn next_rejects_bad_pivot() {
        let t = sample_table();
        let view = View::all(&t);
        let err = suggest_next(&view, 99, &SuggestConfig::default(), None).unwrap_err();
        assert!(matches!(err, SuggestError::PivotOutOfRange { .. }));
    }

    #[test]
    fn attribute_completion_prefix_filters() {
        let t = sample_table();
        let view = View::all(&t);
        let items = complete_attribute(&view, "b", &SuggestConfig::default(), None);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].text, "body");
        let all = complete_attribute(&view, "", &SuggestConfig::default(), None);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn value_completion_ranks_by_frequency() {
        let t = sample_table();
        let view = View::all(&t);
        let items = complete_value(&view, "make", "", &SuggestConfig::default(), None).unwrap();
        // ford and kia tie at 3 rows; first-appearance code order breaks it.
        assert_eq!(items[0].text, "ford");
        assert_eq!(items[1].text, "kia");
        assert!((items[0].score - 3.0 / 8.0).abs() < 1e-12);
        let f = complete_value(&view, "make", "f", &SuggestConfig::default(), None).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].text, "ford");
        assert!(complete_value(&view, "nope", "", &SuggestConfig::default(), None).is_err());
    }

    #[test]
    fn prefix_analysis_modes() {
        let a = analyze_prefix("SELECT * FROM cars WHERE ma");
        assert_eq!(a.table.as_deref(), Some("cars"));
        assert_eq!(a.context, None);
        assert_eq!(
            a.mode,
            CompletionMode::Attribute {
                partial: "ma".into()
            }
        );

        let v = analyze_prefix("SELECT * FROM cars WHERE make = 'fo");
        assert_eq!(
            v.mode,
            CompletionMode::Value {
                attr: "make".into(),
                partial: "fo".into()
            }
        );

        let ctx = analyze_prefix("SELECT * FROM cars WHERE body = suv AND make =");
        assert_eq!(ctx.context.as_deref(), Some("body = suv"));
        assert_eq!(
            ctx.mode,
            CompletionMode::Value {
                attr: "make".into(),
                partial: String::new()
            }
        );

        let bare = analyze_prefix("SELECT * FROM cars ");
        assert_eq!(bare.table.as_deref(), Some("cars"));
        assert_eq!(
            bare.mode,
            CompletionMode::Attribute {
                partial: String::new()
            }
        );

        // Keywords inside string literals must not split clauses.
        let s = analyze_prefix("SELECT * FROM t WHERE a = 'x and y' AND b");
        assert_eq!(s.context.as_deref(), Some("a = 'x and y'"));
        assert_eq!(
            s.mode,
            CompletionMode::Attribute {
                partial: "b".into()
            }
        );
    }

    #[test]
    fn class_ctx_distinct_per_pivot() {
        assert_ne!(suggest_class_ctx(0), suggest_class_ctx(1));
    }

    #[test]
    fn prefix_analysis_survives_multibyte_input() {
        // The keyword scanner walks byte offsets; multi-byte chars that
        // straddle a keyword-length window must not panic the slicer.
        for prefix in [
            "ééééééé",
            "SELECT * FROM cafés WHERE é",
            "SELECT * FROM t WHERE é = 'ü' AND ö",
            "whère ánd frôm",
        ] {
            let _ = analyze_prefix(prefix);
        }
        let a = analyze_prefix("SELECT * FROM cafés WHERE dégustation = ");
        assert_eq!(
            a.mode,
            CompletionMode::Value {
                attr: "dégustation".into(),
                partial: String::new()
            }
        );
    }
}
