//! Pluggable trace sinks.
//!
//! A [`TraceSink`] receives every finished [`Trace`]. The in-memory
//! sink backs tests and the obs smoke check; the table and JSON-lines
//! sinks serve the REPL/CLI.

use crate::span::Trace;
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::Mutex;

/// Receives finished traces. Implementations must be cheap — sinks run
/// on the query path.
pub trait TraceSink: Send + Sync {
    fn record(&self, trace: &Trace);
}

/// Buffers every trace in memory; tests and the smoke check inspect it.
#[derive(Default)]
pub struct MemorySink {
    traces: Mutex<Vec<Trace>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copies of every recorded trace, in arrival order.
    pub fn traces(&self) -> Vec<Trace> {
        lock(&self.traces).clone()
    }

    pub fn len(&self) -> usize {
        lock(&self.traces).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every distinct span name seen across all recorded traces.
    pub fn span_names(&self) -> BTreeSet<String> {
        lock(&self.traces)
            .iter()
            .flat_map(|t| t.span_names())
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, trace: &Trace) {
        lock(&self.traces).push(trace.clone());
    }
}

/// Writes each trace as its human-readable table.
pub struct TableSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> TableSink<W> {
    pub fn new(out: W) -> Self {
        TableSink { out: Mutex::new(out) }
    }
}

impl<W: Write + Send> TraceSink for TableSink<W> {
    fn record(&self, trace: &Trace) {
        let _ = lock(&self.out).write_all(trace.render().as_bytes());
    }
}

/// Writes each trace as one line of JSON.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink { out: Mutex::new(out) }
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, trace: &Trace) {
        let mut out = lock(&self.out);
        let _ = out.write_all(trace.to_json().as_bytes());
        let _ = out.write_all(b"\n");
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn tiny_trace() -> Trace {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("cad_build");
            root.child("topk").add("candidates", 2);
        }
        tracer.finish().expect("enabled")
    }

    #[test]
    fn memory_sink_collects_traces_and_names() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        let trace = tiny_trace();
        sink.record(&trace);
        sink.record(&trace);
        assert_eq!(sink.len(), 2);
        let names = sink.span_names();
        assert!(names.contains("cad_build"));
        assert!(names.contains("topk"));
    }

    #[test]
    fn stream_sinks_write_renderings() {
        let trace = tiny_trace();
        let table = TableSink::new(Vec::new());
        table.record(&trace);
        let text = String::from_utf8(table.out.into_inner().unwrap_or_default()).unwrap_or_default();
        assert!(text.contains("cad_build"));

        let json = JsonLinesSink::new(Vec::new());
        json.record(&trace);
        let line = String::from_utf8(json.out.into_inner().unwrap_or_default()).unwrap_or_default();
        assert!(line.ends_with("]\n"));
        assert!(line.contains("\"name\": \"topk\""));
    }
}
