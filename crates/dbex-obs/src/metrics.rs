//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! All instruments are lock-free atomics; the registry's mutexes are
//! touched only on first registration and when snapshotting. Histogram
//! bucket boundaries are fixed at registration, so rendered output is
//! deterministic modulo the observed timing values themselves (which
//! [`crate::mask_timings`] masks for snapshot comparisons).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn incr(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed value (e.g. "tables currently registered").
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, sorted bucket boundaries.
///
/// An observation `v` lands in the first bucket whose upper bound is
/// `>= v`; values above every bound land in the overflow bucket, and
/// NaN gets a dedicated count — so bucket counts plus the NaN count
/// always sum to the observation count (the property tests pin this).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (last = overflow)
    nan: AtomicU64,
    count: AtomicU64,
    sum_micros: AtomicU64, // micro-unit integer sum of finite values
}

impl Histogram {
    /// Builds a histogram. Non-finite bounds are dropped and the rest
    /// sorted and deduplicated, so the layout is always well-formed.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            nan: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_nan() {
            self.nan.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            // Accumulate in millionths so the sum is an exact integer add.
            let micros = (v * 1e6).clamp(0.0, u64::MAX as f64) as u64;
            self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        }
    }

    /// Observes a duration in milliseconds (the `_ms` naming contract).
    pub fn observe_ms(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64() * 1e3);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            nan: self.nan.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub nan: u64,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Bucket counts plus the NaN count — always equals `count`.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.nan
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `.metrics` table: one line per
    /// instrument, sorted by name, zero-valued instruments included.
    pub fn render(&self) -> String {
        let mut out = String::from("metrics registry\n");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("  (empty)\n");
            return out;
        }
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  counter    {name:<width$}  {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  gauge      {name:<width$}  {value}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "  histogram  {name:<width$}  count={} sum={:.3}", h.count, h.sum);
            for (i, n) in h.buckets.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = write!(out, " le{b}:{n}");
                    }
                    None => {
                        let _ = write!(out, " inf:{n}");
                    }
                }
            }
            let _ = writeln!(out, " nan:{}", h.nan);
        }
        out
    }
}

/// The registry: named instruments, first registration wins.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.gauges)
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`. The bounds of the *first* caller
    /// win; later registrations get the existing instrument.
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.snapshot()))
                .collect(),
        }
    }

    /// Shorthand for `snapshot().render()`.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// The process-wide registry (what `counter!` / `gauge!` and the REPL's
/// `.metrics` use).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Looks up (once per call site) and returns the global counter `name`.
/// Expands to an `&'static Counter`, so the hot path is one relaxed
/// atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Looks up (once per call site) and returns the global gauge `name`.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Looks up (once per call site) and returns the global histogram `name`
/// with the given bucket bounds (first registration's bounds win, as with
/// [`Registry::histogram`]).
#[macro_export]
macro_rules! histogram {
    ($name:literal, $bounds:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().histogram($name, $bounds))
    }};
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        reg.counter("a.calls").incr(2);
        reg.counter("a.calls").incr(3);
        reg.gauge("b.level").set(7);
        reg.gauge("b.level").add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a.calls"], 5);
        assert_eq!(snap.gauges["b.level"], 5);
    }

    #[test]
    fn histogram_buckets_cover_the_line() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ms", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 5000.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.total(), 8);
        assert_eq!(snap.buckets, vec![3, 1, 1, 2]); // -inf, 0.5, 1.0 | 5 | 50 | 5000, +inf
        assert_eq!(snap.nan, 1);
    }

    #[test]
    fn histogram_bounds_are_sanitized() {
        let h = Histogram::new(&[10.0, f64::NAN, 1.0, 10.0, f64::INFINITY]);
        let snap = h.snapshot();
        assert_eq!(snap.bounds, vec![1.0, 10.0]);
        assert_eq!(snap.buckets.len(), 3);
    }

    #[test]
    fn first_histogram_registration_wins() {
        let reg = Registry::new();
        let a = reg.histogram("h", &[1.0]);
        let b = reg.histogram("h", &[1.0, 2.0, 3.0]);
        a.observe(0.5);
        assert_eq!(b.snapshot().bounds, vec![1.0]);
        assert_eq!(b.snapshot().count, 1);
    }

    #[test]
    fn render_lists_instruments_sorted() {
        let reg = Registry::new();
        reg.counter("z.last").incr(1);
        reg.counter("a.first").incr(9);
        reg.gauge("m.mid").set(-3);
        reg.histogram("lat_ms", &[5.0]).observe(2.0);
        let text = reg.render();
        let a = text.find("a.first").expect("a.first rendered");
        let z = text.find("z.last").expect("z.last rendered");
        assert!(a < z);
        assert!(text.contains("gauge      m.mid"));
        assert!(text.contains("histogram  lat_ms"));
        assert!(text.contains("le5:1"));
    }

    #[test]
    fn global_macros_hit_the_global_registry() {
        crate::counter!("obs.test.macro").incr(4);
        crate::gauge!("obs.test.gauge").set(2);
        crate::histogram!("obs.test.hist_ms", &[1.0, 10.0]).observe(3.0);
        let snap = global().snapshot();
        assert_eq!(snap.counters["obs.test.macro"], 4);
        assert_eq!(snap.gauges["obs.test.gauge"], 2);
        assert_eq!(snap.histograms["obs.test.hist_ms"].count, 1);
        assert_eq!(snap.histograms["obs.test.hist_ms"].buckets, vec![0, 1, 0]);
    }
}
