//! Hierarchical trace spans with monotonic timing and attached counters.
//!
//! A [`Tracer`] collects raw enter/exit events from any number of threads
//! into one flat log; [`Tracer::finish`] assembles the log into a
//! [`Trace`] tree. Same-named sibling spans are *merged* during assembly
//! (durations and counters summed, occurrences counted in `calls`), so a
//! stage that fans out over a worker pool produces one deterministic node
//! regardless of how many workers ran it.
//!
//! The disabled tracer is a `None` — every operation is an `Option`
//! check, so instrumented code pays nothing when tracing is off.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Index of a raw span inside the tracer's event log.
///
/// Handles stay valid after the span exits; counters may still be added
/// to an exited span (they are summed at assembly time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One raw enter/exit record; assembled into the tree by `finish`.
struct RawSpan {
    name: &'static str,
    parent: Option<usize>,
    start_ns: u64,
    end_ns: Option<u64>,
    counters: Vec<(&'static str, u64)>,
}

struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<RawSpan>>,
}

/// A handle for recording spans. Cloning is cheap (an `Arc`); all clones
/// feed the same event log. `Tracer::disabled()` records nothing.
#[derive(Clone)]
pub struct Tracer(Option<Arc<Inner>>);

impl Tracer {
    /// A tracer that records spans.
    pub fn enabled() -> Self {
        Tracer(Some(Arc::new(Inner {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        })))
    }

    /// A tracer where every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a root span (no parent). Prefer the guard API; the span
    /// exits when the returned [`Span`] drops.
    pub fn root(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            id: self.enter_raw(None, name),
        }
    }

    /// Raw API: opens a span under `parent` (or as a root). Returns
    /// `None` on a disabled tracer.
    pub fn enter_raw(&self, parent: Option<SpanId>, name: &'static str) -> Option<SpanId> {
        let inner = self.0.as_ref()?;
        let start_ns = elapsed_ns(inner.epoch);
        let mut spans = lock(&inner.spans);
        let id = spans.len();
        spans.push(RawSpan {
            name,
            parent: parent.map(|p| p.0),
            start_ns,
            end_ns: None,
            counters: Vec::new(),
        });
        Some(SpanId(id))
    }

    /// Raw API: closes a span. Idempotent — exiting twice keeps the
    /// first exit time.
    pub fn exit_raw(&self, id: SpanId) {
        if let Some(inner) = self.0.as_ref() {
            let end_ns = elapsed_ns(inner.epoch);
            let mut spans = lock(&inner.spans);
            if let Some(span) = spans.get_mut(id.0) {
                if span.end_ns.is_none() {
                    span.end_ns = Some(end_ns);
                }
            }
        }
    }

    /// Raw API: attaches `n` to counter `key` on span `id`. Values for
    /// the same key are summed at assembly time.
    pub fn add_raw(&self, id: SpanId, key: &'static str, n: u64) {
        if let Some(inner) = self.0.as_ref() {
            let mut spans = lock(&inner.spans);
            if let Some(span) = spans.get_mut(id.0) {
                span.counters.push((key, n));
            }
        }
    }

    /// Drains the event log and assembles the span tree. Spans still
    /// open are force-closed at the current time (counted in
    /// [`Trace::forced_closures`]). Returns `None` on a disabled tracer.
    pub fn finish(&self) -> Option<Trace> {
        let inner = self.0.as_ref()?;
        let now = elapsed_ns(inner.epoch);
        let mut raw = std::mem::take(&mut *lock(&inner.spans));
        let mut forced_closures = 0u64;
        for span in &mut raw {
            if span.end_ns.is_none() {
                span.end_ns = Some(now);
                forced_closures += 1;
            }
        }
        // Clamp children into their parent's (already clamped) interval.
        // Parents always precede children in the log, so one forward
        // pass sees final parent bounds.
        for i in 0..raw.len() {
            if let Some(p) = raw[i].parent {
                let (p_start, p_end) = (raw[p].start_ns, raw[p].end_ns.unwrap_or(now));
                let span = &mut raw[i];
                span.start_ns = span.start_ns.clamp(p_start, p_end);
                span.end_ns = span.end_ns.map(|e| e.clamp(span.start_ns, p_end));
            }
        }
        // Index children by parent, preserving log (first-enter) order.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); raw.len()];
        let mut roots = Vec::new();
        for (i, span) in raw.iter().enumerate() {
            match span.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        Some(Trace {
            roots: merge_siblings(&raw, &children, &roots),
            forced_closures,
        })
    }
}

/// Merges a sibling group by name (first-appearance order) into nodes.
fn merge_siblings(raw: &[RawSpan], children: &[Vec<usize>], group: &[usize]) -> Vec<SpanNode> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut by_name: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
    for &i in group {
        let name = raw[i].name;
        by_name.entry(name).or_insert_with(|| {
            order.push(name);
            Vec::new()
        });
        if let Some(v) = by_name.get_mut(name) {
            v.push(i);
        }
    }
    order
        .into_iter()
        .map(|name| {
            let members = &by_name[name];
            let mut counters = BTreeMap::new();
            let mut duration_ns = 0u64;
            let mut grandchildren = Vec::new();
            for &i in members {
                let span = &raw[i];
                duration_ns += span.end_ns.unwrap_or(span.start_ns) - span.start_ns;
                for &(key, n) in &span.counters {
                    *counters.entry(key.to_owned()).or_insert(0) += n;
                }
                grandchildren.extend(children[i].iter().copied());
            }
            SpanNode {
                name: name.to_owned(),
                calls: members.len() as u64,
                duration_ns,
                counters,
                children: merge_siblings(raw, children, &grandchildren),
            }
        })
        .collect()
}

/// A live span guard. Exits (records the end time) on drop. Holds a
/// borrow of its [`Tracer`], so it can be shared with scoped worker
/// threads (`&Span` is `Send + Sync`).
pub struct Span<'t> {
    tracer: &'t Tracer,
    id: Option<SpanId>,
}

impl<'t> Span<'t> {
    /// Opens a child span under this one.
    pub fn child(&self, name: &'static str) -> Span<'t> {
        Span {
            tracer: self.tracer,
            id: self.id.and_then(|id| self.tracer.enter_raw(Some(id), name)),
        }
    }

    /// Adds `n` to this span's counter `key`.
    pub fn add(&self, key: &'static str, n: u64) {
        if let Some(id) = self.id {
            self.tracer.add_raw(id, key, n);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.tracer.exit_raw(id);
        }
    }
}

/// One node of the assembled span tree. Same-named siblings are merged:
/// `calls` counts the raw spans folded in, `duration_ns` and `counters`
/// are their sums. Children keep first-enter order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: String,
    pub calls: u64,
    pub duration_ns: u64,
    pub counters: BTreeMap<String, u64>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A counter's value (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }
}

/// An assembled, immutable span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub roots: Vec<SpanNode>,
    /// Spans still open when `finish` ran (0 for a well-nested trace).
    pub forced_closures: u64,
}

impl Trace {
    /// Finds the first node named `name` (depth-first).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for node in nodes {
                if node.name == name {
                    return Some(node);
                }
                if let Some(hit) = walk(&node.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.roots, name)
    }

    /// Total raw spans folded into the tree (sum of `calls`).
    pub fn total_spans(&self) -> u64 {
        fn walk(nodes: &[SpanNode]) -> u64 {
            nodes.iter().map(|n| n.calls + walk(&n.children)).sum()
        }
        walk(&self.roots)
    }

    /// Every distinct span name in the tree.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(nodes: &[SpanNode], out: &mut Vec<String>) {
            for node in nodes {
                if !out.contains(&node.name) {
                    out.push(node.name.clone());
                }
                walk(&node.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.roots, &mut out);
        out
    }

    /// The structure-only view of the tree: names, calls, and counters
    /// but no durations. Byte-identical across thread counts for a
    /// deterministic pipeline — the determinism tests compare this.
    pub fn structural_digest(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for node in nodes {
                let _ = write!(out, "{:indent$}{} calls={}", "", node.name, node.calls, indent = depth * 2);
                for (key, value) in &node.counters {
                    let _ = write!(out, " {key}={value}");
                }
                out.push('\n');
                walk(&node.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, &mut out);
        out
    }

    /// Human-readable table, one row per node, children indented.
    pub fn render(&self) -> String {
        fn name_width(nodes: &[SpanNode], depth: usize) -> usize {
            nodes
                .iter()
                .map(|n| (depth * 2 + n.name.len()).max(name_width(&n.children, depth + 1)))
                .max()
                .unwrap_or(0)
        }
        fn walk(nodes: &[SpanNode], depth: usize, width: usize, out: &mut String) {
            for node in nodes {
                let indented = format!("{:indent$}{}", "", node.name, indent = depth * 2);
                let _ = write!(
                    out,
                    "{indented:<width$}  {:>5}  {:>9}",
                    node.calls,
                    fmt_ns(node.duration_ns)
                );
                for (key, value) in &node.counters {
                    let _ = write!(out, " {key}={value}");
                }
                out.push('\n');
                walk(&node.children, depth + 1, width, out);
            }
        }
        let width = name_width(&self.roots, 0).max("span".len());
        let mut out = format!("{:<width$}  {:>5}  {:>9}\n", "span", "calls", "time");
        walk(&self.roots, 0, width, &mut out);
        out
    }

    /// The tree as a JSON array of root objects (durations in ms).
    pub fn to_json(&self) -> String {
        fn node_json(node: &SpanNode, out: &mut String) {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"calls\": {}, \"duration_ms\": {:.3}, \"counters\": {{",
                node.name,
                node.calls,
                node.duration_ns as f64 / 1e6
            );
            for (i, (key, value)) in node.counters.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{key}\": {value}");
            }
            out.push_str("}, \"children\": [");
            for (i, child) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                node_json(child, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("[");
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            node_json(root, &mut out);
        }
        out.push(']');
        out
    }
}

/// Formats a nanosecond duration the way `Duration`'s `{:.1?}` does.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Locks a mutex, recovering from poisoning (counters can't be torn).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let root = tracer.root("x");
        root.add("n", 3);
        let child = root.child("y");
        drop(child);
        drop(root);
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn guards_build_a_nested_tree() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("build");
            root.add("rows", 10);
            {
                let stage = root.child("stage");
                stage.add("items", 2);
                stage.add("items", 3);
            }
            root.child("stage2");
        }
        let trace = tracer.finish().expect("enabled");
        assert_eq!(trace.forced_closures, 0);
        assert_eq!(trace.roots.len(), 1);
        let root = &trace.roots[0];
        assert_eq!(root.name, "build");
        assert_eq!(root.counter("rows"), 10);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "stage");
        assert_eq!(root.children[0].counter("items"), 5);
        assert_eq!(trace.find("stage2").map(|n| n.calls), Some(1));
    }

    #[test]
    fn same_named_siblings_merge() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("build");
            for size in [4u64, 6, 8] {
                let worker = root.child("partition");
                worker.add("rows", size);
            }
        }
        let trace = tracer.finish().expect("enabled");
        let node = trace.find("partition").expect("merged node");
        assert_eq!(node.calls, 3);
        assert_eq!(node.counter("rows"), 18);
        assert_eq!(trace.total_spans(), 4);
    }

    #[test]
    fn merging_works_across_threads() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("build");
            std::thread::scope(|scope| {
                for i in 0..4u64 {
                    let root = &root;
                    scope.spawn(move || {
                        let worker = root.child("worker");
                        worker.add("items", i + 1);
                    });
                }
            });
        }
        let trace = tracer.finish().expect("enabled");
        let node = trace.find("worker").expect("merged node");
        assert_eq!(node.calls, 4);
        assert_eq!(node.counter("items"), 10);
        assert_eq!(trace.structural_digest(), "build calls=1\n  worker calls=4 items=10\n");
    }

    #[test]
    fn unclosed_spans_are_force_closed() {
        let tracer = Tracer::enabled();
        let a = tracer.enter_raw(None, "a").expect("enabled");
        let b = tracer.enter_raw(Some(a), "b").expect("enabled");
        tracer.exit_raw(b);
        tracer.exit_raw(b); // double exit is a no-op
        let trace = tracer.finish().expect("enabled");
        assert_eq!(trace.forced_closures, 1);
        assert_eq!(trace.total_spans(), 2);
    }

    #[test]
    fn render_and_json_contain_every_span() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("cad_build");
            let stage = root.child("topk");
            stage.add("candidates", 12);
        }
        let trace = tracer.finish().expect("enabled");
        let text = trace.render();
        assert!(text.contains("cad_build"));
        assert!(text.contains("candidates=12"));
        let json = trace.to_json();
        assert!(json.contains("\"name\": \"topk\""));
        assert!(json.contains("\"candidates\": 12"));
    }
}
