//! `dbex-obs` — first-party, zero-dependency observability.
//!
//! Three pieces:
//!
//! * [`span`] — hierarchical trace spans ([`Tracer`] / [`Span`] /
//!   [`Trace`]) with monotonic timing and attached counters. Same-named
//!   sibling spans merge at assembly, so per-worker spans from the
//!   `dbex-par` pool collapse into one thread-count-invariant node.
//! * [`metrics`] — a process-wide registry of counters, gauges, and
//!   fixed-bucket histograms ([`global`], the [`counter!`] / [`gauge!`]
//!   macros). Instruments are relaxed atomics; the hot path pays one
//!   atomic add.
//! * [`sink`] — pluggable [`TraceSink`]s: in-memory for tests, table
//!   and JSON-lines for the REPL/CLI.
//!
//! # Determinism contract
//!
//! Everything except wall-clock time is deterministic for a fixed
//! input: span names, call counts, counters, histogram bucket layout,
//! and rendering order. [`mask_timings`] removes the wall-clock parts
//! (durations, timing-histogram contents, parallelism lines) so
//! snapshot tests can compare the rest byte-for-byte.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod metrics;
pub mod sink;
pub mod span;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use sink::{JsonLinesSink, MemorySink, TableSink, TraceSink};
pub use span::{fmt_ns, Span, SpanId, SpanNode, Trace, Tracer};

/// Masks every wall-clock-dependent field in rendered observability
/// output, leaving the deterministic structure intact:
///
/// * duration tokens (`123ns`, `4.5µs`/`4.5us`, `6.7ms`, `1.20s`)
///   become `<T>`, and any run of spaces directly before one collapses
///   to a single space — column alignment computed from token width
///   must not leak timing into masked output;
/// * `histogram` lines whose metric name ends in `_ns`/`_us`/`_ms`
///   have their value part replaced (bucket contents are timing);
/// * everything after `parallelism:` is replaced (thread count is an
///   execution detail, not an output property);
/// * everything after `kernel dispatch:` and the value of the
///   `cluster.kernel_dispatch` gauge are replaced (the SIMD family is a
///   property of the host CPU).
///
/// Golden snapshot tests compare `mask_timings(rendered)` so that span
/// names, row counters, cache hit/miss, and degradation levels stay
/// pinned while timings float.
pub fn mask_timings(text: &str) -> String {
    let mut out: Vec<String> = text.lines().map(mask_line).collect();
    if text.ends_with('\n') {
        out.push(String::new());
    }
    out.join("\n")
}

fn mask_line(line: &str) -> String {
    let trimmed = line.trim_start();
    let indent = &line[..line.len() - trimmed.len()];
    if let Some(rest) = trimmed.strip_prefix("histogram") {
        if let Some(name) = rest.split_whitespace().next() {
            if name.ends_with("_ns") || name.ends_with("_us") || name.ends_with("_ms") {
                return format!("{indent}histogram  {name}  <T>");
            }
        }
    }
    if let Some(pos) = line.find("parallelism:") {
        return format!("{}parallelism: <T>", &line[..pos]);
    }
    if let Some(pos) = line.find("kernel dispatch:") {
        // Which SIMD family dispatched is a property of the host CPU,
        // not of the output — mask it like the thread count.
        return format!("{}kernel dispatch: <T>", &line[..pos]);
    }
    if line.contains("cluster.kernel_dispatch") {
        // Same story for the gauge in the metrics registry dump.
        return format!("{indent}gauge      cluster.kernel_dispatch  <T>");
    }
    mask_durations(line)
}

/// Replaces number+unit duration tokens with `<T>`.
fn mask_durations(line: &str) -> String {
    const UNITS: [&str; 5] = ["ns", "µs", "us", "ms", "s"];
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < chars.len() {
        let boundary_before = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '.');
        if chars[i].is_ascii_digit() && boundary_before {
            let mut j = i;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                j += 1;
            }
            let unit = UNITS.iter().find_map(|u| {
                let unit: Vec<char> = u.chars().collect();
                let after = j + unit.len();
                let matches = chars[j..].starts_with(&unit);
                let bounded = after >= chars.len() || !chars[after].is_alphanumeric();
                (matches && bounded).then_some(unit.len())
            });
            if let Some(len) = unit {
                // Right-aligned columns pad with spaces that depend on
                // the token's width; collapse them so masked output is
                // alignment-independent.
                while out.ends_with("  ") {
                    out.pop();
                }
                out.push_str("<T>");
                i = j + len;
            } else {
                out.extend(&chars[i..j]);
                i = j;
            }
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_duration_tokens_of_every_unit() {
        let text = "a 123ns b 4.5µs c 4.5us d 6.7ms e 1.20s f";
        assert_eq!(mask_timings(text), "a <T> b <T> c <T> d <T> e <T> f");
    }

    #[test]
    fn leaves_plain_numbers_and_words_alone() {
        let text = "rows_input=6000 others 5 values k5s posts";
        assert_eq!(mask_timings(text), text);
    }

    #[test]
    fn masks_timing_histogram_lines_wholesale() {
        let text = "  histogram  cad.build_ms  count=1 sum=42.137 le5:0 inf:1 nan:0\n";
        assert_eq!(mask_timings(text), "  histogram  cad.build_ms  <T>\n");
        let counts = "  histogram  rows_per_build  count=1 sum=6000.000 le10000:1 nan:0\n";
        assert_eq!(mask_timings(counts), counts);
    }

    #[test]
    fn masks_parallelism_lines() {
        let text = "  parallelism: 8 threads\n";
        assert_eq!(mask_timings(text), "  parallelism: <T>\n");
    }

    #[test]
    fn masks_the_timings_summary_line() {
        let text = "  timings: compare-attrs 1.2ms | iunit-gen 345.6µs | other 12ns";
        assert_eq!(
            mask_timings(text),
            "  timings: compare-attrs <T> | iunit-gen <T> | other <T>"
        );
    }

    #[test]
    fn collapses_alignment_padding_before_durations() {
        // Two renders of the same tree with differently-wide durations
        // must mask to the same bytes.
        assert_eq!(mask_timings("name      1.2ms"), "name <T>");
        assert_eq!(mask_timings("name    987.3µs"), "name <T>");
    }

    #[test]
    fn preserves_trailing_newline_presence() {
        assert_eq!(mask_timings("x\n"), "x\n");
        assert_eq!(mask_timings("x"), "x");
    }
}
