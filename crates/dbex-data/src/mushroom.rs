//! Synthetic mushroom dataset (UCI Mushroom stand-in).
//!
//! 8,124 specimens × 23 categorical attributes, mirroring the UCI schema.
//! The generator plants the statistical structure the paper's three user
//! study tasks (Section 6.2) require, so the tasks have computable ground
//! truth:
//!
//! * **Task 1 (simple classifier)** — `Bruises` is strongly predicted by a
//!   small number of attribute values (`StalkSurfaceAboveRing = smooth`,
//!   `RingType = pendant`), so a 2-value classifier can reach high F1 — and
//!   `Odor` nearly determines `Class`, as in the real data.
//! * **Task 2 (most similar value pair)** — `GillColor` values `brown` and
//!   `white` are emitted from a common latent with a fair coin, so their
//!   conditional profiles against every other attribute are statistically
//!   identical, making them the uniquely most-similar pair among
//!   `{buff, white, brown, green}`.
//! * **Task 3 (alternative search condition)** — specimens carry a latent
//!   *group* that simultaneously drives `StalkShape`, `SporePrintColor`,
//!   `Habitat` and `Population`, so a selection like `StalkShape = enlarging
//!   AND SporePrintColor = chocolate` has close alternatives on other
//!   attributes; additionally `StalkColorBelowRing` copies
//!   `StalkColorAboveRing` 95% of the time (twin attributes, as in the real
//!   data's highly correlated stalk attributes).

use dbex_table::{DataType, Field, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of rows in the canonical dataset (matches UCI).
pub const MUSHROOM_ROWS: usize = 8_124;

/// Seeded generator for the synthetic mushroom table.
#[derive(Debug, Clone)]
pub struct MushroomGenerator {
    seed: u64,
}

impl MushroomGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        MushroomGenerator { seed }
    }

    /// Generates the canonical 8,124-row table.
    pub fn generate_default(&self) -> Table {
        self.generate(MUSHROOM_ROWS)
    }

    /// Generates `n` specimens. Deterministic in `(seed, n)`.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = TableBuilder::new(Self::fields()).expect("static schema is valid");
        for _ in 0..n {
            builder
                .push_row(specimen(&mut rng))
                .expect("generated row matches schema");
        }
        builder.finish()
    }

    /// The 23-attribute schema.
    pub fn fields() -> Vec<Field> {
        [
            "Class",
            "CapShape",
            "CapSurface",
            "CapColor",
            "Bruises",
            "Odor",
            "GillAttachment",
            "GillSpacing",
            "GillSize",
            "GillColor",
            "StalkShape",
            "StalkRoot",
            "StalkSurfaceAboveRing",
            "StalkSurfaceBelowRing",
            "StalkColorAboveRing",
            "StalkColorBelowRing",
            "VeilType",
            "VeilColor",
            "RingNumber",
            "RingType",
            "SporePrintColor",
            "Population",
            "Habitat",
        ]
        .iter()
        .map(|name| Field::new(*name, DataType::Categorical))
        .collect()
    }
}

/// Weighted categorical draw.
fn choose<'a>(rng: &mut StdRng, options: &[(&'a str, f64)]) -> &'a str {
    let total: f64 = options.iter().map(|o| o.1).sum();
    let mut target = rng.random_range(0.0..total);
    for &(value, weight) in options {
        if target < weight {
            return value;
        }
        target -= weight;
    }
    options[options.len() - 1].0
}

/// Draw the group-determined base value with probability `p`, else uniform
/// over `values`.
fn group_value<'a>(rng: &mut StdRng, values: &[&'a str], base: usize, p: f64) -> &'a str {
    if rng.random_range(0.0..1.0) < p {
        values[base % values.len()]
    } else {
        values[rng.random_range(0..values.len())]
    }
}

fn specimen(rng: &mut StdRng) -> Vec<Value> {
    // Latent class and group. Six global groups (3 per class) drive the
    // conditional dependencies between attributes.
    let poisonous = rng.random_range(0.0..1.0) < 0.482;
    let g = rng.random_range(0..3usize);
    let cg = if poisonous { 3 + g } else { g };

    // Bruises: strongly group-dependent (groups 0, 2, 4 bruise).
    let bruises_p = match cg {
        0 => 0.92,
        2 => 0.85,
        4 => 0.80,
        1 => 0.15,
        3 => 0.10,
        _ => 0.08,
    };
    let bruises = rng.random_range(0.0..1.0) < bruises_p;

    // Odor nearly determines class.
    let odor = if poisonous {
        choose(
            rng,
            &[
                ("foul", 0.45),
                ("pungent", 0.18),
                ("creosote", 0.14),
                ("fishy", 0.10),
                ("musty", 0.05),
                ("none", 0.08),
            ],
        )
    } else {
        choose(
            rng,
            &[("none", 0.62), ("almond", 0.19), ("anise", 0.19)],
        )
    };

    // Stalk surface above the ring tracks bruising; below copies above 95%.
    let surfaces = ["fibrous", "scaly", "silky", "smooth"];
    let above = if bruises {
        choose(rng, &[("smooth", 0.85), ("fibrous", 0.10), ("silky", 0.05)])
    } else {
        choose(rng, &[("silky", 0.45), ("scaly", 0.30), ("fibrous", 0.20), ("smooth", 0.05)])
    };
    let below = if rng.random_range(0.0..1.0) < 0.95 {
        above
    } else {
        surfaces[rng.random_range(0..surfaces.len())]
    };

    // Ring type also tracks bruising (the second classifier signal).
    let ring_type = if bruises {
        choose(rng, &[("pendant", 0.78), ("flaring", 0.12), ("evanescent", 0.10)])
    } else {
        choose(rng, &[("evanescent", 0.50), ("none", 0.30), ("large", 0.20)])
    };

    // Gill color: brown/white share one latent ("light"), giving Task 2 its
    // uniquely similar pair.
    let gill_latent = match cg {
        0 => choose(rng, &[("light", 0.62), ("pink", 0.22), ("gray", 0.16)]),
        1 => choose(rng, &[("light", 0.45), ("gray", 0.35), ("pink", 0.20)]),
        2 => choose(rng, &[("light", 0.52), ("chocolate", 0.28), ("gray", 0.20)]),
        3 => choose(rng, &[("buff", 0.52), ("chocolate", 0.30), ("light", 0.18)]),
        4 => choose(rng, &[("buff", 0.40), ("light", 0.30), ("chocolate", 0.30)]),
        _ => choose(rng, &[("buff", 0.38), ("green", 0.30), ("chocolate", 0.32)]),
    };
    let gill_color = if gill_latent == "light" {
        if rng.random_range(0..2) == 0 {
            "brown"
        } else {
            "white"
        }
    } else {
        gill_latent
    };

    // Task 3 cluster: group-driven stalk shape / spore print / habitat /
    // population.
    let stalk_shape = match cg {
        5 => choose(rng, &[("enlarging", 0.88), ("tapering", 0.12)]),
        2 => choose(rng, &[("enlarging", 0.70), ("tapering", 0.30)]),
        _ => choose(rng, &[("tapering", 0.82), ("enlarging", 0.18)]),
    };
    let spore = match cg {
        5 => choose(rng, &[("chocolate", 0.72), ("white", 0.14), ("brown", 0.14)]),
        3 => choose(rng, &[("white", 0.45), ("chocolate", 0.35), ("buff", 0.20)]),
        4 => choose(rng, &[("purple", 0.40), ("chocolate", 0.30), ("white", 0.30)]),
        0 => choose(rng, &[("black", 0.48), ("brown", 0.40), ("yellow", 0.12)]),
        1 => choose(rng, &[("brown", 0.52), ("black", 0.36), ("orange", 0.12)]),
        _ => choose(rng, &[("black", 0.40), ("brown", 0.30), ("green", 0.30)]),
    };
    let habitats = ["grasses", "leaves", "meadows", "paths", "urban", "woods"];
    let habitat = group_value(rng, &habitats, cg, 0.82);
    let populations = [
        "abundant",
        "clustered",
        "numerous",
        "scattered",
        "several",
        "solitary",
    ];
    let population = group_value(rng, &populations, cg + 1, 0.78);

    // Remaining attributes: moderately group-determined with noise.
    let cap_shapes = ["bell", "conical", "convex", "flat", "knobbed", "sunken"];
    let cap_shape = group_value(rng, &cap_shapes, cg, 0.55);
    let cap_surfaces = ["fibrous", "grooves", "scaly", "smooth"];
    let cap_surface = group_value(rng, &cap_surfaces, cg, 0.50);
    // Cap color: `red` and `pink` come from a shared "warm" latent with a
    // mild class asymmetry — the "slightly harder" similar pair of the
    // study's Task 2B (clearly the most similar pair, but not statistically
    // identical like the gill-color twins).
    let warm_p = match cg {
        0 => 0.30,
        3 => 0.28,
        1 => 0.15,
        4 => 0.12,
        _ => 0.08,
    };
    let cap_color = if rng.random_range(0.0..1.0) < warm_p {
        let red_p = if poisonous { 0.56 } else { 0.44 };
        if rng.random_range(0.0..1.0) < red_p {
            "red"
        } else {
            "pink"
        }
    } else {
        let cap_colors = [
            "brown", "buff", "cinnamon", "gray", "green", "purple", "white", "yellow",
        ];
        group_value(rng, &cap_colors, cg + 2, 0.45)
    };
    let gill_attachment = choose(rng, &[("free", 0.93), ("attached", 0.07)]);
    let gill_spacing = group_value(rng, &["close", "crowded"], cg, 0.60);
    let gill_size = if bruises {
        choose(rng, &[("broad", 0.75), ("narrow", 0.25)])
    } else {
        choose(rng, &[("narrow", 0.60), ("broad", 0.40)])
    };
    let stalk_roots = ["bulbous", "club", "equal", "rooted", "missing"];
    let stalk_root = group_value(rng, &stalk_roots, cg, 0.50);
    let stalk_colors = [
        "brown", "buff", "cinnamon", "gray", "orange", "pink", "red", "white", "yellow",
    ];
    let stalk_color_above = group_value(rng, &stalk_colors, cg * 3, 0.55);
    // Twin attribute for Task 3's "trivially available" alternative.
    let stalk_color_below = if rng.random_range(0.0..1.0) < 0.95 {
        stalk_color_above
    } else {
        stalk_colors[rng.random_range(0..stalk_colors.len())]
    };
    let veil_color = choose(
        rng,
        &[("white", 0.90), ("brown", 0.04), ("orange", 0.03), ("yellow", 0.03)],
    );
    let ring_number = if ring_type == "none" {
        "none"
    } else {
        choose(rng, &[("one", 0.85), ("two", 0.15)])
    };

    vec![
        (if poisonous { "poisonous" } else { "edible" }).into(),
        cap_shape.into(),
        cap_surface.into(),
        cap_color.into(),
        (if bruises { "true" } else { "false" }).into(),
        odor.into(),
        gill_attachment.into(),
        gill_spacing.into(),
        gill_size.into(),
        gill_color.into(),
        stalk_shape.into(),
        stalk_root.into(),
        above.into(),
        below.into(),
        stalk_color_above.into(),
        stalk_color_below.into(),
        "partial".into(),
        veil_color.into(),
        ring_number.into(),
        ring_type.into(),
        spore.into(),
        population.into(),
        habitat.into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::Predicate;

    fn data() -> Table {
        MushroomGenerator::new(2016).generate(4_000)
    }

    #[test]
    fn deterministic_and_shaped() {
        let a = MushroomGenerator::new(1).generate(100);
        let b = MushroomGenerator::new(1).generate(100);
        assert_eq!(a.row(57).unwrap(), b.row(57).unwrap());
        assert_eq!(a.num_columns(), 23);
        let full = MushroomGenerator::new(1).generate_default();
        assert_eq!(full.num_rows(), MUSHROOM_ROWS);
    }

    #[test]
    fn class_balance_roughly_even() {
        let t = data();
        let poisonous = t.filter(&Predicate::eq("Class", "poisonous")).unwrap().len();
        let frac = poisonous as f64 / t.num_rows() as f64;
        assert!((0.42..0.56).contains(&frac), "poisonous fraction {frac}");
    }

    #[test]
    fn odor_nearly_determines_class() {
        let t = data();
        let foul = t.filter(&Predicate::eq("Odor", "foul")).unwrap();
        let foul_poisonous = foul.refine(&Predicate::eq("Class", "poisonous")).unwrap();
        assert!(foul_poisonous.len() == foul.len(), "all foul are poisonous");
        let almond = t.filter(&Predicate::eq("Odor", "almond")).unwrap();
        let almond_edible = almond.refine(&Predicate::eq("Class", "edible")).unwrap();
        assert_eq!(almond_edible.len(), almond.len(), "all almond are edible");
    }

    #[test]
    fn bruises_predicted_by_smooth_stalk_surface() {
        let t = data();
        let smooth = t
            .filter(&Predicate::eq("StalkSurfaceAboveRing", "smooth"))
            .unwrap();
        let smooth_bruised = smooth.refine(&Predicate::eq("Bruises", "true")).unwrap();
        let precision = smooth_bruised.len() as f64 / smooth.len() as f64;
        let bruised = t.filter(&Predicate::eq("Bruises", "true")).unwrap();
        let recall = smooth_bruised.len() as f64 / bruised.len() as f64;
        assert!(precision > 0.85, "precision {precision}");
        assert!(recall > 0.75, "recall {recall}");
    }

    #[test]
    fn twin_stalk_colors_agree() {
        let t = data();
        let above = t.schema().index_of("StalkColorAboveRing").unwrap();
        let below = t.schema().index_of("StalkColorBelowRing").unwrap();
        let agree = (0..t.num_rows())
            .filter(|&r| t.value(r, above) == t.value(r, below))
            .count();
        let frac = agree as f64 / t.num_rows() as f64;
        assert!(frac > 0.90, "agreement {frac}");
    }

    #[test]
    fn brown_and_white_gills_have_matching_profiles() {
        // The planted Task 2 ground truth: conditioned on gill color brown
        // vs white, the class distribution should be nearly identical,
        // while buff diverges strongly.
        let t = data();
        let frac_poisonous = |color: &str| {
            let v = t.filter(&Predicate::eq("GillColor", color)).unwrap();
            let p = v.refine(&Predicate::eq("Class", "poisonous")).unwrap();
            p.len() as f64 / v.len().max(1) as f64
        };
        let brown = frac_poisonous("brown");
        let white = frac_poisonous("white");
        let buff = frac_poisonous("buff");
        assert!((brown - white).abs() < 0.08, "brown {brown} vs white {white}");
        assert!(
            (brown - buff).abs() > 0.3,
            "buff should diverge: brown {brown}, buff {buff}"
        );
    }

    #[test]
    fn task3_alternative_condition_exists() {
        // StalkShape=enlarging AND SporePrintColor=chocolate targets group 5.
        // Habitat (base value of group 5 = "woods") must heavily overlap it.
        let t = data();
        let target = t
            .filter(&Predicate::and(vec![
                Predicate::eq("StalkShape", "enlarging"),
                Predicate::eq("SporePrintColor", "chocolate"),
            ]))
            .unwrap();
        assert!(target.len() > 100, "target selection too small");
        let alt = t
            .filter(&Predicate::and(vec![
                Predicate::eq("Habitat", "woods"),
                Predicate::eq("Class", "poisonous"),
            ]))
            .unwrap();
        let jaccard = target.jaccard(&alt);
        assert!(jaccard > 0.25, "jaccard {jaccard} too low for an alternative");
    }

    #[test]
    fn veil_type_constant() {
        let t = data();
        let col = t.schema().index_of("VeilType").unwrap();
        assert_eq!(t.column(col).cardinality(), 1);
    }
}
