//! Synthetic used-car listings (YahooUsedCar stand-in).
//!
//! 11 attributes: `Make`, `Model`, `BodyType`, `Price`, `Mileage`, `Year`,
//! `Engine`, `Drivetrain`, `Transmission`, `Color`, `FuelEconomy`.
//! `Engine` is marked *hidden* (non-queriable): the paper's Limitation 2
//! example is a user who wants V4 engines but cannot query the attribute
//! directly and must find queriable surrogates via the CAD View.
//!
//! Generation is model-driven: a static catalog of model specs (body type,
//! engine options, drivetrain options, base price) mirrors the structure of
//! the paper's Table 1. Listings draw a model, then a year, then derive
//! mileage from age, price from base price + depreciation, and fuel economy
//! from the engine — producing exactly the conditional dependencies the CAD
//! View is supposed to surface.

use dbex_table::{DataType, Field, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One entry of the model catalog.
struct ModelSpec {
    make: &'static str,
    model: &'static str,
    body: &'static str,
    /// Engine options in preference order (first is most common).
    engines: &'static [&'static str],
    /// Drivetrain options in preference order.
    drivetrains: &'static [&'static str],
    /// New-vehicle base price in dollars.
    base_price: f64,
    /// Relative popularity weight.
    weight: f64,
}

/// The model catalog. Names follow the paper's Table 1 where it lists them
/// (Traverse LT, Equinox LT, Suburban 1500 LT, Escape XLT, Wrangler
/// Unlimited, ...) and plausible fillers elsewhere.
const CATALOG: &[ModelSpec] = &[
    // --- Chevrolet ---
    ModelSpec { make: "Chevrolet", model: "Traverse LT", body: "SUV", engines: &["V6"], drivetrains: &["AWD", "2WD"], base_price: 33_000.0, weight: 3.0 },
    ModelSpec { make: "Chevrolet", model: "Equinox LT", body: "SUV", engines: &["V4", "V6"], drivetrains: &["2WD", "AWD"], base_price: 26_000.0, weight: 4.0 },
    ModelSpec { make: "Chevrolet", model: "Suburban 1500 LT", body: "SUV", engines: &["V8"], drivetrains: &["4WD", "2WD"], base_price: 46_000.0, weight: 2.0 },
    ModelSpec { make: "Chevrolet", model: "Tahoe LT", body: "SUV", engines: &["V8"], drivetrains: &["4WD", "2WD"], base_price: 44_000.0, weight: 2.0 },
    ModelSpec { make: "Chevrolet", model: "Captiva LS", body: "SUV", engines: &["V4"], drivetrains: &["2WD"], base_price: 23_000.0, weight: 2.0 },
    ModelSpec { make: "Chevrolet", model: "Malibu LT", body: "Sedan", engines: &["V4"], drivetrains: &["2WD"], base_price: 23_000.0, weight: 3.0 },
    ModelSpec { make: "Chevrolet", model: "Cruze LS", body: "Sedan", engines: &["V4"], drivetrains: &["2WD"], base_price: 18_000.0, weight: 3.0 },
    ModelSpec { make: "Chevrolet", model: "Silverado 1500", body: "Truck", engines: &["V8", "V6"], drivetrains: &["4WD", "2WD"], base_price: 35_000.0, weight: 3.0 },
    // --- Ford ---
    ModelSpec { make: "Ford", model: "Escape XLT", body: "SUV", engines: &["V6", "V4"], drivetrains: &["2WD", "4WD"], base_price: 25_000.0, weight: 4.0 },
    ModelSpec { make: "Ford", model: "Escape Ltd.", body: "SUV", engines: &["V6", "V4"], drivetrains: &["4WD", "2WD"], base_price: 28_000.0, weight: 2.0 },
    ModelSpec { make: "Ford", model: "Explorer XLT", body: "SUV", engines: &["V6"], drivetrains: &["4WD", "2WD"], base_price: 34_000.0, weight: 3.0 },
    ModelSpec { make: "Ford", model: "Explorer Ltd.", body: "SUV", engines: &["V8", "V6"], drivetrains: &["4WD", "2WD"], base_price: 38_000.0, weight: 1.5 },
    ModelSpec { make: "Ford", model: "Edge Ltd.", body: "SUV", engines: &["V6"], drivetrains: &["AWD", "2WD"], base_price: 32_000.0, weight: 2.0 },
    ModelSpec { make: "Ford", model: "Edge SEL", body: "SUV", engines: &["V6"], drivetrains: &["AWD", "2WD"], base_price: 30_000.0, weight: 2.0 },
    ModelSpec { make: "Ford", model: "Fusion SE", body: "Sedan", engines: &["V4", "V6"], drivetrains: &["2WD"], base_price: 22_000.0, weight: 3.5 },
    ModelSpec { make: "Ford", model: "F-150 XLT", body: "Truck", engines: &["V8", "V6"], drivetrains: &["4WD", "2WD"], base_price: 34_000.0, weight: 4.0 },
    // --- Honda ---
    ModelSpec { make: "Honda", model: "CR-V EX", body: "SUV", engines: &["V4"], drivetrains: &["AWD", "2WD"], base_price: 25_000.0, weight: 4.0 },
    ModelSpec { make: "Honda", model: "Pilot EX-L", body: "SUV", engines: &["V6"], drivetrains: &["4WD", "2WD"], base_price: 33_000.0, weight: 2.5 },
    ModelSpec { make: "Honda", model: "Element EX", body: "SUV", engines: &["V4"], drivetrains: &["2WD", "AWD"], base_price: 22_000.0, weight: 1.5 },
    ModelSpec { make: "Honda", model: "Accord EX", body: "Sedan", engines: &["V4", "V6"], drivetrains: &["2WD"], base_price: 24_000.0, weight: 4.0 },
    ModelSpec { make: "Honda", model: "Civic LX", body: "Sedan", engines: &["V4"], drivetrains: &["2WD"], base_price: 19_000.0, weight: 4.0 },
    // --- Toyota ---
    ModelSpec { make: "Toyota", model: "RAV4 Ltd.", body: "SUV", engines: &["V4", "V6"], drivetrains: &["AWD", "2WD"], base_price: 26_000.0, weight: 4.0 },
    ModelSpec { make: "Toyota", model: "Highlander SE", body: "SUV", engines: &["V6"], drivetrains: &["AWD", "2WD"], base_price: 33_000.0, weight: 3.0 },
    ModelSpec { make: "Toyota", model: "4Runner SR5", body: "SUV", engines: &["V6"], drivetrains: &["4WD"], base_price: 34_000.0, weight: 2.0 },
    ModelSpec { make: "Toyota", model: "Camry LE", body: "Sedan", engines: &["V4", "V6"], drivetrains: &["2WD"], base_price: 23_000.0, weight: 4.5 },
    ModelSpec { make: "Toyota", model: "Corolla LE", body: "Sedan", engines: &["V4"], drivetrains: &["2WD"], base_price: 18_000.0, weight: 4.0 },
    ModelSpec { make: "Toyota", model: "Tacoma SR5", body: "Truck", engines: &["V6", "V4"], drivetrains: &["4WD", "2WD"], base_price: 28_000.0, weight: 2.5 },
    // --- Jeep ---
    ModelSpec { make: "Jeep", model: "Wrangler Unlimited", body: "SUV", engines: &["V6", "V8"], drivetrains: &["4WD"], base_price: 31_000.0, weight: 3.0 },
    ModelSpec { make: "Jeep", model: "Compass Sport", body: "SUV", engines: &["V4"], drivetrains: &["4WD", "2WD"], base_price: 21_000.0, weight: 2.5 },
    ModelSpec { make: "Jeep", model: "Patriot Sport", body: "SUV", engines: &["V4"], drivetrains: &["4WD", "2WD"], base_price: 20_000.0, weight: 2.5 },
    ModelSpec { make: "Jeep", model: "Liberty Sport", body: "SUV", engines: &["V6"], drivetrains: &["4WD", "2WD"], base_price: 22_000.0, weight: 2.0 },
    ModelSpec { make: "Jeep", model: "Grand Cherokee Laredo", body: "SUV", engines: &["V6", "V8"], drivetrains: &["4WD", "AWD"], base_price: 36_000.0, weight: 2.5 },
    // --- Nissan ---
    ModelSpec { make: "Nissan", model: "Rogue S", body: "SUV", engines: &["V4"], drivetrains: &["AWD", "2WD"], base_price: 24_000.0, weight: 3.0 },
    ModelSpec { make: "Nissan", model: "Pathfinder SV", body: "SUV", engines: &["V6"], drivetrains: &["4WD", "2WD"], base_price: 32_000.0, weight: 2.0 },
    ModelSpec { make: "Nissan", model: "Altima 2.5", body: "Sedan", engines: &["V4", "V6"], drivetrains: &["2WD"], base_price: 22_000.0, weight: 3.5 },
    // --- Hyundai ---
    ModelSpec { make: "Hyundai", model: "Santa Fe GLS", body: "SUV", engines: &["V4", "V6"], drivetrains: &["AWD", "2WD"], base_price: 25_000.0, weight: 2.5 },
    ModelSpec { make: "Hyundai", model: "Tucson GLS", body: "SUV", engines: &["V4"], drivetrains: &["2WD", "AWD"], base_price: 21_000.0, weight: 2.0 },
    ModelSpec { make: "Hyundai", model: "Sonata GLS", body: "Sedan", engines: &["V4"], drivetrains: &["2WD"], base_price: 21_000.0, weight: 3.0 },
    // --- BMW ---
    ModelSpec { make: "BMW", model: "X5 xDrive35i", body: "SUV", engines: &["V6", "V8"], drivetrains: &["AWD"], base_price: 56_000.0, weight: 1.5 },
    ModelSpec { make: "BMW", model: "328i", body: "Sedan", engines: &["V6"], drivetrains: &["2WD", "AWD"], base_price: 38_000.0, weight: 2.0 },
    // --- Dodge ---
    ModelSpec { make: "Dodge", model: "Durango SXT", body: "SUV", engines: &["V6", "V8"], drivetrains: &["4WD", "2WD"], base_price: 30_000.0, weight: 2.0 },
    ModelSpec { make: "Dodge", model: "Grand Caravan SE", body: "Van", engines: &["V6"], drivetrains: &["2WD"], base_price: 24_000.0, weight: 2.5 },
];

const COLORS: &[&str] = &[
    "Black", "White", "Silver", "Gray", "Blue", "Red", "Green", "Beige", "Brown", "Gold",
];

/// Seeded generator for the synthetic used-car table.
#[derive(Debug, Clone)]
pub struct UsedCarsGenerator {
    seed: u64,
}

impl UsedCarsGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        UsedCarsGenerator { seed }
    }

    /// Generates `n` listings. Deterministic in `(seed, n)`.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = TableBuilder::new(Self::fields()).expect("static schema is valid");

        let total_weight: f64 = CATALOG.iter().map(|m| m.weight).sum();
        for _ in 0..n {
            let spec = pick_weighted(&mut rng, total_weight);
            let row = Self::listing(&mut rng, spec);
            builder.push_row(row).expect("generated row matches schema");
        }
        builder.finish()
    }

    /// The 11-attribute schema (with `Engine` hidden, see module docs).
    pub fn fields() -> Vec<Field> {
        vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Model", DataType::Categorical),
            Field::new("BodyType", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Mileage", DataType::Int),
            Field::new("Year", DataType::Int),
            Field::hidden("Engine", DataType::Categorical),
            Field::new("Drivetrain", DataType::Categorical),
            Field::new("Transmission", DataType::Categorical),
            Field::new("Color", DataType::Categorical),
            Field::new("FuelEconomy", DataType::Int),
        ]
    }

    fn listing(rng: &mut StdRng, spec: &ModelSpec) -> Vec<Value> {
        // Year skews recent: 2005..=2013 with triangular weighting.
        let a = rng.random_range(0..9);
        let b = rng.random_range(0..9);
        let year = 2005 + a.max(b) as i64;
        let age = 2013 - year;

        // Mileage: ~12K miles/year with listing-level noise, floor 1K.
        let mileage = (age as f64 * 12_000.0
            + rng.random_range(-6_000.0..14_000.0)
            + rng.random_range(0.0..4_000.0))
        .max(1_000.0);

        // Engine/drivetrain: first option 70%, remainder split the rest.
        let engine = pick_option(rng, spec.engines);
        let drivetrain = pick_option(rng, spec.drivetrains);

        // Price: base price, exponential depreciation in age plus a mileage
        // penalty, premium trims (V8, 4WD/AWD) hold value slightly.
        let mut price = spec.base_price * 0.92f64.powi(age as i32);
        price -= mileage * 0.05;
        if engine == "V8" {
            price *= 1.08;
        }
        if drivetrain != "2WD" {
            price *= 1.04;
        }
        price *= rng.random_range(0.92..1.08);
        let price = price.max(2_500.0);

        // Fuel economy determined by engine class (the hidden-attribute
        // surrogate of Limitation 2).
        let fuel: f64 = match engine {
            "V4" => 27.0 + rng.random_range(-3.0..4.0),
            "V6" => 20.0 + rng.random_range(-2.0..3.0),
            _ => 15.0 + rng.random_range(-2.0..3.0),
        };

        let transmission = if rng.random_range(0..100) < 88 {
            "Automatic"
        } else {
            "Manual"
        };
        let color = COLORS[rng.random_range(0..COLORS.len())];

        vec![
            spec.make.into(),
            spec.model.into(),
            spec.body.into(),
            Value::Int((price / 100.0).round() as i64 * 100),
            Value::Int((mileage / 100.0).round() as i64 * 100),
            Value::Int(year),
            engine.into(),
            drivetrain.into(),
            transmission.into(),
            color.into(),
            Value::Int(fuel.round() as i64),
        ]
    }
}

fn pick_weighted<'a>(rng: &mut StdRng, total_weight: f64) -> &'a ModelSpec {
    let mut target = rng.random_range(0.0..total_weight);
    for spec in CATALOG {
        if target < spec.weight {
            return spec;
        }
        target -= spec.weight;
    }
    &CATALOG[CATALOG.len() - 1]
}

/// First option with 70% probability, remaining options share the rest.
fn pick_option<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    if options.len() == 1 || rng.random_range(0..100) < 70 {
        options[0]
    } else {
        options[1 + rng.random_range(0..options.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::Predicate;

    #[test]
    fn deterministic_generation() {
        let a = UsedCarsGenerator::new(7).generate(500);
        let b = UsedCarsGenerator::new(7).generate(500);
        for row in [0, 42, 499] {
            assert_eq!(a.row(row).unwrap(), b.row(row).unwrap());
        }
        let c = UsedCarsGenerator::new(8).generate(500);
        let differs = (0..500).any(|r| a.row(r).unwrap() != c.row(r).unwrap());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn schema_shape() {
        let t = UsedCarsGenerator::new(1).generate(10);
        assert_eq!(t.num_columns(), 11);
        assert_eq!(t.num_rows(), 10);
        assert!(!t.schema().field(t.schema().index_of("Engine").unwrap()).queriable);
        assert!(t.schema().field(0).queriable);
    }

    #[test]
    fn paper_query_returns_suvs_from_all_five_makes() {
        // Mary's query: SUVs, 10K-30K miles, automatic, 5 makes.
        let t = UsedCarsGenerator::new(42).generate(20_000);
        let r = t
            .filter(&Predicate::and(vec![
                Predicate::eq("BodyType", "SUV"),
                Predicate::between("Mileage", 10_000, 30_000),
                Predicate::eq("Transmission", "Automatic"),
                Predicate::in_list(
                    "Make",
                    vec![
                        "Ford".into(),
                        "Chevrolet".into(),
                        "Toyota".into(),
                        "Honda".into(),
                        "Jeep".into(),
                    ],
                ),
            ]))
            .unwrap();
        assert!(r.len() > 1_000, "result too small: {}", r.len());
        let parts = r.partition_by_code(t.schema().index_of("Make").unwrap());
        assert_eq!(parts.len(), 5, "all five makes present");
    }

    #[test]
    fn engine_determines_fuel_economy() {
        let t = UsedCarsGenerator::new(3).generate(5_000);
        let engine_col = t.schema().index_of("Engine").unwrap();
        let fuel_col = t.schema().index_of("FuelEconomy").unwrap();
        let mut v4 = Vec::new();
        let mut v8 = Vec::new();
        for row in 0..t.num_rows() {
            let e = t.value(row, engine_col).to_string();
            let f = t.value(row, fuel_col).as_f64().unwrap();
            if e == "V4" {
                v4.push(f);
            } else if e == "V8" {
                v8.push(f);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&v4) > mean(&v8) + 8.0, "V4 should be far more efficient");
    }

    #[test]
    fn year_mileage_negatively_correlated() {
        let t = UsedCarsGenerator::new(5).generate(5_000);
        let year_col = t.schema().index_of("Year").unwrap();
        let miles_col = t.schema().index_of("Mileage").unwrap();
        let pairs: Vec<(f64, f64)> = (0..t.num_rows())
            .map(|r| {
                (
                    t.value(r, year_col).as_f64().unwrap(),
                    t.value(r, miles_col).as_f64().unwrap(),
                )
            })
            .collect();
        let n = pairs.len() as f64;
        let my = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mm = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - my) * (p.1 - mm)).sum::<f64>() / n;
        assert!(cov < 0.0, "covariance should be negative: {cov}");
    }

    #[test]
    fn models_respect_catalog() {
        let t = UsedCarsGenerator::new(9).generate(3_000);
        let make_col = t.schema().index_of("Make").unwrap();
        let model_col = t.schema().index_of("Model").unwrap();
        for row in 0..t.num_rows() {
            let make = t.value(row, make_col).to_string();
            let model = t.value(row, model_col).to_string();
            assert!(
                CATALOG
                    .iter()
                    .any(|s| s.make == make && s.model == model),
                "unknown make/model: {make}/{model}"
            );
        }
    }
}
