//! Synthetic hotel listings — the paper's *introduction* scenario.
//!
//! The paper opens with "a user on a travel web site looking to book a
//! hotel in a big city" who doesn't know that "typical prices", that "all
//! the 5-star hotels are clustered in the financial district", or that
//! "there is a tradeoff between location and price" — and whose budget
//! segment (youth hostels) has prices "poorly correlated" with fancy
//! hotels. This generator plants exactly those facts so the CAD View can
//! surface them:
//!
//! * `District` determines `DistanceToCenter`;
//! * 5-star properties concentrate in the Financial District (and the
//!   Beachfront resorts);
//! * price grows with stars *and* with centrality (the location-price
//!   trade-off), with a district premium at equal star rating;
//! * hostels are cheap regardless of their star rating — the segment where
//!   price decouples from the luxury signal.

use dbex_table::{DataType, Field, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// City districts, central first.
const DISTRICTS: &[(&str, f64, f64)] = &[
    // (name, typical distance to center in km, price premium multiplier)
    ("FinancialDistrict", 0.8, 1.45),
    ("OldTown", 1.5, 1.20),
    ("Downtown", 2.5, 1.15),
    ("Midtown", 4.5, 1.00),
    ("Beachfront", 7.0, 1.30),
    ("UniversityQuarter", 5.5, 0.85),
    ("Suburbs", 12.0, 0.70),
    ("AirportZone", 18.0, 0.75),
];

/// Seeded generator for the synthetic hotel table.
#[derive(Debug, Clone)]
pub struct HotelsGenerator {
    seed: u64,
}

impl HotelsGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        HotelsGenerator { seed }
    }

    /// The 10-attribute schema.
    pub fn fields() -> Vec<Field> {
        vec![
            Field::new("District", DataType::Categorical),
            Field::new("Type", DataType::Categorical),
            Field::new("StarRating", DataType::Int),
            Field::new("PricePerNight", DataType::Int),
            Field::new("DistanceToCenter", DataType::Float),
            Field::new("ReviewScore", DataType::Float),
            Field::new("RoomSize", DataType::Int),
            Field::new("Breakfast", DataType::Categorical),
            Field::new("Pool", DataType::Categorical),
            Field::new("WalkScore", DataType::Int),
        ]
    }

    /// Generates `n` listings. Deterministic in `(seed, n)`.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = TableBuilder::new(Self::fields()).expect("static schema is valid");
        for _ in 0..n {
            builder
                .push_row(listing(&mut rng))
                .expect("generated row matches schema");
        }
        builder.finish()
    }
}

fn listing(rng: &mut StdRng) -> Vec<Value> {
    // Property type first: it shapes everything else.
    let type_roll = rng.random_range(0..100);
    let kind = if type_roll < 62 {
        "Hotel"
    } else if type_roll < 78 {
        "Hostel"
    } else if type_roll < 92 {
        "BnB"
    } else {
        "Resort"
    };

    // Star rating by type.
    let stars: i64 = match kind {
        "Hostel" => 1 + rng.random_range(0..3),               // 1-3
        "BnB" => 2 + rng.random_range(0..3),                  // 2-4
        "Resort" => 4 + rng.random_range(0..2),               // 4-5
        _ => 2 + rng.random_range(0..4),                      // hotels 2-5
    };

    // District: 5-star properties cluster in the Financial District and
    // the Beachfront; hostels cluster near the old town / university.
    let district_idx = if stars == 5 {
        if rng.random_range(0..100) < 65 {
            0 // FinancialDistrict
        } else if rng.random_range(0..100) < 60 {
            4 // Beachfront
        } else {
            rng.random_range(0..DISTRICTS.len())
        }
    } else if kind == "Hostel" {
        match rng.random_range(0..100) {
            0..=44 => 1,  // OldTown
            45..=74 => 5, // UniversityQuarter
            _ => 2,       // Downtown
        }
    } else {
        // Everything else spreads out, thinner in the center.
        let weights = [6, 10, 14, 18, 10, 12, 18, 12];
        let total: u64 = weights.iter().sum();
        let mut roll = rng.random_range(0..total);
        let mut idx = 0;
        for (i, &w) in weights.iter().enumerate() {
            if roll < w {
                idx = i;
                break;
            }
            roll -= w;
        }
        idx
    };
    let (district, base_distance, premium) = DISTRICTS[district_idx];
    let distance = (base_distance * rng.random_range(0.6..1.5)).max(0.1);

    // Price: stars set the base; district premium applies the
    // location-price trade-off; hostels are cheap regardless of stars
    // (price poorly correlated with the luxury signal).
    let price: f64 = if kind == "Hostel" {
        18.0 + rng.random_range(0.0..30.0)
    } else {
        let base = match stars {
            1 => 45.0,
            2 => 70.0,
            3 => 105.0,
            4 => 165.0,
            _ => 290.0,
        };
        base * premium * rng.random_range(0.85..1.20)
    };

    // Review score tracks stars for hotels/resorts; hostels and BnBs run
    // on their own scale (service ≠ luxury).
    let review: f64 = match kind {
        "Hostel" | "BnB" => 6.0 + rng.random_range(0.0..3.5),
        _ => (4.0 + stars as f64 + rng.random_range(-0.8..1.2)).clamp(2.0, 10.0),
    };

    let room_size: i64 = match kind {
        "Hostel" => 8 + rng.random_range(0..10),
        "Resort" => 40 + rng.random_range(0..35),
        _ => 16 + 5 * stars + rng.random_range(0..12),
    };
    let breakfast = match kind {
        "BnB" => "included",
        "Hostel" => {
            if rng.random_range(0..100) < 30 {
                "extra"
            } else {
                "none"
            }
        }
        _ => {
            if stars >= 4 || rng.random_range(0..100) < 40 {
                "included"
            } else {
                "extra"
            }
        }
    };
    let pool = if (kind == "Resort") || (stars >= 4 && rng.random_range(0..100) < 70) {
        "yes"
    } else {
        "no"
    };
    // Walkability decays with distance from the center.
    let walk = (100.0 - 4.5 * distance + rng.random_range(-8.0..8.0)).clamp(5.0, 100.0);

    vec![
        district.into(),
        kind.into(),
        Value::Int(stars),
        Value::Int(price.round() as i64),
        Value::Float((distance * 10.0).round() / 10.0),
        Value::Float((review * 10.0).round() / 10.0),
        Value::Int(room_size),
        breakfast.into(),
        pool.into(),
        Value::Int(walk.round() as i64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::Predicate;

    fn data() -> Table {
        HotelsGenerator::new(99).generate(8_000)
    }

    #[test]
    fn deterministic_and_shaped() {
        let a = HotelsGenerator::new(1).generate(200);
        let b = HotelsGenerator::new(1).generate(200);
        assert_eq!(a.row(123).unwrap(), b.row(123).unwrap());
        assert_eq!(a.num_columns(), 10);
    }

    #[test]
    fn five_star_hotels_cluster_in_financial_district() {
        let t = data();
        let five_star = t.filter(&Predicate::eq("StarRating", 5)).unwrap();
        let in_fd = five_star
            .refine(&Predicate::eq("District", "FinancialDistrict"))
            .unwrap();
        let frac = in_fd.len() as f64 / five_star.len().max(1) as f64;
        assert!(frac > 0.45, "5-star share in FD: {frac}");
        // Against a ~12.5% uniform baseline this is strong clustering.
    }

    #[test]
    fn location_price_tradeoff() {
        // At equal star rating, central hotels cost more.
        let t = data();
        let mean_price = |district: &str| {
            let v = t
                .filter(&Predicate::and(vec![
                    Predicate::eq("District", district),
                    Predicate::eq("StarRating", 3),
                    Predicate::eq("Type", "Hotel"),
                ]))
                .unwrap();
            let col = t.schema().index_of("PricePerNight").unwrap();
            let sum: f64 = v
                .row_ids()
                .iter()
                .filter_map(|&r| t.column(col).get_f64(r as usize))
                .sum();
            sum / v.len().max(1) as f64
        };
        let central = mean_price("FinancialDistrict");
        let suburban = mean_price("Suburbs");
        assert!(
            central > 1.4 * suburban,
            "central {central:.0} vs suburban {suburban:.0}"
        );
    }

    #[test]
    fn hostel_prices_decoupled_from_stars() {
        let t = data();
        let price_col = t.schema().index_of("PricePerNight").unwrap();
        let star_col = t.schema().index_of("StarRating").unwrap();
        let corr = |kind: &str| {
            let v = t.filter(&Predicate::eq("Type", kind)).unwrap();
            let pairs: Vec<(f64, f64)> = v
                .row_ids()
                .iter()
                .map(|&r| {
                    (
                        t.column(star_col).get_f64(r as usize).unwrap(),
                        t.column(price_col).get_f64(r as usize).unwrap(),
                    )
                })
                .collect();
            let n = pairs.len() as f64;
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let cov: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
            let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy).max(1e-9)
        };
        assert!(corr("Hotel") > 0.6, "hotel corr {}", corr("Hotel"));
        assert!(corr("Hostel").abs() < 0.2, "hostel corr {}", corr("Hostel"));
    }

    #[test]
    fn district_determines_distance() {
        let t = data();
        let fd = t
            .filter(&Predicate::eq("District", "FinancialDistrict"))
            .unwrap();
        let airport = t.filter(&Predicate::eq("District", "AirportZone")).unwrap();
        let col = t.schema().index_of("DistanceToCenter").unwrap();
        let max_fd = fd
            .row_ids()
            .iter()
            .filter_map(|&r| t.column(col).get_f64(r as usize))
            .fold(0.0f64, f64::max);
        let min_airport = airport
            .row_ids()
            .iter()
            .filter_map(|&r| t.column(col).get_f64(r as usize))
            .fold(f64::INFINITY, f64::min);
        assert!(max_fd < min_airport, "fd max {max_fd} vs airport min {min_airport}");
    }
}
