//! # dbex-data
//!
//! Deterministic synthetic datasets standing in for the paper's evaluation
//! data (Section 6.1).
//!
//! * [`usedcars`] — a **YahooUsedCar** equivalent: 40,000 used-car listings
//!   over 11 attributes with realistic cross-attribute dependencies
//!   (Make → Model → BodyType/Engine/Drivetrain/Price, Year ↔ Mileage ↔
//!   Price, Engine → FuelEconomy). The paper scraped Yahoo's used-car site;
//!   the scrape is long gone, so we generate data with the same scale and
//!   the dependency structure the paper's examples (Table 1, Section 6.3)
//!   rely on.
//! * [`mushroom`] — a **UCI Mushroom** equivalent: 8,124 specimens over 23
//!   categorical attributes with planted class-conditional structure, so the
//!   three user-study tasks have computable ground truth (a near-perfect
//!   2-value classifier for `Bruises`, near-duplicate gill colors, and
//!   twin stalk-color attributes that admit alternative search conditions).
//!
//! * [`hotels`] — the paper's *introduction* scenario: a big-city hotel
//!   market where 5-star properties cluster in the financial district,
//!   location trades off against price, and hostel prices decouple from
//!   star ratings.
//!
//! All generators are seeded and fully deterministic: the same seed and
//! row count always produce byte-identical tables.

pub mod hotels;
pub mod mushroom;
pub mod usedcars;

pub use hotels::HotelsGenerator;
pub use mushroom::MushroomGenerator;
pub use usedcars::UsedCarsGenerator;
